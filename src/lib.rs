//! # ViTALiTy (reproduction)
//!
//! A from-scratch Rust reproduction of *ViTALiTy: Unifying Low-rank and Sparse
//! Approximation for Vision Transformer Acceleration with a Linear Taylor Attention*
//! (HPCA 2023). This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense `f32` matrix kernels.
//! * [`autograd`] — reverse-mode automatic differentiation.
//! * [`nn`] — neural-network layers (linear, layer norm, MLP, patch embedding).
//! * [`attention`] — the linear Taylor attention (Algorithm 1), the Sanger-style sparse
//!   attention, the unified training-time attention and the linear-attention baselines.
//! * [`vit`] — ViT model configurations, workloads and the trainable Vision Transformer.
//! * [`train`] — the synthetic task, optimisers and the paper's training schemes.
//! * [`accel`] — the cycle-level ViTALiTy accelerator simulator.
//! * [`baselines`] — Sanger / SALO / CPU / GPU / edge-GPU baseline models.
//! * [`serve`] — the batched, multi-worker HTTP inference serving engine with dynamic
//!   request coalescing (see `examples/serve.rs`).
//! * [`gateway`] — the multi-engine cluster front-end: response caching, tiered
//!   variant routing, least-loaded balancing and failover (see `examples/cluster.rs`).
//!
//! # Quickstart
//!
//! Approximate the softmax attention with the linear Taylor attention and simulate the
//! dedicated accelerator on DeiT-Tiny:
//!
//! ```
//! use rand::SeedableRng;
//! use vitality::attention::{AttentionMechanism, SoftmaxAttention, TaylorAttention};
//! use vitality::accel::{AcceleratorConfig, VitalityAccelerator};
//! use vitality::vit::{ModelConfig, ModelWorkload};
//! use vitality::tensor::init;
//!
//! // Algorithm: linear Taylor attention vs the exact softmax attention.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (n, d) = (32, 16);
//! let q = init::normal(&mut rng, n, d, 0.0, 0.1);
//! let k = init::normal(&mut rng, n, d, 0.0, 0.1);
//! let v = init::normal(&mut rng, n, d, 0.0, 1.0);
//! let exact = SoftmaxAttention::new().compute(&q, &k, &v);
//! let taylor = TaylorAttention::new().compute(&q, &k, &v);
//! assert!(exact.max_abs_diff(&taylor) < 0.05);
//!
//! // Hardware: simulate the dedicated accelerator on the DeiT-Tiny workload.
//! let accel = VitalityAccelerator::new(AcceleratorConfig::paper());
//! let report = accel.simulate_model(&ModelWorkload::for_model(&ModelConfig::deit_tiny()));
//! assert!(report.attention_latency_s < 1e-3);
//! ```

#![deny(missing_docs)]

pub use vitality_accel as accel;
pub use vitality_attention as attention;
pub use vitality_autograd as autograd;
pub use vitality_baselines as baselines;
pub use vitality_gateway as gateway;
pub use vitality_nn as nn;
pub use vitality_serve as serve;
pub use vitality_tensor as tensor;
pub use vitality_train as train;
pub use vitality_vit as vit;
