//! High-resolution scaling study — the motivation from the paper's introduction: many
//! real-world vision applications (medical imaging, autonomous driving, drone imagery)
//! need high-resolution inputs, and the number of patches grows quadratically with the
//! resolution. This example sweeps the input resolution for a DeiT-Tiny-style model and
//! shows how the vanilla softmax attention's operation count and simulated latency explode
//! while the ViTALiTy Taylor attention stays linear.
//!
//! Run with: `cargo run --example high_resolution_scaling`

use vitality::accel::{AcceleratorConfig, AttentionEngine, VitalityAccelerator};
use vitality::baselines::{AttentionKind, DeviceModel};
use vitality::vit::{ModelConfig, ModelFamily, ModelWorkload, StageConfig};

/// Builds a DeiT-Tiny-style configuration for the given input resolution (16x16 patches).
fn deit_tiny_at_resolution(resolution: usize) -> ModelConfig {
    let patches = (resolution / 16) * (resolution / 16);
    ModelConfig {
        name: "DeiT-Tiny (scaled)",
        family: ModelFamily::Deit,
        resolution,
        stages: vec![StageConfig {
            tokens: patches + 1,
            embed_dim: 192,
            heads: 3,
            head_dim: 64,
            layers: 12,
            mlp_ratio: 4.0,
        }],
        backbone_macs: 0,
    }
}

fn main() {
    let accel = VitalityAccelerator::new(AcceleratorConfig::paper());
    let edge = DeviceModel::jetson_tx2();

    println!("DeiT-Tiny scaled to higher input resolutions (16x16 patches, 12 layers):\n");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>10} {:>16} {:>16}",
        "resolution",
        "tokens",
        "softmax Mul(M)",
        "taylor Mul(M)",
        "ratio",
        "TX2 softmax",
        "accel taylor"
    );
    for resolution in [224usize, 384, 512, 768, 1024] {
        let config = deit_tiny_at_resolution(resolution);
        let workload = ModelWorkload::for_model(&config);
        let vanilla = workload.vanilla_attention_ops();
        let taylor = workload.taylor_attention_ops();
        let edge_latency = edge
            .simulate(&workload, AttentionKind::VanillaSoftmax)
            .attention_latency_s();
        let accel_latency = accel
            .simulate_model_with_engine(&workload, AttentionEngine::Taylor)
            .attention_latency_s;
        println!(
            "{:>10} {:>8} {:>14.1} {:>14.1} {:>9.1}x {:>13.1} ms {:>13.2} ms",
            format!("{resolution}px"),
            config.stages[0].tokens,
            vanilla.mul as f64 / 1e6,
            taylor.mul as f64 / 1e6,
            vanilla.mul as f64 / taylor.mul as f64,
            edge_latency * 1e3,
            accel_latency * 1e3,
        );
    }
    println!();
    println!("The operation-count ratio follows Eq. (1): R_mul ~ n/d, so the benefit of the");
    println!("linear Taylor attention grows quadratically in the resolution — exactly the");
    println!("regime (medical imaging, driving, surveillance) the paper targets.");
}
