//! Quickstart: compute the ViTALiTy linear Taylor attention, compare it against the exact
//! softmax attention, and simulate the dedicated accelerator on the DeiT-Tiny workload.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::accel::{AcceleratorConfig, VitalityAccelerator};
use vitality::attention::{AttentionMechanism, SoftmaxAttention, TaylorAttention};
use vitality::tensor::init;
use vitality::vit::{ModelConfig, ModelWorkload};

fn main() {
    // --- Algorithm level -------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(42);
    let (n, d) = (197, 64); // DeiT-Tiny per-head shape
    let q = init::normal(&mut rng, n, d, 0.0, 0.15);
    let k = init::normal(&mut rng, n, d, 0.0, 0.15);
    let v = init::normal(&mut rng, n, d, 0.0, 1.0);

    let softmax = SoftmaxAttention::new();
    let taylor = TaylorAttention::new();
    let exact = softmax.compute(&q, &k, &v);
    let approx = taylor.compute(&q, &k, &v);
    println!("ViTALiTy linear Taylor attention vs vanilla softmax attention (n={n}, d={d})");
    println!(
        "  max |Z_taylor - Z_softmax|  = {:.4}",
        exact.max_abs_diff(&approx)
    );

    let vanilla_ops = softmax.op_counts(n, d);
    let taylor_ops = taylor.op_counts(n, d);
    println!(
        "  multiplications: {:.2} M (softmax) vs {:.2} M (Taylor)  ->  {:.1}x fewer",
        vanilla_ops.mul as f64 / 1e6,
        taylor_ops.mul as f64 / 1e6,
        vanilla_ops.mul as f64 / taylor_ops.mul as f64
    );
    println!(
        "  exponentiations: {} (softmax) vs {} (Taylor)",
        vanilla_ops.exp, taylor_ops.exp
    );

    // The trace exposes every intermediate of Algorithm 1.
    let trace = taylor.compute_with_trace(&q, &k, &v);
    println!(
        "  global context matrix G is {}x{} (independent of the token count)",
        trace.global_context.rows(),
        trace.global_context.cols()
    );

    // --- Hardware level --------------------------------------------------------------
    let accel = VitalityAccelerator::new(AcceleratorConfig::paper());
    let workload = ModelWorkload::for_model(&ModelConfig::deit_tiny());
    let report = accel.simulate_model(&workload);
    println!("\nViTALiTy accelerator (64x64 systolic array + pre/post-processors @ 500 MHz) on DeiT-Tiny:");
    println!(
        "  attention latency : {:.1} us",
        report.attention_latency_s * 1e6
    );
    println!(
        "  end-to-end latency: {:.2} ms",
        report.total_latency_s * 1e3
    );
    println!(
        "  end-to-end energy : {:.2} mJ",
        report.total_energy_j * 1e3
    );
}
