//! Attention zoo: compares every attention mechanism implemented in this reproduction —
//! approximation error against the exact softmax attention and the analytical operation
//! counts — across increasing token counts (the high-resolution motivation of the paper).
//!
//! Run with: `cargo run --example attention_zoo`

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::attention::{
    AttentionMechanism, EfficientAttention, LinearKernelAttention, LinformerAttention,
    PerformerAttention, SangerSparseAttention, SoftmaxAttention, TaylorAttention,
    UnifiedLowRankSparseAttention,
};
use vitality::tensor::{init, Matrix};

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        init::normal(&mut rng, n, d, 0.0, 0.2),
        init::normal(&mut rng, n, d, 0.0, 0.2),
        init::normal(&mut rng, n, d, 0.0, 1.0),
    )
}

fn main() {
    let d = 64;
    for &n in &[64usize, 197, 576] {
        let (q, k, v) = qkv(n, d, n as u64);
        let exact = SoftmaxAttention::new().compute(&q, &k, &v);
        let mut rng = StdRng::seed_from_u64(7);

        let mechanisms: Vec<Box<dyn AttentionMechanism>> = vec![
            Box::new(SoftmaxAttention::new()),
            Box::new(TaylorAttention::new()),
            Box::new(TaylorAttention::without_mean_centering()),
            Box::new(UnifiedLowRankSparseAttention::new(0.5)),
            Box::new(SangerSparseAttention::new(0.02)),
            Box::new(LinformerAttention::new(&mut rng, n, n / 4)),
            Box::new(PerformerAttention::new(&mut rng, d, 2 * d)),
            Box::new(LinearKernelAttention::new()),
            Box::new(EfficientAttention::new()),
        ];

        println!("== n = {n} tokens, d = {d} ==");
        println!(
            "{:<34} {:>12} {:>14} {:>12} {:>8}",
            "mechanism", "max error", "mul (M)", "add (M)", "exp (M)"
        );
        for mechanism in &mechanisms {
            let z = mechanism.compute(&q, &k, &v);
            let ops = mechanism.op_counts(n, d);
            println!(
                "{:<34} {:>12.4} {:>14.3} {:>12.3} {:>8.3}",
                mechanism.name(),
                exact.max_abs_diff(&z),
                ops.mul as f64 / 1e6,
                ops.add as f64 / 1e6,
                ops.exp as f64 / 1e6,
            );
        }
        println!();
    }
    println!("Note how the Taylor attention's operation count grows linearly with the token");
    println!("count while the softmax attention grows quadratically — the gap that motivates");
    println!("ViTALiTy for high-resolution vision workloads.");
}
