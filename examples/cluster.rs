//! Boot two `vitality-serve` engines behind the `vitality-gateway` cluster
//! front-end, then drive it end-to-end: tiered requests landing on different
//! attention variants, repeat images served from the response cache, and an engine
//! kill that the retry budget absorbs without losing a request.
//!
//! ```bash
//! cargo run --release --example cluster
//! ```
//!
//! Each engine registers the same weights three times — the linear Taylor key
//! (`demo:taylor`), the int8-quantized latency tier (`demo:int8`) and the unified
//! low-rank + sparse accuracy tier (`demo:unified`) — so one cluster serves
//! ViTALiTy's cheap and accurate paths side by side and the gateway routes between
//! them per request.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vitality::gateway::{Gateway, GatewayConfig};
use vitality::serve::{ModelRegistry, ServeClient, Server, ServerConfig};
use vitality::tensor::init;
use vitality::vit::{AttentionVariant, Int8Calibration, TrainConfig, VisionTransformer};

fn engine(base: &VisionTransformer, addr: &str) -> Server {
    let mut int8 = base.clone();
    int8.set_variant(AttentionVariant::Int8Taylor {
        calibration: Int8Calibration::Dynamic,
    });
    let mut unified = base.clone();
    unified.set_variant(AttentionVariant::Unified { threshold: 0.5 });
    let mut registry = ModelRegistry::new();
    registry.register("demo", base.clone()).expect("valid name");
    registry.register("demo", int8).expect("valid name");
    registry.register("demo", unified).expect("valid name");
    Server::start(
        ServerConfig {
            addr: addr.to_string(),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn main() {
    // 1. Two engines sharing the same warm weights.
    let cfg = TrainConfig::experiment();
    let mut rng = StdRng::seed_from_u64(7);
    let base = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
    let engine_a = engine(&base, "127.0.0.1:0");
    let engine_b = engine(&base, "127.0.0.1:0");
    let addrs = [engine_a.local_addr(), engine_b.local_addr()];

    // 2. The gateway in front: probing, least-loaded routing, caching, tier rules.
    let gateway = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(50),
            ..GatewayConfig::default()
        },
        &addrs,
    )
    .expect("boot gateway");
    println!(
        "gateway on http://{} fronting {} engines ({} healthy)",
        gateway.local_addr(),
        addrs.len(),
        gateway.healthy_backends()
    );

    // 3. One image through all three routes: pass-through, latency tier, accuracy
    //    tier — same weights, three attention kernels, one cluster endpoint.
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect gateway");
    let image = init::uniform(&mut rng, cfg.image_size, cfg.image_size, 0.0, 1.0);
    let plain = client.infer("demo:taylor", &image).expect("pass-through");
    let fast = client
        .infer_with_tier("demo:taylor", &image, Some("latency"))
        .expect("latency tier");
    let exact = client
        .infer_with_tier("demo:taylor", &image, Some("accuracy"))
        .expect("accuracy tier");
    println!(
        "no tier        → {} answered class {}",
        plain.model, plain.prediction
    );
    println!(
        "tier: latency  → {} answered class {}",
        fast.model, fast.prediction
    );
    println!(
        "tier: accuracy → {} answered class {}",
        exact.model, exact.prediction
    );

    // 4. Repeat the same request: the response cache answers without any engine.
    let again = client.infer("demo:taylor", &image).expect("cache hit");
    assert_eq!(again.logits, plain.logits, "cache hits are bit-identical");
    let metrics = gateway.metrics_json();
    let cache = metrics.get("cache").expect("cache block");
    println!(
        "repeat request served from cache (hits {}, misses {})",
        cache.get("hits").unwrap(),
        cache.get("misses").unwrap()
    );

    // 5. Kill one engine mid-traffic: the retry budget fails the requests over.
    engine_b.shutdown();
    for i in 0..6u64 {
        let img = init::uniform(
            &mut StdRng::seed_from_u64(900 + i),
            cfg.image_size,
            cfg.image_size,
            0.0,
            1.0,
        );
        let reply = client
            .infer("demo:taylor", &img)
            .expect("failover keeps every request answered");
        assert_eq!(reply.prediction, base.predict(&img));
    }
    println!(
        "engine killed mid-traffic: 6/6 requests still answered correctly ({} healthy backend left)",
        gateway.healthy_backends()
    );

    // 6. Routing observability, then a clean shutdown (engines are independent).
    let routed = gateway.metrics_json();
    println!(
        "gateway /metrics routed block: {}",
        routed.get("routed").unwrap()
    );
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    println!("cluster drained and shut down cleanly");
}
