//! Hardware walk-through: simulates the ViTALiTy accelerator layer by layer on every ViT
//! model of the paper, shows the intra-layer pipeline and dataflow ablations, and compares
//! against the Sanger accelerator and the general-purpose device models.
//!
//! Run with: `cargo run --example accelerator_simulation`

use vitality::accel::{AcceleratorConfig, Dataflow, PipelineMode, VitalityAccelerator};
use vitality::baselines::{AttentionKind, DeviceModel, SangerAccelerator, SangerConfig};
use vitality::vit::{ModelConfig, ModelWorkload};

fn main() {
    let accel = VitalityAccelerator::new(AcceleratorConfig::paper());

    // Per-layer schedule of DeiT-Tiny: where the cycles go inside one attention layer.
    let deit = ModelConfig::deit_tiny();
    let stage = deit.stages[0];
    let schedule = accel.attention_layer_schedule(stage.tokens, stage.head_dim, stage.heads);
    println!("One DeiT-Tiny Taylor-attention layer on the ViTALiTy accelerator:");
    println!(
        "  accumulator array : {:>8} cycles",
        schedule.accumulator_cycles
    );
    println!("  adder array       : {:>8} cycles", schedule.adder_cycles);
    println!(
        "  divider array     : {:>8} cycles",
        schedule.divider_cycles
    );
    println!(
        "  SA-General        : {:>8} cycles",
        schedule.sa_general_cycles
    );
    println!(
        "  SA-Diag           : {:>8} cycles",
        schedule.sa_diag_cycles
    );
    println!(
        "  sequential layer  : {:>8} cycles",
        schedule.sequential_cycles
    );
    println!(
        "  pipelined layer   : {:>8} cycles  ({:.2}x from the intra-layer pipeline)",
        schedule.pipelined_cycles,
        schedule.pipeline_speedup()
    );

    // Dataflow ablation (Table V) and pipeline ablation.
    let workload = ModelWorkload::for_model(&ModelConfig::deit_base());
    let ours = accel.simulate_model(&workload);
    let gs = VitalityAccelerator::new(AcceleratorConfig::paper())
        .with_dataflow(Dataflow::GStationary)
        .simulate_model(&workload);
    let sequential = VitalityAccelerator::new(AcceleratorConfig::paper())
        .with_pipeline(PipelineMode::Sequential)
        .simulate_model(&workload);
    println!("\nDeiT-Base ablations:");
    println!(
        "  attention energy, down-forward vs G-stationary: {:.1} uJ vs {:.1} uJ",
        ours.attention_energy_j * 1e6,
        gs.attention_energy_j * 1e6
    );
    println!(
        "  attention cycles, pipelined vs sequential      : {} vs {}",
        ours.attention_cycles, sequential.attention_cycles
    );

    // Cross-platform comparison for every model (the Fig. 11 / Fig. 12 view).
    let sanger = SangerAccelerator::new(SangerConfig::paper());
    let edge = DeviceModel::jetson_tx2();
    println!("\nEnd-to-end latency per model (ViTALiTy accel vs Sanger vs Jetson TX2):");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>18}",
        "model", "ViTALiTy", "Sanger", "TX2 (vanilla)", "speedup vs Sanger"
    );
    for config in ModelConfig::all_models() {
        let wl = ModelWorkload::for_model(&config);
        let v = accel.simulate_model(&wl);
        let s = sanger.simulate_model(&wl);
        let e = edge.simulate(&wl, AttentionKind::VanillaSoftmax);
        println!(
            "{:<16} {:>11.2} ms {:>11.2} ms {:>11.2} ms {:>17.1}x",
            config.name,
            v.total_latency_s * 1e3,
            s.total_latency_s * 1e3,
            e.total_latency_s() * 1e3,
            s.total_latency_s / v.total_latency_s
        );
    }
}
