//! End-to-end ViTALiTy training recipe on the synthetic task: train a softmax baseline,
//! show that the drop-in Taylor attention collapses, fine-tune with the unified low-rank +
//! sparse attention, then drop the sparse component for inference.
//!
//! Run with: `cargo run --release --example train_vitality`

use vitality::train::{
    run_scheme_with_baseline, train_baseline, DatasetConfig, SchemeContext, SyntheticDataset,
    TrainOptions, TrainingScheme,
};
use vitality::vit::TrainConfig;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let ctx = SchemeContext {
        model_config: TrainConfig::experiment(),
        dataset: SyntheticDataset::generate(&mut rng, DatasetConfig::experiment()),
        options: TrainOptions {
            epochs: 8,
            batch_size: 8,
            distillation: None,
            track_sparse_occupancy: false,
        },
        learning_rate: 0.01,
        seed: 7,
    };

    println!("Training the softmax-attention baseline (teacher)...");
    let (baseline, history) = train_baseline(&ctx);
    let baseline_acc = baseline.accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels());
    println!(
        "  baseline accuracy: {:.1}% after {} epochs",
        baseline_acc * 100.0,
        history.len()
    );

    println!("\nDrop-in Taylor attention without fine-tuning (the paper's LOWRANK row)...");
    let lowrank = run_scheme_with_baseline(TrainingScheme::LowRankDropIn, &ctx, Some(&baseline));
    println!(
        "  LowRank drop-in accuracy: {:.1}%",
        lowrank.final_accuracy * 100.0
    );

    println!("\nFine-tuning with the unified low-rank + sparse attention (T = 0.5, with KD)...");
    let vitality = run_scheme_with_baseline(
        TrainingScheme::Vitality {
            threshold: 0.5,
            distillation: true,
        },
        &ctx,
        Some(&baseline),
    );
    println!(
        "  ViTALiTy accuracy (inference with the linear Taylor attention only): {:.1}%",
        vitality.final_accuracy * 100.0
    );

    println!("\nSummary (the paper's qualitative claim):");
    println!(
        "  Baseline {:.1}%  >=  ViTALiTy {:.1}%  >>  LowRank drop-in {:.1}%",
        baseline_acc * 100.0,
        vitality.final_accuracy * 100.0,
        lowrank.final_accuracy * 100.0
    );
}
