//! Boot the `vitality-serve` engine, drive it with concurrent clients over HTTP, read
//! the health and metrics endpoints, and shut down cleanly.
//!
//! ```bash
//! cargo run --release --example serve
//! ```
//!
//! The example registers the same weights twice — once with the linear Taylor
//! attention, once with the softmax baseline — so the two registry keys
//! (`demo:taylor`, `demo:softmax`) serve the paper's comparison side by side. Eight
//! client threads then hammer the Taylor model concurrently; the server coalesces
//! their single-image requests into batches (visible in the per-reply `batch_size`
//! and the final `/metrics` snapshot).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vitality::serve::{BatchPolicy, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality::tensor::init;
use vitality::vit::{AttentionVariant, TrainConfig, VisionTransformer};

fn main() {
    // 1. Warm two shareable models (same weights, different attention variants).
    let cfg = TrainConfig::experiment();
    let mut rng = StdRng::seed_from_u64(7);
    let taylor = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
    let mut softmax = taylor.clone();
    softmax.set_variant(AttentionVariant::Softmax);

    let mut registry = ModelRegistry::new();
    let taylor_key = registry
        .register("demo", taylor.clone())
        .expect("valid name");
    let softmax_key = registry.register("demo", softmax).expect("valid name");

    // 2. Boot the engine on an ephemeral port.
    let server = Server::start(
        ServerConfig {
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(2),
                queue_capacity: 128,
            },
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot server");
    let addr = server.local_addr();
    println!("vitality-serve listening on http://{addr}");

    // 3. Health check.
    let mut probe = ServeClient::connect(addr).expect("connect");
    let (status, health) = probe.get("/healthz").expect("healthz");
    println!("GET /healthz → {status} {health}");

    // 4. Concurrent clients: 8 threads x 6 requests over keep-alive connections.
    let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
        (0..8usize)
            .map(|c| {
                let taylor_key = taylor_key.as_str();
                let taylor = &taylor;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut max_batch = 0;
                    let mut correct = 0;
                    for i in 0..6u64 {
                        let img = init::uniform(
                            &mut StdRng::seed_from_u64(100 * c as u64 + i),
                            cfg.image_size,
                            cfg.image_size,
                            0.0,
                            1.0,
                        );
                        let reply = client.infer(taylor_key, &img).expect("inference");
                        max_batch = max_batch.max(reply.batch_size);
                        if reply.prediction == taylor.predict(&img) {
                            correct += 1;
                        }
                    }
                    (correct, max_batch)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let correct: usize = outcomes.iter().map(|(c, _)| c).sum();
    let max_batch = outcomes.iter().map(|(_, b)| *b).max().unwrap_or(0);
    println!("48 concurrent requests: {correct}/48 match direct inference, largest coalesced batch {max_batch}");

    // 5. The softmax baseline serves from the same registry.
    let img = init::uniform(
        &mut StdRng::seed_from_u64(999),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    );
    let reply = probe.infer(&softmax_key, &img).expect("softmax inference");
    println!(
        "softmax baseline answered class {} in a batch of {}",
        reply.prediction, reply.batch_size
    );

    // 6. Server-side metrics, then a clean shutdown.
    let (_, metrics) = probe.get("/metrics").expect("metrics");
    println!("GET /metrics → {metrics}");
    drop(probe);
    server.shutdown();
    println!("server drained and shut down cleanly");
}
