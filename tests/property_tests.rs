//! Property-based tests (proptest) of the core invariants: softmax shift invariance,
//! mean-centring, the Taylor attention's normalisation, operation-count monotonicity and
//! the linear-algebra identities the accelerator relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::attention::opcount::{taylor_attention_ops, vanilla_softmax_ops};
use vitality::attention::{
    fused_softmax_attention, mean_center_keys, quantize_symmetric, AttentionKernel,
    AttentionMechanism, SangerSparseAttention, SoftmaxAttention, TaylorAttention,
    UnifiedAttentionKernel,
};
use vitality::tensor::{init, MatmulBackend, Matrix};

/// Strategy producing a matrix with the given shape and bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_rows_always_form_probability_distributions(m in matrix(6, 9)) {
        let s = m.softmax_rows();
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_invariant_to_per_row_constant_shifts(m in matrix(5, 7), shift in -3.0f32..3.0) {
        let shifted = m.add_scalar(shift);
        prop_assert!(m.softmax_rows().approx_eq(&shifted.softmax_rows(), 1e-4));
    }

    #[test]
    fn mean_centred_keys_always_have_zero_column_means(k in matrix(8, 6)) {
        let centred = mean_center_keys(&k);
        for &v in centred.col_mean().iter() {
            prop_assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn property1_softmax_attention_is_invariant_to_key_mean_centring(
        q in matrix(6, 4),
        k in matrix(6, 4),
        v in matrix(6, 4),
    ) {
        let softmax = SoftmaxAttention::new();
        let vanilla = AttentionMechanism::compute(&softmax, &q, &k, &v);
        let centred = AttentionMechanism::compute(&softmax, &q, &mean_center_keys(&k), &v);
        prop_assert!(vanilla.approx_eq(&centred, 2e-3));
    }

    #[test]
    fn taylor_weak_attention_rows_always_sum_to_one(q in matrix(7, 4), k in matrix(7, 4)) {
        let weak = TaylorAttention::new().weak_attention_map(&q, &k);
        for i in 0..weak.rows() {
            let sum: f32 = weak.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3, "row {} sums to {}", i, sum);
        }
    }

    #[test]
    fn taylor_score_is_always_finite_and_correctly_shaped(
        q in matrix(9, 8),
        k in matrix(9, 8),
        v in matrix(9, 8),
    ) {
        let z = AttentionMechanism::compute(&TaylorAttention::new(), &q, &k, &v);
        prop_assert_eq!(z.shape(), (9, 8));
        prop_assert!(z.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn weak_plus_strong_always_reconstructs_the_softmax_map(q in matrix(6, 4), k in matrix(6, 4)) {
        let attention = TaylorAttention::new();
        let rebuilt = attention
            .weak_attention_map(&q, &k)
            .try_add(&attention.strong_attention_map(&q, &k))
            .unwrap();
        let exact = SoftmaxAttention::new().attention_map(&q, &mean_center_keys(&k));
        prop_assert!(rebuilt.approx_eq(&exact, 2e-3));
    }

    #[test]
    fn sparse_masks_become_monotonically_sparser_with_the_threshold(
        q in matrix(8, 4),
        k in matrix(8, 4),
        t1 in 0.0f32..0.4,
        t2 in 0.4f32..1.0,
    ) {
        let loose = SangerSparseAttention::new(t1).prediction_mask(&q, &k);
        let tight = SangerSparseAttention::new(t2).prediction_mask(&q, &k);
        prop_assert!(tight.nnz() <= loose.nnz());
        // Every row always retains at least one key.
        for i in 0..tight.rows() {
            prop_assert!(tight.row(i).iter().any(|&m| m != 0.0));
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_the_step_size(m in matrix(6, 6), bits in 3u32..9) {
        let dequantized = quantize_symmetric(&m, bits);
        let max_abs = m.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let step = max_abs / ((1u32 << (bits - 1)) - 1) as f32;
        prop_assert!(m.max_abs_diff(&dequantized) <= 0.5 * step + 1e-6);
    }

    #[test]
    fn matmul_is_associative_the_identity_behind_the_linear_attention(
        a in matrix(5, 4),
        b in matrix(4, 3),
        c in matrix(3, 6),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-3));
    }

    #[test]
    fn transpose_products_match_their_fused_forms(a in matrix(5, 3), b in matrix(5, 3)) {
        prop_assert!(a.matmul_transpose_b(&b).approx_eq(&a.matmul(&b.transpose()), 1e-4));
        prop_assert!(a.transpose_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-4));
    }

    #[test]
    fn operation_counts_are_monotone_in_tokens_and_dimensions(
        n1 in 8usize..64, extra_n in 1usize..64,
        d in 4usize..64,
    ) {
        let n2 = n1 + extra_n;
        prop_assert!(vanilla_softmax_ops(n2, d).total() > vanilla_softmax_ops(n1, d).total());
        prop_assert!(taylor_attention_ops(n2, d).total() > taylor_attention_ops(n1, d).total());
        // The Taylor attention never uses exponentiations, for any shape.
        prop_assert_eq!(taylor_attention_ops(n2, d).exp, 0);
    }

    #[test]
    fn vanilla_to_taylor_multiplication_ratio_tracks_n_over_d(n in 32usize..256, d in 8usize..96) {
        let ratio = vanilla_softmax_ops(n, d).mul as f64 / taylor_attention_ops(n, d).mul as f64;
        let theoretical = 2.0 * n as f64 / (2.0 * d as f64 + 1.0);
        prop_assert!((ratio - theoretical).abs() / theoretical < 0.05);
    }

    #[test]
    fn blocked_backend_matches_the_naive_reference_on_random_ragged_shapes(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        seed in 0u64..1_000_000,
    ) {
        // Shapes land on both sides of the small-product cutoff and rarely divide the
        // 8x8 register tile, so the packing/edge-padding paths are all exercised.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, k, n, -1.0, 1.0);
        let fast = a.matmul_with(MatmulBackend::Blocked, &b);
        let slow = a.matmul_with(MatmulBackend::Naive, &b);
        prop_assert!(
            fast.approx_eq(&slow, 1e-4),
            "matmul {}x{}x{} diverged by {}", m, k, n, fast.max_abs_diff(&slow)
        );
    }

    #[test]
    fn blocked_transpose_products_match_the_naive_reference(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // A (m x k) * B^T (with B n x k), then A^T (k wide) * C (m x n).
        let a = init::uniform(&mut rng, m, k, -1.0, 1.0);
        let b = init::uniform(&mut rng, n, k, -1.0, 1.0);
        let c = init::uniform(&mut rng, m, n, -1.0, 1.0);
        let fast_bt = a.matmul_transpose_b_with(MatmulBackend::Blocked, &b);
        let slow_bt = a.matmul_transpose_b_with(MatmulBackend::Naive, &b);
        prop_assert!(
            fast_bt.approx_eq(&slow_bt, 1e-4),
            "matmul_transpose_b {}x{}x{} diverged by {}",
            m, k, n, fast_bt.max_abs_diff(&slow_bt)
        );
        let fast_at = a.transpose_matmul_with(MatmulBackend::Blocked, &c);
        let slow_at = a.transpose_matmul_with(MatmulBackend::Naive, &c);
        prop_assert!(
            fast_at.approx_eq(&slow_at, 1e-4),
            "transpose_matmul {}x{}x{} diverged by {}",
            m, k, n, fast_at.max_abs_diff(&slow_at)
        );
    }

    #[test]
    fn fused_taylor_kernel_always_matches_the_algorithm_1_trace(
        n in 2usize..90,
        d in 2usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = init::normal(&mut rng, n, d, 0.0, 0.5);
        let k = init::normal(&mut rng, n, d, 0.2, 0.5);
        let v = init::normal(&mut rng, n, d, 0.0, 1.0);
        let attention = TaylorAttention::new();
        let trace = attention.compute_with_trace(&q, &k, &v);
        let fused = attention.compute_fused(&q, &k, &v);
        prop_assert!(
            fused.approx_eq(&trace.score, 1e-4),
            "fused diverged from trace by {}", fused.max_abs_diff(&trace.score)
        );
        // The trace's own Step 6 identity must also hold.
        let rebuilt = trace.numerator.broadcast_div_col(&trace.denominator);
        prop_assert!(rebuilt.approx_eq(&trace.score, 1e-5));
    }

    #[test]
    fn fused_softmax_kernel_always_matches_the_map_pipeline(
        n in 2usize..90,
        d in 2usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = init::normal(&mut rng, n, d, 0.0, 0.8);
        let k = init::normal(&mut rng, n, d, 0.0, 0.8);
        let v = init::normal(&mut rng, n, d, 0.0, 1.0);
        let fused = fused_softmax_attention(&q, &k, &v);
        let unfused = SoftmaxAttention::new().attention_map(&q, &k).matmul(&v);
        prop_assert!(
            fused.approx_eq(&unfused, 1e-4),
            "fused diverged from map pipeline by {}", fused.max_abs_diff(&unfused)
        );
    }

    #[test]
    fn taylor_attention_of_identical_value_rows_returns_those_rows(
        q in matrix(6, 5),
        k in matrix(6, 5),
        row in proptest::collection::vec(-1.0f32..1.0, 5),
    ) {
        // If every value row is identical, any row-normalised attention returns that row.
        let v = Matrix::from_fn(6, 5, |_, j| row[j]);
        let z = AttentionMechanism::compute(&TaylorAttention::new(), &q, &k, &v);
        for i in 0..z.rows() {
            for (zv, rv) in z.row(i).iter().zip(row.iter()) {
                prop_assert!((zv - rv).abs() < 1e-3);
            }
        }
    }

    // Random-input fuzz of the unified fused-vs-traced identity; the deterministic
    // per-variant grids, workspace-reuse and adversarial-input checks live in the
    // kernel conformance suite (`tests/kernel_conformance.rs`), parameterized over
    // `AttentionVariant::all()` instead of a hand-enumerated kernel list here.
    #[test]
    fn fused_unified_kernel_always_tracks_the_traced_reference(
        q in matrix(9, 6),
        k in matrix(9, 6),
        v in matrix(9, 6),
        threshold in 0.0f32..0.8,
    ) {
        let kernel = UnifiedAttentionKernel::new(threshold);
        let fused = AttentionKernel::compute(&kernel, &q, &k, &v);
        let traced = AttentionMechanism::compute(&kernel.reference(), &q, &k, &v);
        prop_assert!(
            fused.max_abs_diff(&traced) <= 1e-4,
            "fused unified kernel diverged by {} at threshold {}",
            fused.max_abs_diff(&traced),
            threshold
        );
    }

    // Random-input fuzz of the int8 quantization-error contract: the quantized
    // Taylor kernel stays within its documented tolerance of the f32 trace for any
    // bounded input (the deterministic grid is in the conformance suite).
    #[test]
    fn int8_taylor_kernel_always_respects_its_documented_tolerance(
        q in matrix(9, 6),
        k in matrix(9, 6),
        v in matrix(9, 6),
    ) {
        use vitality::attention::{Int8Calibration, QuantizedTaylorKernel, INT8_TAYLOR_TOLERANCE};
        let kernel = QuantizedTaylorKernel::new(Int8Calibration::Dynamic);
        let int8 = AttentionKernel::compute(&kernel, &q, &k, &v);
        let f32_ref = kernel.reference().compute_with_trace(&q, &k, &v).score;
        prop_assert!(
            int8.max_abs_diff(&f32_ref) <= INT8_TAYLOR_TOLERANCE,
            "int8 taylor diverged by {}",
            int8.max_abs_diff(&f32_ref)
        );
    }
}
