//! Batching-semantics guarantees the serving engine depends on: `infer_batch` /
//! `predict_batch` must be *element-wise identical* to per-image `infer` / `predict`
//! for ragged batch sizes — a coalesced batch may never change a response.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::tensor::{init, Matrix};
use vitality::vit::{AttentionVariant, TrainConfig, VisionTransformer};

/// The ragged sizes the batcher actually produces: singleton flushes, tiny deadline
/// flushes, a prime mid-size and one crossing the default max-batch boundary.
const RAGGED_SIZES: [usize; 4] = [1, 2, 7, 33];

fn images(cfg: &TrainConfig, seed: u64, count: usize) -> Vec<Matrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| init::uniform(&mut rng, cfg.image_size, cfg.image_size, -1.0, 1.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn infer_batch_is_elementwise_identical_to_sequential_infer(
        model_seed in 0u64..1_000_000,
        image_seed in 0u64..1_000_000,
    ) {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(model_seed);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        for size in RAGGED_SIZES {
            let batch = images(&cfg, image_seed, size);
            let batched = model.infer_batch(&batch);
            prop_assert_eq!(batched.len(), size);
            for (out, img) in batched.iter().zip(batch.iter()) {
                let single = model.infer(img);
                // Bit-exact, not approximate: the parallel batch path must run the
                // same arithmetic as the sequential path.
                prop_assert_eq!(&out.logits, &single.logits, "size {}", size);
                prop_assert_eq!(&out.tokens, &single.tokens, "size {}", size);
            }
        }
    }

    #[test]
    fn predict_batch_matches_sequential_predict_for_both_variants(
        model_seed in 0u64..1_000_000,
        image_seed in 0u64..1_000_000,
    ) {
        let cfg = TrainConfig::tiny();
        for variant in [AttentionVariant::Taylor, AttentionVariant::Softmax] {
            let mut rng = StdRng::seed_from_u64(model_seed);
            let model = VisionTransformer::new(&mut rng, cfg, variant);
            for size in RAGGED_SIZES {
                let batch = images(&cfg, image_seed, size);
                let batched = model.predict_batch(&batch);
                let sequential: Vec<usize> = batch.iter().map(|img| model.predict(img)).collect();
                prop_assert_eq!(batched, sequential, "variant {} size {}", variant.label(), size);
            }
        }
    }
}
