//! Batching-semantics guarantees the serving engine depends on: `infer_batch` /
//! `predict_batch` must be *element-wise identical* to per-image `infer` / `predict`
//! for ragged batch sizes — a coalesced batch may never change a response — and
//! `/healthz` must report the batcher's load (queue depth + in-flight batches), the
//! signal the cluster gateway's least-loaded routing reads.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;

use vitality::serve::{BatchPolicy, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality::tensor::{init, Matrix};
use vitality::vit::{AttentionVariant, TrainConfig, VisionTransformer};

/// The ragged sizes the batcher actually produces: singleton flushes, tiny deadline
/// flushes, a prime mid-size and one crossing the default max-batch boundary.
const RAGGED_SIZES: [usize; 4] = [1, 2, 7, 33];

fn images(cfg: &TrainConfig, seed: u64, count: usize) -> Vec<Matrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| init::uniform(&mut rng, cfg.image_size, cfg.image_size, -1.0, 1.0))
        .collect()
}

/// `/healthz` reports the coalescing queue's depth and the in-flight batch count
/// while requests wait out the batching deadline — the numbers a gateway ranks
/// engines by.
#[test]
fn healthz_reports_queue_depth_and_in_flight_batches() {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(5), cfg, AttentionVariant::Taylor);
    let mut registry = ModelRegistry::new();
    registry.register("m", model).expect("valid name");
    let server = Server::start(
        ServerConfig {
            policy: BatchPolicy {
                // A long deadline with a large batch bound parks the requests in the
                // queue, where healthz must count them.
                max_batch: 64,
                max_delay: Duration::from_millis(1500),
                queue_capacity: 64,
            },
            workers: 1,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot server");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let img = init::uniform(
                        &mut StdRng::seed_from_u64(40 + i),
                        cfg.image_size,
                        cfg.image_size,
                        0.0,
                        1.0,
                    );
                    client
                        .infer("m:taylor", &img)
                        .expect("answered at the deadline flush")
                })
            })
            .collect();

        let mut probe = ServeClient::connect(addr).expect("connect probe");
        let deadline = Instant::now() + Duration::from_millis(1200);
        let mut deepest = 0usize;
        loop {
            let (status, health) = probe.get("/healthz").expect("healthz");
            assert_eq!(status, 200);
            let depth = health
                .get("queue_depth")
                .and_then(JsonValue::as_usize)
                .expect("healthz must report queue_depth");
            let in_flight = health
                .get("in_flight_batches")
                .and_then(JsonValue::as_usize)
                .expect("healthz must report in_flight_batches");
            assert!(in_flight <= 1, "one worker runs at most one batch");
            deepest = deepest.max(depth);
            if deepest == 3 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "queued requests never appeared in healthz (deepest observation: {deepest})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        for handle in handles {
            let reply = handle.join().expect("client thread");
            assert!(reply.batch_size >= 1);
        }
    });
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn infer_batch_is_elementwise_identical_to_sequential_infer(
        model_seed in 0u64..1_000_000,
        image_seed in 0u64..1_000_000,
    ) {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(model_seed);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        for size in RAGGED_SIZES {
            let batch = images(&cfg, image_seed, size);
            let batched = model.infer_batch(&batch);
            prop_assert_eq!(batched.len(), size);
            for (out, img) in batched.iter().zip(batch.iter()) {
                let single = model.infer(img);
                // Bit-exact, not approximate: the parallel batch path must run the
                // same arithmetic as the sequential path.
                prop_assert_eq!(&out.logits, &single.logits, "size {}", size);
                prop_assert_eq!(&out.tokens, &single.tokens, "size {}", size);
            }
        }
    }

    #[test]
    fn predict_batch_matches_sequential_predict_for_both_variants(
        model_seed in 0u64..1_000_000,
        image_seed in 0u64..1_000_000,
    ) {
        let cfg = TrainConfig::tiny();
        for variant in [AttentionVariant::Taylor, AttentionVariant::Softmax] {
            let mut rng = StdRng::seed_from_u64(model_seed);
            let model = VisionTransformer::new(&mut rng, cfg, variant);
            for size in RAGGED_SIZES {
                let batch = images(&cfg, image_seed, size);
                let batched = model.predict_batch(&batch);
                let sequential: Vec<usize> = batch.iter().map(|img| model.predict(img)).collect();
                prop_assert_eq!(batched, sequential, "variant {} size {}", variant.label(), size);
            }
        }
    }
}
