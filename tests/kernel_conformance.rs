//! The kernel conformance suite: every [`AttentionVariant`] — current and future —
//! must pass this file to be servable.
//!
//! This is the acceptance gate the `AttentionKernel` rustdoc points new variants at.
//! It iterates [`AttentionVariant::all()`] (one representative configuration per
//! declared arm; adding an arm without extending `all()` fails a unit test in
//! `vitality-vit`), so a new kernel is covered by writing **zero** new test code:
//!
//! 1. `compute_into` matches the variant's traced / unfused reference within its
//!    documented tolerance;
//! 2. `label()` is unique across variants and free of `:` (the serving registry's
//!    `name:variant` separator);
//! 3. workspace reuse is bit-exact — a second call on a warm, dirty workspace
//!    reproduces the first call's output exactly and allocates nothing;
//! 4. outputs stay finite on adversarial inputs (all-zero Q/K/V, large-magnitude
//!    logits, a single token);
//! 5. `forward_train` agrees with `compute` through the multi-head module (the
//!    train/infer consistency the paper's fine-tune-then-switch recipe relies on).
//!
//! The per-variant comparison loops previously duplicated across
//! `attention_equivalences.rs` and `property_tests.rs` live here now, parameterized
//! over the variant list instead of hand-enumerated.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::attention::{
    fused_softmax_attention, AttentionKernel, AttentionMechanism, SangerSparseAttention,
    TaylorAttention, UnifiedAttentionKernel, INT8_TAYLOR_TOLERANCE, INT8_UNIFIED_TOLERANCE,
};
use vitality::autograd::Graph;
use vitality::nn::ParamRegistry;
use vitality::tensor::{init, Matrix, Workspace};
use vitality::vit::{AttentionVariant, MultiHeadAttention};

fn qkv(n: usize, d: usize, scale: f32, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        init::normal(&mut rng, n, d, 0.0, scale),
        init::normal(&mut rng, n, d, 0.1, scale),
        init::normal(&mut rng, n, d, 0.0, 1.0),
    )
}

/// The traced / unfused reference each variant's fused kernel is measured against,
/// plus the variant's documented divergence tolerance.
///
/// References are deliberately *different code paths* from the kernels: the explicit
/// `n x n` map pipelines and the step-by-step Algorithm-1 trace, so a bug in a fused
/// kernel cannot hide in a shared implementation. Exact-delegation kernels (sparse)
/// carry tolerance 0.
fn reference_and_tolerance(
    variant: AttentionVariant,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
) -> (Matrix, f32) {
    match variant {
        AttentionVariant::Softmax => (fused_softmax_attention(q, k, v), 1e-4),
        AttentionVariant::Taylor => (
            TaylorAttention::new().compute_with_trace(q, k, v).score,
            1e-4,
        ),
        AttentionVariant::TaylorNoCentering => (
            TaylorAttention::without_mean_centering()
                .compute_with_trace(q, k, v)
                .score,
            1e-4,
        ),
        AttentionVariant::Sparse { threshold } => (
            AttentionMechanism::compute(&SangerSparseAttention::new(threshold), q, k, v),
            0.0,
        ),
        AttentionVariant::Unified { threshold } => (
            AttentionMechanism::compute(
                &UnifiedAttentionKernel::new(threshold).reference(),
                q,
                k,
                v,
            ),
            1e-4,
        ),
        // The quantized kernels approximate their f32 siblings; the tolerance is the
        // documented quantization error budget, not a numerical artefact.
        AttentionVariant::Int8Taylor { .. } => (
            TaylorAttention::new().compute_with_trace(q, k, v).score,
            INT8_TAYLOR_TOLERANCE,
        ),
        AttentionVariant::Int8Unified { threshold, .. } => (
            AttentionMechanism::compute(
                &UnifiedAttentionKernel::new(threshold).reference(),
                q,
                k,
                v,
            ),
            INT8_UNIFIED_TOLERANCE,
        ),
    }
}

/// Per-variant tolerance for the multi-head train-vs-infer consistency check. Larger
/// than the kernel-level tolerances because the comparison crosses four projections
/// and a head merge, and the quantized kernels' `forward_train` deliberately falls
/// back to the f32 path.
fn train_infer_tolerance(variant: AttentionVariant) -> f32 {
    match variant {
        AttentionVariant::Int8Taylor { .. } | AttentionVariant::Int8Unified { .. } => 0.25,
        _ => 2e-2,
    }
}

#[test]
fn labels_are_unique_and_colon_free() {
    let variants = AttentionVariant::all();
    let mut labels: Vec<&'static str> = Vec::new();
    for variant in &variants {
        let label = variant.label();
        assert!(!label.is_empty(), "{variant:?} has an empty label");
        assert!(
            !label.contains(':'),
            "label {label:?} contains the registry separator ':'"
        );
        assert_eq!(
            label,
            variant.kernel().label(),
            "{variant:?}: configuration label and kernel label disagree"
        );
        assert!(
            !labels.contains(&label),
            "label {label:?} is claimed by two variants"
        );
        labels.push(label);
    }
    assert_eq!(labels.len(), variants.len());
}

#[test]
fn every_kernel_matches_its_traced_reference() {
    for variant in AttentionVariant::all() {
        let kernel = variant.kernel();
        for &n in &[1usize, 7, 64, 196] {
            let (q, k, v) = qkv(n, 16, 0.6, 7100 + n as u64);
            let fused = kernel.compute(&q, &k, &v);
            let (reference, tolerance) = reference_and_tolerance(variant, &q, &k, &v);
            let diff = fused.max_abs_diff(&reference);
            assert!(
                diff <= tolerance,
                "{} diverged from its reference at n={n}: {diff} > {tolerance}",
                kernel.label()
            );
        }
    }
}

#[test]
fn workspace_reuse_is_bit_exact_and_allocation_free() {
    for variant in AttentionVariant::all() {
        let kernel = variant.kernel();
        let (q, k, v) = qkv(40, 12, 0.5, 7200);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(40, 12);
        kernel.compute_into(&q, &k, &v, &mut ws, &mut out);
        let first = out.clone();
        let (checkouts, hits) = (ws.checkouts(), ws.pool_hits());
        // Dirty the output to prove it is fully overwritten, then rerun on the warm
        // (dirty) pool.
        out.map_inplace(|_| f32::NAN);
        kernel.compute_into(&q, &k, &v, &mut ws, &mut out);
        assert_eq!(
            out,
            first,
            "{} must be bit-exact under workspace reuse",
            kernel.label()
        );
        assert_eq!(
            ws.checkouts() - checkouts,
            ws.pool_hits() - hits,
            "{} allocated on a warm workspace",
            kernel.label()
        );
    }
}

#[test]
fn adversarial_inputs_produce_finite_outputs() {
    for variant in AttentionVariant::all() {
        let kernel = variant.kernel();
        let label = kernel.label();
        let assert_finite = |name: &str, q: &Matrix, k: &Matrix, v: &Matrix| {
            let out = kernel.compute(q, k, v);
            assert_eq!(out.shape(), (q.rows(), v.cols()));
            assert!(
                out.iter().all(|x| x.is_finite()),
                "{label} produced NaN/inf on {name}"
            );
        };
        // All-zero Q/K/V: degenerate scales, uniform attention.
        let z = Matrix::zeros(6, 8);
        assert_finite("all-zero q/k/v", &z, &z, &z);
        // Large-magnitude logits: the regime where a naive softmax overflows and the
        // Taylor denominator is stressed.
        let (q, k, v) = qkv(24, 8, 8.0, 7300);
        assert_finite("large-magnitude logits", &q, &k, &v);
        // A single token: every reduction collapses to one element.
        let (q, k, v) = qkv(1, 8, 0.7, 7301);
        assert_finite("n=1", &q, &k, &v);
    }
}

#[test]
fn multi_head_train_and_infer_agree_for_every_variant() {
    let mut rng = StdRng::seed_from_u64(7400);
    let mut mha = MultiHeadAttention::new(&mut rng, 16, 4, AttentionVariant::Softmax);
    let x = init::normal(&mut rng, 10, 16, 0.0, 0.4);
    for variant in AttentionVariant::all() {
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        mha.set_variant(variant);
        assert_eq!(mha.kernel().label(), variant.label());
        let out = mha.forward_train(&graph, &mut reg, "attn", &graph.constant(x.clone()));
        let inferred = mha.infer(&x);
        let tolerance = train_infer_tolerance(variant);
        assert!(
            out.value().approx_eq(&inferred, tolerance),
            "variant {} train/infer mismatch {}",
            variant.label(),
            out.value().max_abs_diff(&inferred)
        );
        // Gradients reach all four projection matrices.
        let grads = graph.backward(&out.mean_all());
        for name in [
            "attn.wq.weight",
            "attn.wk.weight",
            "attn.wv.weight",
            "attn.wo.weight",
        ] {
            assert!(
                reg.grad(name, &grads).is_some(),
                "missing gradient for {name} under {}",
                variant.label()
            );
        }
    }
}

/// The deterministic fused-vs-traced grid for the f32 unified kernel: token counts
/// spanning one token to the serving workload × the paper's threshold range. The
/// int8-unified threshold grid lives in `quantized.rs`'s unit tests (its tolerance is
/// the quantization budget, not 1e-4); a future threshold-bearing variant needs its
/// own grid here or beside its kernel — `every_kernel_matches_its_traced_reference`
/// above covers only the one representative threshold `all()` carries.
#[test]
fn fused_unified_kernel_tracks_its_reference_across_the_threshold_grid() {
    for &threshold in &[0.0f32, 0.1, 0.5] {
        for &n in &[1usize, 7, 64, 196] {
            let (q, k, v) = qkv(n, 16, 0.6, 8000 + n as u64);
            let kernel = UnifiedAttentionKernel::new(threshold);
            let fused = AttentionKernel::compute(&kernel, &q, &k, &v);
            let traced = AttentionMechanism::compute(&kernel.reference(), &q, &k, &v);
            let diff = fused.max_abs_diff(&traced);
            assert!(
                diff <= 1e-4,
                "fused unified kernel diverged at n={n} threshold={threshold}: {diff}"
            );
        }
    }
}
