//! Cross-crate integration tests of the hardware results' *shapes*: who wins, by roughly
//! what factor, and where the ablations point — matching the paper's evaluation section.

use vitality::accel::{AcceleratorConfig, Dataflow, PipelineMode, VitalityAccelerator};
use vitality::baselines::{AttentionKind, DeviceModel, SangerAccelerator, SangerConfig};
use vitality::vit::{ModelConfig, ModelWorkload};

fn vitality() -> VitalityAccelerator {
    VitalityAccelerator::new(AcceleratorConfig::paper())
}

#[test]
fn table1_shape_operation_reduction_grows_with_n_over_d() {
    // DeiT-Tiny ~3x, MobileViT-xs ~6x, LeViT-128 largest (paper: 3.1x / 5.9x / 10.7x).
    let ratio = |cfg: ModelConfig| {
        let wl = ModelWorkload::for_model(&cfg);
        wl.vanilla_attention_ops().mul as f64 / wl.taylor_attention_ops().mul as f64
    };
    let deit = ratio(ModelConfig::deit_tiny());
    let mobile = ratio(ModelConfig::mobilevit_xs());
    let levit = ratio(ModelConfig::levit_128());
    assert!((2.5..3.7).contains(&deit), "DeiT-Tiny ratio {deit:.1}");
    assert!(
        (4.5..8.0).contains(&mobile),
        "MobileViT-xs ratio {mobile:.1}"
    );
    assert!(levit > mobile && levit > 6.0, "LeViT-128 ratio {levit:.1}");
}

#[test]
fn fig11_shape_vitality_accelerator_wins_everywhere_and_by_the_right_order() {
    let sanger = SangerAccelerator::new(SangerConfig::paper());
    let cpu = DeviceModel::xeon_6230();
    let gpu = DeviceModel::rtx_2080ti();
    let edge = DeviceModel::jetson_tx2();
    let mut sanger_speedups = Vec::new();
    let mut cpu_speedups = Vec::new();
    let mut gpu_speedups = Vec::new();
    let mut edge_speedups = Vec::new();
    for cfg in ModelConfig::all_models() {
        let wl = ModelWorkload::for_model(&cfg);
        let ours = vitality().simulate_model(&wl).total_latency_s;
        sanger_speedups.push(sanger.simulate_model(&wl).total_latency_s / ours);
        cpu_speedups.push(
            cpu.simulate(&wl, AttentionKind::VanillaSoftmax)
                .total_latency_s()
                / ours,
        );
        gpu_speedups.push(
            gpu.simulate(&wl, AttentionKind::VanillaSoftmax)
                .total_latency_s()
                / ours,
        );
        edge_speedups.push(
            edge.simulate(&wl, AttentionKind::VanillaSoftmax)
                .total_latency_s()
                / ours,
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Every comparison is a win.
    assert!(sanger_speedups.iter().all(|&s| s > 1.0));
    assert!(cpu_speedups.iter().all(|&s| s > 1.0));
    assert!(gpu_speedups.iter().all(|&s| s > 1.0));
    assert!(edge_speedups.iter().all(|&s| s > 1.0));
    // Paper averages: ~2x GPU, ~3x Sanger, ~30x EdgeGPU, ~53x CPU. Require the same
    // ordering and the same order of magnitude.
    let (gpu_avg, sanger_avg, edge_avg, cpu_avg) = (
        avg(&gpu_speedups),
        avg(&sanger_speedups),
        avg(&edge_speedups),
        avg(&cpu_speedups),
    );
    assert!(
        gpu_avg < sanger_avg || gpu_avg < 2.0 * sanger_avg,
        "GPU {gpu_avg:.1} Sanger {sanger_avg:.1}"
    );
    assert!(
        sanger_avg < edge_avg,
        "Sanger {sanger_avg:.1} EdgeGPU {edge_avg:.1}"
    );
    assert!(
        edge_avg > 8.0 && cpu_avg > 15.0,
        "EdgeGPU {edge_avg:.1} CPU {cpu_avg:.1}"
    );
}

#[test]
fn fig12_shape_energy_efficiency_ordering() {
    // Paper averages: ~3x Sanger, ~73x GPU, ~67x EdgeGPU, ~115x CPU.
    let sanger = SangerAccelerator::new(SangerConfig::paper());
    let cpu = DeviceModel::xeon_6230();
    let gpu = DeviceModel::rtx_2080ti();
    let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
    let ours = vitality().simulate_model(&wl).total_energy_j;
    let vs_sanger = sanger.simulate_model(&wl).total_energy_j / ours;
    let vs_cpu = cpu.simulate(&wl, AttentionKind::VanillaSoftmax).energy_j / ours;
    let vs_gpu = gpu.simulate(&wl, AttentionKind::VanillaSoftmax).energy_j / ours;
    assert!(
        vs_sanger > 1.0 && vs_sanger < 20.0,
        "vs Sanger {vs_sanger:.1}"
    );
    assert!(vs_cpu > vs_gpu, "CPU should be the least efficient");
    assert!(vs_cpu > 20.0, "vs CPU {vs_cpu:.1}");
}

#[test]
fn table5_shape_down_forward_dataflow_wins_overall_for_every_model() {
    for cfg in [
        ModelConfig::deit_base(),
        ModelConfig::mobilevit_xxs(),
        ModelConfig::mobilevit_xs(),
        ModelConfig::levit_128s(),
        ModelConfig::levit_128(),
    ] {
        let wl = ModelWorkload::for_model(&cfg);
        let ours = vitality().simulate_model(&wl).attention_energy;
        let gs = vitality()
            .with_dataflow(Dataflow::GStationary)
            .simulate_model(&wl)
            .attention_energy;
        assert!(
            ours.data_access_j > gs.data_access_j,
            "{}: data access",
            cfg.name
        );
        assert!(
            ours.systolic_array_j < gs.systolic_array_j,
            "{}: systolic",
            cfg.name
        );
        assert!(ours.total_j() < gs.total_j(), "{}: overall", cfg.name);
    }
}

#[test]
fn pipeline_ablation_improves_attention_throughput_for_every_model() {
    for cfg in ModelConfig::all_models() {
        let wl = ModelWorkload::for_model(&cfg);
        let pipelined = vitality().simulate_model(&wl).attention_cycles;
        let sequential = vitality()
            .with_pipeline(PipelineMode::Sequential)
            .simulate_model(&wl)
            .attention_cycles;
        assert!(
            pipelined < sequential,
            "{}: {pipelined} vs {sequential}",
            cfg.name
        );
    }
}

#[test]
fn fig1_shape_softmax_dominates_and_worsens_on_weaker_devices() {
    let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
    let softmax_share = |device: DeviceModel| {
        let report = device.simulate(&wl, AttentionKind::VanillaSoftmax);
        let softmax = report
            .attention_steps
            .iter()
            .find(|s| s.step == vitality::vit::AttentionStep::SoftmaxAttentionMap)
            .unwrap()
            .latency_s;
        softmax / report.mha_latency_s()
    };
    let gpu = softmax_share(DeviceModel::rtx_2080ti());
    let edge = softmax_share(DeviceModel::jetson_tx2());
    let phone = softmax_share(DeviceModel::pixel3());
    assert!(gpu > 0.4 && phone < 0.75);
    assert!(
        gpu <= edge && edge <= phone,
        "{gpu:.2} {edge:.2} {phone:.2}"
    );
}

#[test]
fn table2_shape_taylor_attention_does_not_speed_up_on_general_platforms_but_does_on_the_accelerator(
) {
    let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
    let edge = DeviceModel::jetson_tx2();
    let vanilla_edge = edge
        .simulate(&wl, AttentionKind::VanillaSoftmax)
        .attention_latency_s();
    let taylor_edge = edge
        .simulate(&wl, AttentionKind::Taylor)
        .attention_latency_s();
    // On the edge GPU the Taylor attention gains little or even loses (paper: 14.03 ms vs
    // 11.65 ms)...
    assert!(taylor_edge > 0.7 * vanilla_edge);
    // ...while the dedicated accelerator runs the same workload orders of magnitude faster.
    let accel_latency = vitality().simulate_model(&wl).attention_latency_s;
    assert!(vanilla_edge / accel_latency > 50.0);
}
