//! End-to-end training integration tests on a miniature version of the accuracy
//! experiments: the four schemes run, the ViTALiTy recipe is usable after dropping the
//! sparse component, and the Fig. 14 occupancy probe behaves.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::train::{
    run_scheme_with_baseline, train_baseline, Adam, DatasetConfig, SchemeContext, SyntheticDataset,
    TrainOptions, Trainer, TrainingScheme,
};
use vitality::vit::{AttentionVariant, TrainConfig, VisionTransformer};

fn context(seed: u64) -> SchemeContext {
    let mut rng = StdRng::seed_from_u64(seed);
    SchemeContext {
        model_config: TrainConfig::tiny(),
        dataset: SyntheticDataset::generate(&mut rng, DatasetConfig::tiny()),
        options: TrainOptions {
            epochs: 3,
            batch_size: 4,
            distillation: None,
            track_sparse_occupancy: false,
        },
        learning_rate: 0.01,
        seed,
    }
}

#[test]
fn baseline_training_learns_something_on_the_synthetic_task() {
    let ctx = context(1);
    let (model, history) = train_baseline(&ctx);
    let chance = 1.0 / ctx.model_config.classes as f32;
    let accuracy = model.accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels());
    assert!(history.last().unwrap().train_loss < history[0].train_loss);
    assert!(
        accuracy >= chance * 0.9,
        "accuracy {accuracy} vs chance {chance}"
    );
}

#[test]
fn every_training_scheme_runs_and_reports_an_accuracy() {
    let ctx = context(2);
    let (baseline, _) = train_baseline(&ctx);
    for scheme in [
        TrainingScheme::Sparse { threshold: 0.02 },
        TrainingScheme::LowRankDropIn,
        TrainingScheme::LowRankSparse {
            threshold: 0.5,
            distillation: false,
        },
        TrainingScheme::Vitality {
            threshold: 0.5,
            distillation: true,
        },
    ] {
        let outcome = run_scheme_with_baseline(scheme, &ctx, Some(&baseline));
        assert!(
            (0.0..=1.0).contains(&outcome.final_accuracy),
            "{}: accuracy {}",
            scheme.label(),
            outcome.final_accuracy
        );
    }
}

#[test]
fn vitality_model_switches_from_unified_training_to_taylor_inference() {
    // The deployment recipe: fine-tune with the unified attention, then flip the variant to
    // the pure linear Taylor attention — the weights are untouched and inference still works.
    let ctx = context(3);
    let mut rng = StdRng::seed_from_u64(33);
    let mut model = VisionTransformer::new(
        &mut rng,
        ctx.model_config,
        AttentionVariant::Unified { threshold: 0.5 },
    );
    let trainer = Trainer::new(ctx.options);
    let mut optimizer = Adam::new(ctx.learning_rate, 1e-4);
    let history = trainer.train(&mut model, &mut optimizer, &ctx.dataset, None);
    assert_eq!(history.len(), ctx.options.epochs);
    let unified_accuracy = model.accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels());
    model.set_variant(AttentionVariant::Taylor);
    let taylor_accuracy = model.accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels());
    assert!((0.0..=1.0).contains(&unified_accuracy));
    assert!((0.0..=1.0).contains(&taylor_accuracy));
    // Both run on the same weights; the linear-attention accuracy should be in the same
    // ballpark (the Fig. 14 claim that the sparse component becomes redundant).
    assert!((unified_accuracy - taylor_accuracy).abs() <= 0.5);
}

#[test]
fn sparse_occupancy_probe_is_tracked_and_bounded_during_unified_training() {
    let ctx = context(4);
    let mut rng = StdRng::seed_from_u64(44);
    let mut model = VisionTransformer::new(
        &mut rng,
        ctx.model_config,
        AttentionVariant::Unified { threshold: 0.5 },
    );
    let trainer = Trainer::new(TrainOptions {
        track_sparse_occupancy: true,
        ..ctx.options
    });
    let mut optimizer = Adam::new(ctx.learning_rate, 1e-4);
    let history = trainer.train(&mut model, &mut optimizer, &ctx.dataset, None);
    for stats in &history {
        assert!((0.0..=1.0).contains(&stats.sparse_occupancy));
    }
    // The threshold-0.5 sparse component is already sparse at the start (only strong
    // predicted connections survive).
    assert!(history[0].sparse_occupancy < 0.6);
}
