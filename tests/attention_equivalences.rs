//! Cross-crate integration tests of the algorithmic identities the paper relies on:
//! Property 1 (mean-centring invariance), the weak/strong decomposition, the linearisation
//! identity behind the global context matrix, and the training/inference consistency of
//! the multi-head attention module.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::attention::{
    mean_center_keys, AttentionMechanism, SoftmaxAttention, TaylorAttention,
    UnifiedLowRankSparseAttention,
};
use vitality::nn::ParamRegistry;
use vitality::tensor::{init, Matrix};
use vitality::vit::{AttentionVariant, MultiHeadAttention};

fn qkv(n: usize, d: usize, scale: f32, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        init::normal(&mut rng, n, d, 0.0, scale),
        init::normal(&mut rng, n, d, 0.1, scale),
        init::normal(&mut rng, n, d, 0.0, 1.0),
    )
}

#[test]
fn property1_mean_centering_never_changes_the_softmax_attention() {
    for seed in 0..5 {
        let (q, k, v) = qkv(48, 32, 0.7, seed);
        let vanilla = SoftmaxAttention::new().compute(&q, &k, &v);
        let centred = SoftmaxAttention::new().compute(&q, &mean_center_keys(&k), &v);
        assert!(
            vanilla.approx_eq(&centred, 1e-3),
            "seed {seed}: max diff {}",
            vanilla.max_abs_diff(&centred)
        );
    }
}

#[test]
fn associativity_identity_taylor_score_equals_explicit_map_times_values() {
    // The whole point of the linear attention: Q (K^T V) computed via the d x d global
    // context matrix equals the explicit (n x n) first-order map applied to V.
    for seed in 0..3 {
        let (q, k, v) = qkv(40, 16, 0.4, 100 + seed);
        let attention = TaylorAttention::new();
        let via_context = attention.compute(&q, &k, &v);
        let via_map = attention.weak_attention_map(&q, &k).matmul(&v);
        assert!(via_context.approx_eq(&via_map, 1e-3));
    }
}

#[test]
fn unified_attention_with_zero_threshold_reconstructs_softmax_exactly() {
    let (q, k, v) = qkv(24, 8, 0.9, 200);
    let unified = UnifiedLowRankSparseAttention::new(0.0).compute(&q, &k, &v);
    let exact = SoftmaxAttention::new().compute(&q, &k, &v);
    assert!(unified.approx_eq(&exact, 1e-3));
}

#[test]
fn taylor_is_a_good_approximation_exactly_when_logits_are_small() {
    let error_at_scale = |scale: f32| {
        let (q, k, v) = qkv(32, 16, scale, 300);
        SoftmaxAttention::new()
            .compute(&q, &k, &v)
            .max_abs_diff(&TaylorAttention::new().compute(&q, &k, &v))
    };
    let small = error_at_scale(0.05);
    let large = error_at_scale(1.2);
    assert!(small < 0.05, "small-logit error {small}");
    assert!(large > small, "error must grow with the logit scale");
}

#[test]
fn multi_head_attention_training_graph_matches_inference_for_the_vitality_recipe() {
    let mut rng = StdRng::seed_from_u64(400);
    let mut mha = MultiHeadAttention::new(&mut rng, 16, 4, AttentionVariant::Softmax);
    let x = init::normal(&mut rng, 10, 16, 0.0, 0.4);
    for variant in [
        AttentionVariant::Softmax,
        AttentionVariant::Taylor,
        AttentionVariant::Unified { threshold: 0.5 },
    ] {
        let graph = vitality::autograd::Graph::new();
        let mut reg = ParamRegistry::new();
        mha.set_variant(variant);
        let out = mha.forward_train(&graph, &mut reg, "attn", &graph.constant(x.clone()));
        let inferred = mha.infer(&x);
        assert!(
            out.value().approx_eq(&inferred, 2e-2),
            "variant {:?} mismatch {}",
            variant,
            out.value().max_abs_diff(&inferred)
        );
        // Gradients reach all four projection matrices.
        let grads = graph.backward(&out.mean_all());
        for name in [
            "attn.wq.weight",
            "attn.wk.weight",
            "attn.wv.weight",
            "attn.wo.weight",
        ] {
            assert!(
                reg.grad(name, &grads).is_some(),
                "missing gradient for {name}"
            );
        }
    }
}

#[test]
fn operation_count_crossover_taylor_wins_beyond_n_equals_d() {
    // Eq. (1): the multiplication ratio is ~n/d, so the Taylor attention wins exactly when
    // n exceeds d (high-resolution inputs) and loses when n < d.
    let d = 64;
    let taylor = TaylorAttention::new();
    let softmax = SoftmaxAttention::new();
    let cheaper_at = |n: usize| taylor.op_counts(n, d).mul < softmax.op_counts(n, d).mul;
    assert!(!cheaper_at(16), "Taylor should not win at n << d");
    assert!(!cheaper_at(32));
    assert!(cheaper_at(128), "Taylor should win at n = 2d");
    assert!(cheaper_at(197));
    assert!(cheaper_at(576));
}
