//! Cross-crate integration tests of the algorithmic identities the paper relies on:
//! Property 1 (mean-centring invariance), the weak/strong decomposition and the
//! linearisation identity behind the global context matrix.
//!
//! Per-variant kernel checks (train/infer consistency, fused-vs-traced divergence,
//! workspace reuse) live in the parameterized conformance suite
//! (`tests/kernel_conformance.rs`), which iterates `AttentionVariant::all()` instead
//! of hand-enumerating variants here.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vitality::attention::{
    mean_center_keys, AttentionMechanism, SoftmaxAttention, TaylorAttention,
    UnifiedLowRankSparseAttention,
};
use vitality::tensor::{init, Matrix};

fn qkv(n: usize, d: usize, scale: f32, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        init::normal(&mut rng, n, d, 0.0, scale),
        init::normal(&mut rng, n, d, 0.1, scale),
        init::normal(&mut rng, n, d, 0.0, 1.0),
    )
}

#[test]
fn property1_mean_centering_never_changes_the_softmax_attention() {
    for seed in 0..5 {
        let (q, k, v) = qkv(48, 32, 0.7, seed);
        let vanilla = SoftmaxAttention::new().compute(&q, &k, &v);
        let centred = SoftmaxAttention::new().compute(&q, &mean_center_keys(&k), &v);
        assert!(
            vanilla.approx_eq(&centred, 1e-3),
            "seed {seed}: max diff {}",
            vanilla.max_abs_diff(&centred)
        );
    }
}

#[test]
fn associativity_identity_taylor_score_equals_explicit_map_times_values() {
    // The whole point of the linear attention: Q (K^T V) computed via the d x d global
    // context matrix equals the explicit (n x n) first-order map applied to V.
    for seed in 0..3 {
        let (q, k, v) = qkv(40, 16, 0.4, 100 + seed);
        let attention = TaylorAttention::new();
        let via_context = attention.compute(&q, &k, &v);
        let via_map = attention.weak_attention_map(&q, &k).matmul(&v);
        assert!(via_context.approx_eq(&via_map, 1e-3));
    }
}

#[test]
fn unified_attention_with_zero_threshold_reconstructs_softmax_exactly() {
    let (q, k, v) = qkv(24, 8, 0.9, 200);
    let unified = UnifiedLowRankSparseAttention::new(0.0).compute(&q, &k, &v);
    let exact = SoftmaxAttention::new().compute(&q, &k, &v);
    assert!(unified.approx_eq(&exact, 1e-3));
}

#[test]
fn taylor_is_a_good_approximation_exactly_when_logits_are_small() {
    let error_at_scale = |scale: f32| {
        let (q, k, v) = qkv(32, 16, scale, 300);
        SoftmaxAttention::new()
            .compute(&q, &k, &v)
            .max_abs_diff(&TaylorAttention::new().compute(&q, &k, &v))
    };
    let small = error_at_scale(0.05);
    let large = error_at_scale(1.2);
    assert!(small < 0.05, "small-logit error {small}");
    assert!(large > small, "error must grow with the logit scale");
}

#[test]
fn operation_count_crossover_taylor_wins_beyond_n_equals_d() {
    // Eq. (1): the multiplication ratio is ~n/d, so the Taylor attention wins exactly when
    // n exceeds d (high-resolution inputs) and loses when n < d.
    let d = 64;
    let taylor = TaylorAttention::new();
    let softmax = SoftmaxAttention::new();
    let cheaper_at = |n: usize| taylor.op_counts(n, d).mul < softmax.op_counts(n, d).mul;
    assert!(!cheaper_at(16), "Taylor should not win at n << d");
    assert!(!cheaper_at(32));
    assert!(cheaper_at(128), "Taylor should win at n = 2d");
    assert!(cheaper_at(197));
    assert!(cheaper_at(576));
}
