//! Allocation regression gate: a counting global allocator proves that the
//! workspace-threaded `VisionTransformer::infer_batch_into` serving loop performs
//! **zero** heap allocations at steady state.
//!
//! The counter only counts allocations made by threads that opted in via
//! [`count_this_thread`] — i.e. the test thread itself. The libtest harness keeps a
//! monitor thread blocked on an internal mpmc channel while the test runs, and that
//! thread lazily allocates its thread-local waker context at a timing-dependent
//! moment; a process-global count would (and, before the gate was scoped, flakily
//! did) attribute those harness allocations to the inference loop. The batched
//! inference path under test is strictly sequential (parallel fan-out lives in
//! `infer_batch`, which spawns threads and therefore allocates by design), so the
//! scoped count is deterministic regardless of the host's core count.
//!
//! The same gate covers the tracing primitives riding the serve path: with sampling
//! off, opening/closing a trace and recording a stage histogram sample must also be
//! allocation-free, so observability costs nothing when it is not watching.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vitality::serve::LatencyHistogram;
use vitality::tensor::{init, Matrix, Workspace};
use vitality::vit::{AttentionVariant, Int8Calibration, TrainConfig, VisionTransformer, VitOutput};

/// Wraps the system allocator and counts every allocation-producing call made by a
/// thread that opted in via [`count_this_thread`].
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    // `const`-initialised so reading it never itself allocates (no lazy init), and
    // accessed with `try_with` so allocations during TLS teardown stay safe.
    static COUNTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Opt the calling thread into the allocation count.
fn count_this_thread() {
    COUNTED.with(|c| c.set(true));
}

fn record() {
    if COUNTED.try_with(std::cell::Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_infer_batch_into_performs_zero_allocations() {
    count_this_thread();
    let cfg = TrainConfig::tiny();
    let mut rng = StdRng::seed_from_u64(4242);
    let mut model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
    let images: Vec<Matrix> = (0..3)
        .map(|i| {
            init::uniform(
                &mut StdRng::seed_from_u64(500 + i),
                cfg.image_size,
                cfg.image_size,
                0.0,
                1.0,
            )
        })
        .collect();

    // Every served variant must reach an allocation-free steady state: taylor is the
    // paper's inference configuration, softmax the baseline arm, unified the fused
    // low-rank + sparse path, and the two int8 variants exercise the workspace's
    // integer (`Vec<i8>`/`Vec<i32>`) pools.
    for variant in [
        AttentionVariant::Taylor,
        AttentionVariant::Softmax,
        AttentionVariant::Unified { threshold: 0.5 },
        AttentionVariant::Int8Taylor {
            calibration: Int8Calibration::Dynamic,
        },
        AttentionVariant::Int8Unified {
            threshold: 0.5,
            calibration: Int8Calibration::Dynamic,
        },
    ] {
        model.set_variant(variant);
        let mut ws = Workspace::new();
        let mut outputs: Vec<VitOutput> = Vec::new();

        // Warmup: the pool learns every buffer shape of the per-layer pattern and the
        // output vector reaches its final capacity.
        for _ in 0..3 {
            model.infer_batch_into(&images, &mut outputs, &mut ws);
        }
        let reference: Vec<Matrix> = outputs.iter().map(|o| o.logits.clone()).collect();

        let before = allocations();
        for _ in 0..5 {
            model.infer_batch_into(&images, &mut outputs, &mut ws);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "steady-state infer_batch_into allocated {delta} times for variant {:?}",
            variant
        );

        // The allocation-free rounds still produce bit-identical results.
        assert_eq!(outputs.len(), images.len());
        for (output, expected) in outputs.iter().zip(&reference) {
            assert_eq!(
                output.logits, *expected,
                "workspace-recycled inference drifted for {:?}",
                variant
            );
        }
    }

    // Tracing with sampling off is the no-op mode: `begin` returns `None`, every
    // span-recording site is a skipped `if let`, `finish` returns immediately, and
    // the lock-free stage histograms never allocate after construction. This is the
    // part of the serve hot path the tracing PR added — hold it to the same zero.
    let tracer = trace::Tracer::new(&trace::TraceConfig {
        sample: Some(0.0),
        ring_capacity: 64,
    });
    let histogram = LatencyHistogram::new();
    let origin = Instant::now();
    let before = allocations();
    for i in 0..100u64 {
        let handle = tracer.begin("alloc-gate", origin, false);
        assert!(handle.is_none(), "sampling off must yield the no-op handle");
        if let Some(t) = &handle {
            t.record("never", String::new(), origin, Instant::now());
        }
        histogram.record_us(i);
        tracer.finish(handle, 200);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "sampling-off trace begin/record/finish + histogram recording allocated {delta} times"
    );

    // Hardware-counter regions ride the same batch path (the worker wraps each
    // `infer_batch_into` in a `PerfRegion`), so they are held to the same zero. The
    // first region on a thread opens the thread-local counter group — fds and the
    // group vector — which is a one-time cost, so one warmup region runs before the
    // counted window. The gate holds on both kinds of host: with counters available
    // the steady-state region is two `ioctl`s and a stack `read(2)`; without them
    // (`perf_event_open` refused, as in sandboxed CI) every region is a no-op. Both
    // paths must be allocation-free.
    let stats = perf::PerfStats::new();
    perf::set_enabled(true);
    drop(perf::PerfRegion::enter(&stats)); // warmup: thread-local group opens here
    let before = allocations();
    for _ in 0..100 {
        let region = perf::PerfRegion::enter(&stats);
        std::hint::black_box(&images);
        drop(region);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta,
        0,
        "steady-state PerfRegion enter/exit allocated {delta} times (counters {})",
        if perf::supported() {
            "available"
        } else {
            "unavailable"
        }
    );

    // And the combined hot path — a counter region around the workspace-recycled
    // batch — stays at zero too, exactly as the serve worker runs it.
    model.set_variant(AttentionVariant::Taylor);
    let mut ws = Workspace::new();
    let mut outputs: Vec<VitOutput> = Vec::new();
    for _ in 0..3 {
        let _region = perf::PerfRegion::enter(&stats);
        model.infer_batch_into(&images, &mut outputs, &mut ws);
    }
    let before = allocations();
    for _ in 0..5 {
        let _region = perf::PerfRegion::enter(&stats);
        model.infer_batch_into(&images, &mut outputs, &mut ws);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "PerfRegion-wrapped steady-state infer_batch_into allocated {delta} times"
    );
    if perf::supported() {
        assert!(
            stats.regions() >= 8,
            "supported host must have accumulated every region"
        );
    }
}
