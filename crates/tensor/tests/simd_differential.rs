//! Differential pinning of the AVX2/FMA microkernels against the scalar references.
//!
//! Two contracts, straight from the dispatch layer's documentation:
//!
//! * **f32** — the AVX2 kernel may reassociate nothing (it accumulates each output
//!   lane sequentially over `k`, like the scalar kernels) but FMA keeps the
//!   unrounded product, so results may differ from the scalar reference by rounding
//!   only: within `1e-5` across shapes covering every remainder lane of the 8×8
//!   register tile.
//! * **i8** — the native `maddubs` path is exact integer arithmetic and must be
//!   **bit-identical** to the scalar `gemm_i8_into` reference, including reductions
//!   longer than `I8_EXACT_CHUNK` (the native path does not chunk; the f32 lattice
//!   path does — both must agree exactly).
//!
//! On hosts or builds without AVX2/FMA (non-x86, `--cfg force_scalar`, old CPUs) the
//! SIMD entry points report unavailable / fall back; the suite then degenerates to
//! re-checking the scalar paths against themselves, which keeps it green everywhere.

use vitality_tensor::backend::{IntOperand, Operand, I8_EXACT_CHUNK};
use vitality_tensor::simd::gemm_f32_avx2_direct;
use vitality_tensor::{cpu_features, MatmulBackend};

/// Shapes from the issue spec: every combination straddles a different mix of full
/// and remainder lanes of the MR × NR = 8 × 8 register tile (1 ≪ 8, 7/9 hug the
/// tile edge, 63/64/65 hug the MC panel edge, 196 is the ViT-base token count).
const SPAN: [usize; 8] = [1, 7, 8, 9, 63, 64, 65, 196];

/// Deterministic pseudo-random fill, roughly zero-mean with |v| ≤ 0.35 so partial
/// sums stay small and the FMA-vs-scalar rounding divergence stays well inside the
/// 1e-5 differential tolerance even at k = 196.
fn entry(r: usize, c: usize) -> f32 {
    let h = (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17))) % 97;
    (h as f32 / 97.0 - 0.5) * 0.7
}

fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
    let mut data = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            data[r * cols + c] = f(r, c);
        }
    }
    data
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// i8 fill constrained to [-127, 127]: the native kernel's documented domain (the
/// excluded -128 gets its own dedicated fallback test below).
fn entry_i8(i: usize, salt: usize) -> i8 {
    (((i * 37 + salt) % 255) as i32 - 127) as i8
}

#[test]
fn f32_simd_kernel_matches_naive_within_1e5_on_all_remainder_lanes() {
    if !cpu_features().simd_ready() {
        eprintln!("skipping SIMD differential sweep: no AVX2/FMA on this host/build");
        return;
    }
    for &m in &SPAN {
        for &k in &SPAN {
            for &n in &SPAN {
                let a = dense(m, k, entry);
                let b = dense(k, n, |r, c| entry(c + 5, r));
                let reference = MatmulBackend::Naive.gemm(
                    m,
                    k,
                    n,
                    Operand::row_major(&a, k),
                    Operand::row_major(&b, n),
                );
                // The raw driver, bypassing the small-product cutoff: this is what
                // pins the microkernel itself on the tiny shapes.
                let mut simd = vec![f32::NAN; m * n];
                assert!(
                    gemm_f32_avx2_direct(
                        &mut simd,
                        m,
                        k,
                        n,
                        Operand::row_major(&a, k),
                        Operand::row_major(&b, n),
                    ),
                    "simd_ready CPU must run the direct driver"
                );
                let diff = max_abs_diff(&simd, &reference);
                assert!(diff <= 1e-5, "avx2 f32 ({m},{k},{n}) diverged by {diff}");
                // And the public dispatch (small shapes route through gemm_small,
                // large ones through the SIMD panels — both must agree).
                let dispatched = MatmulBackend::Avx2.gemm(
                    m,
                    k,
                    n,
                    Operand::row_major(&a, k),
                    Operand::row_major(&b, n),
                );
                let diff = max_abs_diff(&dispatched, &reference);
                assert!(
                    diff <= 1e-5,
                    "Avx2 dispatch ({m},{k},{n}) diverged by {diff}"
                );
            }
        }
    }
}

#[test]
fn f32_simd_kernel_handles_transposed_operands() {
    if !cpu_features().simd_ready() {
        return;
    }
    let (m, k, n) = (65, 196, 63);
    let at = dense(k, m, entry); // A^T stored row-major, participating as A
    let b = dense(k, n, |r, c| entry(r + 11, c));
    let reference = MatmulBackend::Naive.gemm(
        m,
        k,
        n,
        Operand::transposed(&at, m),
        Operand::row_major(&b, n),
    );
    let mut simd = vec![0.0; m * n];
    gemm_f32_avx2_direct(
        &mut simd,
        m,
        k,
        n,
        Operand::transposed(&at, m),
        Operand::row_major(&b, n),
    );
    let diff = max_abs_diff(&simd, &reference);
    assert!(diff <= 1e-5, "transposed-A avx2 f32 diverged by {diff}");
}

#[test]
fn i8_native_kernel_is_bit_identical_to_the_scalar_reference() {
    // Shapes covering every remainder-lane mix, plus reductions straddling the
    // KG = 4 depth grouping and the I8_EXACT_CHUNK split of the lattice path.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (7, 9, 8),
        (8, 196, 8),
        (9, 63, 65),
        (64, 196, 64),
        (3, I8_EXACT_CHUNK, 5),
        (8, I8_EXACT_CHUNK + 500, 8),
    ] {
        let a: Vec<i8> = (0..m * k).map(|i| entry_i8(i, 11)).collect();
        let b: Vec<i8> = (0..k * n).map(|i| entry_i8(i, 7)).collect();
        let mut reference = vec![0i32; m * n];
        MatmulBackend::Blocked.gemm_i8_into(
            &mut reference,
            m,
            k,
            n,
            IntOperand::row_major(&a, k),
            IntOperand::row_major(&b, n),
        );

        let mut native = vec![i32::MIN; m * n];
        let ran = MatmulBackend::Avx2.gemm_i8_native_into(
            &mut native,
            m,
            k,
            n,
            IntOperand::row_major(&a, k),
            IntOperand::row_major(&b, n),
        );
        if cpu_features().simd_ready() {
            assert!(ran, "in-domain operands must take the native path");
            assert_eq!(
                native, reference,
                "native i8 ({m},{k},{n}) not bit-identical"
            );
        } else {
            assert!(!ran, "native path must refuse without AVX2/FMA");
        }

        // The lattice route (widen → exact gemm) must stay bit-identical under the
        // Avx2 backend too — it now narrows back to the maddubs kernel internally.
        let mut a_f = vec![0f32; m * k];
        let mut b_f = vec![0f32; k * n];
        let mut c_f = vec![0f32; m * n];
        let mut lattice = vec![7i32; m * n];
        MatmulBackend::Avx2.gemm_i8_exact_into(
            &mut lattice,
            m,
            k,
            n,
            IntOperand::row_major(&a, k),
            IntOperand::row_major(&b, n),
            &mut a_f,
            &mut b_f,
            &mut c_f,
        );
        assert_eq!(
            lattice, reference,
            "lattice i8 ({m},{k},{n}) not bit-identical"
        );
    }
}

#[test]
fn i8_native_kernel_handles_transposed_operands_bit_identically() {
    let (m, k, n) = (64usize, 196usize, 64usize);
    // A^T stored row-major (k × m) — the attention kernels' G = K̂ᵀV shape.
    let at: Vec<i8> = (0..k * m).map(|i| entry_i8(i, 29)).collect();
    let b: Vec<i8> = (0..k * n).map(|i| entry_i8(i, 13)).collect();
    let mut reference = vec![0i32; m * n];
    MatmulBackend::Blocked.gemm_i8_into(
        &mut reference,
        m,
        k,
        n,
        IntOperand::transposed(&at, m),
        IntOperand::row_major(&b, n),
    );
    let mut native = vec![0i32; m * n];
    let ran = MatmulBackend::Avx2.gemm_i8_native_into(
        &mut native,
        m,
        k,
        n,
        IntOperand::transposed(&at, m),
        IntOperand::row_major(&b, n),
    );
    if cpu_features().simd_ready() {
        assert!(ran);
        assert_eq!(native, reference, "transposed native i8 not bit-identical");
    }
}

#[test]
fn i8_native_path_refuses_minus_128_and_the_fallback_stays_exact() {
    // -128 is the one i8 value the abs/sign maddubs idiom cannot represent
    // (`_mm256_sign_epi8` negation wraps); the native entry must refuse it and the
    // lattice route must still produce the exact product through the f32 fallback.
    let (m, k, n) = (9usize, 65usize, 7usize);
    let mut a: Vec<i8> = (0..m * k).map(|i| entry_i8(i, 3)).collect();
    let b: Vec<i8> = (0..k * n).map(|i| entry_i8(i, 17)).collect();
    a[m * k / 2] = i8::MIN;

    let mut native = vec![0i32; m * n];
    let ran = MatmulBackend::Avx2.gemm_i8_native_into(
        &mut native,
        m,
        k,
        n,
        IntOperand::row_major(&a, k),
        IntOperand::row_major(&b, n),
    );
    assert!(!ran, "native path must refuse operands containing -128");

    let mut reference = vec![0i32; m * n];
    MatmulBackend::Blocked.gemm_i8_into(
        &mut reference,
        m,
        k,
        n,
        IntOperand::row_major(&a, k),
        IntOperand::row_major(&b, n),
    );
    let mut a_f = vec![0f32; m * k];
    let mut b_f = vec![0f32; k * n];
    let mut c_f = vec![0f32; m * n];
    let mut lattice = vec![0i32; m * n];
    MatmulBackend::Avx2.gemm_i8_exact_into(
        &mut lattice,
        m,
        k,
        n,
        IntOperand::row_major(&a, k),
        IntOperand::row_major(&b, n),
        &mut a_f,
        &mut b_f,
        &mut c_f,
    );
    assert_eq!(lattice, reference, "-128 fallback lost exactness");
}

#[test]
fn quantization_sweeps_match_their_scalar_references_bit_for_bit() {
    use vitality_tensor::simd::{
        absmax, absmax_scalar, i8_column_sums, i8_column_sums_scalar, quantize_i8,
        quantize_i8_scalar, quantize_lattice, quantize_lattice_scalar,
    };
    // Lengths straddling the 32-lane i8 block, the 8-lane f32 block and their
    // scalar tails; values spanning the clamp (±127 saturation) on both sides.
    for &len in &[0usize, 1, 7, 8, 31, 32, 33, 255, 256, 12544] {
        let src: Vec<f32> = (0..len)
            .map(|i| ((i % 613) as f32 / 613.0 - 0.5) * 300.0)
            .collect();
        assert_eq!(
            absmax(&src).to_bits(),
            absmax_scalar(&src).to_bits(),
            "absmax diverged at len {len}"
        );
        let inv = 127.0 / 104.2;
        let mut simd_i8 = vec![0i8; len];
        let mut scalar_i8 = vec![0i8; len];
        quantize_i8(&src, inv, &mut simd_i8);
        quantize_i8_scalar(&src, inv, &mut scalar_i8);
        assert_eq!(simd_i8, scalar_i8, "quantize_i8 diverged at len {len}");

        let mut simd_lat = vec![0f32; len];
        let mut scalar_lat = vec![0f32; len];
        quantize_lattice(&src, inv, &mut simd_lat);
        quantize_lattice_scalar(&src, inv, &mut scalar_lat);
        let simd_bits: Vec<u32> = simd_lat.iter().map(|v| v.to_bits()).collect();
        let scalar_bits: Vec<u32> = scalar_lat.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            simd_bits, scalar_bits,
            "quantize_lattice diverged at len {len}"
        );

        // The i8 lattice and the widened f32 lattice must describe the same grid
        // points (the two views feed different downstream kernels).
        for (i, (&q, &l)) in simd_i8.iter().zip(&simd_lat).enumerate() {
            assert_eq!(f32::from(q), l, "grid views disagree at {i} (len {len})");
        }
    }
    // Column sums over shapes hitting the 64-column register budget, the 8-lane
    // step and the scalar column tail.
    for &(rows, cols) in &[
        (1usize, 1usize),
        (3, 7),
        (5, 8),
        (9, 63),
        (196, 64),
        (17, 130),
    ] {
        let data: Vec<i8> = (0..rows * cols).map(|i| entry_i8(i, 23)).collect();
        let mut simd_sums = vec![i32::MIN; cols];
        let mut scalar_sums = vec![0i32; cols];
        i8_column_sums(&data, &mut simd_sums);
        i8_column_sums_scalar(&data, &mut scalar_sums);
        assert_eq!(
            simd_sums, scalar_sums,
            "i8_column_sums diverged at ({rows},{cols})"
        );
    }
}

#[test]
fn clamped_native_entry_matches_the_scanning_entry() {
    // The clamped entry skips the -128 operand scans on the strength of the
    // quantizer's ±127 saturation; on in-domain operands it must behave exactly
    // like the general entry (same dispatch verdict, same bits).
    let (m, k, n) = (64usize, 196usize, 64usize);
    let at: Vec<i8> = (0..k * m).map(|i| entry_i8(i, 41)).collect();
    let b: Vec<i8> = (0..k * n).map(|i| entry_i8(i, 43)).collect();
    let mut scanned = vec![0i32; m * n];
    let mut clamped = vec![1i32; m * n];
    let ran_scanned = MatmulBackend::Avx2.gemm_i8_native_into(
        &mut scanned,
        m,
        k,
        n,
        IntOperand::transposed(&at, m),
        IntOperand::row_major(&b, n),
    );
    let ran_clamped = MatmulBackend::Avx2.gemm_i8_native_clamped_into(
        &mut clamped,
        m,
        k,
        n,
        IntOperand::transposed(&at, m),
        IntOperand::row_major(&b, n),
    );
    assert_eq!(ran_scanned, ran_clamped, "entries disagreed on dispatch");
    if ran_scanned {
        assert_eq!(scanned, clamped, "clamped entry not bit-identical");
    }
}

#[test]
fn avx2_dispatch_on_unsupported_hosts_still_computes_correct_products() {
    // Explicit Avx2 requests must degrade, not panic, wherever the features are
    // missing; where they are present this doubles as one more dispatch check.
    let (m, k, n) = (33, 65, 17);
    let a = dense(m, k, entry);
    let b = dense(k, n, |r, c| entry(c, r));
    let via_avx2 = MatmulBackend::Avx2.gemm(
        m,
        k,
        n,
        Operand::row_major(&a, k),
        Operand::row_major(&b, n),
    );
    let reference = MatmulBackend::Naive.gemm(
        m,
        k,
        n,
        Operand::row_major(&a, k),
        Operand::row_major(&b, n),
    );
    let diff = max_abs_diff(&via_avx2, &reference);
    assert!(diff <= 1e-5, "Avx2 dispatch diverged by {diff}");
}
