//! Dense `f32` matrix and small-tensor kernels used throughout the ViTALiTy reproduction.
//!
//! The ViTALiTy paper (HPCA 2023) operates on per-head attention matrices of modest size
//! (a few hundred tokens by at most a few hundred feature dimensions), so this crate
//! provides a deliberately small, dependency-free dense linear-algebra substrate instead
//! of binding to an external BLAS:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the multiplication, transposition,
//!   reduction and broadcasting primitives needed by the attention algorithms.
//! * [`backend`] — the pluggable dense-GEMM backends behind every `Matrix` product: a
//!   scalar [`MatmulBackend::Naive`] reference and the default cache-blocked,
//!   register-tiled, rayon-parallel [`MatmulBackend::Blocked`] kernel. See the module
//!   docs for the blocking parameters and how to select a backend (the
//!   `VITALITY_MATMUL_BACKEND` environment variable, [`set_matmul_backend`], or the
//!   explicit `*_with` methods).
//! * [`Workspace`] — a checkout/recycle scratch-buffer arena behind the allocation-free
//!   `*_into` forms of the `Matrix` products, giving serving hot paths a zero-allocation
//!   steady state (one workspace per thread; see [`with_thread_workspace`]).
//! * [`Tensor3`] — a batched stack of equally-shaped matrices (batch or head dimension).
//! * [`stats`] — histogram and interval-occupancy helpers used for the attention
//!   distribution study (Fig. 3 of the paper).
//! * [`init`] — deterministic random initialisers built on the `rand` crate.
//!
//! # Example
//!
//! ```
//! use vitality_tensor::Matrix;
//!
//! let q = Matrix::from_fn(4, 8, |i, j| (i * 8 + j) as f32 * 0.01);
//! let k = Matrix::from_fn(4, 8, |i, j| ((i + j) % 3) as f32 * 0.1);
//! // Scaled dot-product similarity, the input to the softmax in a vanilla attention.
//! let sim = q.matmul_transpose_b(&k).scale(1.0 / (8f32).sqrt());
//! assert_eq!(sim.shape(), (4, 4));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aligned;
pub mod backend;
pub mod error;
pub mod init;
pub mod matrix;
pub mod simd;
pub mod stats;
pub mod tensor3;
pub mod workspace;

pub use aligned::{AlignedVec, SIMD_ALIGN};
pub use backend::{gemm_perf, matmul_backend, set_matmul_backend, MatmulBackend};
pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
pub use simd::{cpu_features, CpuFeatures};
pub use tensor3::Tensor3;
pub use workspace::{with_thread_workspace, Workspace};

/// Numerical tolerance used by the approximate-equality helpers in this workspace.
pub const DEFAULT_TOLERANCE: f32 = 1e-4;

/// Returns `true` when two floats agree to within `tol` absolutely or relatively.
///
/// Relative comparison kicks in for values whose magnitude exceeds one, which keeps the
/// check meaningful both for attention probabilities (order `1e-2`) and for accumulated
/// logits (order `1e2`).
///
/// ```
/// assert!(vitality_tensor::approx_eq(1.0, 1.0 + 1e-6, 1e-4));
/// assert!(!vitality_tensor::approx_eq(1.0, 1.1, 1e-4));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 0.0, 1e-6));
        assert!(approx_eq(1000.0, 1000.05, 1e-4));
        assert!(!approx_eq(1.0, 2.0, 1e-4));
        assert!(!approx_eq(-1.0, 1.0, 1e-3));
    }
}
