//! Batched stacks of equally-shaped matrices (the head / batch dimension).

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;

/// A stack of equally-shaped [`Matrix`] values.
///
/// Multi-head attention operates on one `n x d` matrix per head; `Tensor3` groups those
/// per-head matrices, letting model code express "apply this per-head kernel to every
/// head" without hand-rolled loops everywhere.
///
/// # Example
///
/// ```
/// use vitality_tensor::{Matrix, Tensor3};
///
/// let heads = Tensor3::from_matrices(vec![Matrix::ones(4, 2), Matrix::zeros(4, 2)]).unwrap();
/// let scaled = heads.map(|m| m.scale(3.0));
/// assert_eq!(scaled.get(0).sum(), 24.0);
/// assert_eq!(scaled.get(1).sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    mats: Vec<Matrix>,
    rows: usize,
    cols: usize,
}

impl Tensor3 {
    /// Creates a stack of `batch` zero matrices of shape `rows x cols`.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> Self {
        Self {
            mats: (0..batch).map(|_| Matrix::zeros(rows, cols)).collect(),
            rows,
            cols,
        }
    }

    /// Builds a stack from existing matrices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the matrices do not all share a shape or when the
    /// input is empty.
    pub fn from_matrices(mats: Vec<Matrix>) -> TensorResult<Self> {
        let first = mats
            .first()
            .ok_or_else(|| ShapeError::new("tensor3_from_matrices", (0, 0), (0, 0)))?;
        let (rows, cols) = first.shape();
        for m in &mats {
            if m.shape() != (rows, cols) {
                return Err(ShapeError::new(
                    "tensor3_from_matrices",
                    (rows, cols),
                    m.shape(),
                ));
            }
        }
        Ok(Self { mats, rows, cols })
    }

    /// Number of matrices in the stack.
    pub fn batch(&self) -> usize {
        self.mats.len()
    }

    /// Shape of every matrix in the stack.
    pub fn inner_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `(batch, rows, cols)` triple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.mats.len(), self.rows, self.cols)
    }

    /// Borrow of the `index`-th matrix.
    ///
    /// # Panics
    ///
    /// Panics when `index >= batch()`.
    pub fn get(&self, index: usize) -> &Matrix {
        &self.mats[index]
    }

    /// Mutable borrow of the `index`-th matrix.
    ///
    /// # Panics
    ///
    /// Panics when `index >= batch()`.
    pub fn get_mut(&mut self, index: usize) -> &mut Matrix {
        &mut self.mats[index]
    }

    /// Iterator over the stacked matrices.
    pub fn iter(&self) -> std::slice::Iter<'_, Matrix> {
        self.mats.iter()
    }

    /// Consumes the stack, returning the underlying matrices.
    pub fn into_matrices(self) -> Vec<Matrix> {
        self.mats
    }

    /// Applies `f` to every matrix, producing a new stack.
    ///
    /// # Panics
    ///
    /// Panics when `f` returns matrices of differing shapes.
    pub fn map<F: FnMut(&Matrix) -> Matrix>(&self, f: F) -> Self {
        let mats: Vec<Matrix> = self.mats.iter().map(f).collect();
        Self::from_matrices(mats).expect("map closure returned inconsistent shapes")
    }

    /// Applies a binary kernel to corresponding matrices of two stacks.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the batch sizes differ.
    pub fn zip_map<F: FnMut(&Matrix, &Matrix) -> Matrix>(
        &self,
        other: &Self,
        mut f: F,
    ) -> TensorResult<Self> {
        if self.batch() != other.batch() {
            return Err(ShapeError::new(
                "tensor3_zip_map",
                (self.batch(), 0),
                (other.batch(), 0),
            ));
        }
        let mats: Vec<Matrix> = self
            .mats
            .iter()
            .zip(other.mats.iter())
            .map(|(a, b)| f(a, b))
            .collect();
        Self::from_matrices(mats)
    }

    /// Concatenates the stacked matrices along the column axis into one `rows x (batch*cols)`
    /// matrix — the "merge heads" step of multi-head attention.
    pub fn concat_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols * self.mats.len());
        for (h, m) in self.mats.iter().enumerate() {
            for r in 0..self.rows {
                let dst = &mut out.row_mut(r)[h * self.cols..(h + 1) * self.cols];
                dst.copy_from_slice(m.row(r));
            }
        }
        out
    }

    /// Splits a `rows x (heads*head_dim)` matrix into a stack of `heads` matrices of shape
    /// `rows x head_dim` — the "split heads" step of multi-head attention.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the column count is not divisible by `heads`.
    pub fn split_cols(matrix: &Matrix, heads: usize) -> TensorResult<Self> {
        if heads == 0 || !matrix.cols().is_multiple_of(heads) {
            return Err(ShapeError::new(
                "tensor3_split_cols",
                matrix.shape(),
                (heads, 0),
            ));
        }
        let head_dim = matrix.cols() / heads;
        let mats = (0..heads)
            .map(|h| matrix.slice_cols(h * head_dim, (h + 1) * head_dim))
            .collect();
        Self::from_matrices(mats)
    }

    /// Sum of every element across the whole stack.
    pub fn sum(&self) -> f32 {
        self.mats.iter().map(Matrix::sum).sum()
    }

    /// `true` when both stacks agree elementwise within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.batch() == other.batch()
            && self
                .mats
                .iter()
                .zip(other.mats.iter())
                .all(|(a, b)| a.approx_eq(b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_matrices_validates_shapes() {
        assert!(Tensor3::from_matrices(vec![]).is_err());
        assert!(Tensor3::from_matrices(vec![Matrix::ones(2, 2), Matrix::ones(2, 3)]).is_err());
        let t = Tensor3::from_matrices(vec![Matrix::ones(2, 2), Matrix::zeros(2, 2)]).unwrap();
        assert_eq!(t.shape(), (2, 2, 2));
    }

    #[test]
    fn split_then_concat_round_trips() {
        let m = Matrix::from_fn(3, 6, |i, j| (i * 6 + j) as f32);
        let t = Tensor3::split_cols(&m, 3).unwrap();
        assert_eq!(t.batch(), 3);
        assert_eq!(t.inner_shape(), (3, 2));
        assert!(t.concat_cols().approx_eq(&m, 0.0));
    }

    #[test]
    fn split_rejects_indivisible_heads() {
        let m = Matrix::ones(2, 5);
        assert!(Tensor3::split_cols(&m, 2).is_err());
        assert!(Tensor3::split_cols(&m, 0).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor3::from_matrices(vec![Matrix::ones(2, 2), Matrix::ones(2, 2)]).unwrap();
        let doubled = a.map(|m| m.scale(2.0));
        assert_eq!(doubled.sum(), 16.0);
        let combined = a.zip_map(&doubled, |x, y| x.try_add(y).unwrap()).unwrap();
        assert_eq!(combined.sum(), 24.0);
        let mismatched = Tensor3::zeros(3, 2, 2);
        assert!(a.zip_map(&mismatched, |x, _| x.clone()).is_err());
    }

    #[test]
    fn accessors() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.get_mut(1).set(0, 0, 5.0);
        assert_eq!(t.get(1).get(0, 0), 5.0);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.clone().into_matrices().len(), 2);
        assert!(t.approx_eq(&t.clone(), 0.0));
    }
}
