//! Error types for shape-checked tensor operations.

use std::error::Error;
use std::fmt;

/// Result alias used by fallible tensor operations.
pub type TensorResult<T> = Result<T, ShapeError>;

/// Error returned when the shapes of two operands are incompatible.
///
/// The panic-free entry points (`try_*` methods on [`crate::Matrix`]) return this error
/// instead of panicking, so callers that assemble shapes at runtime (for example the
/// accelerator simulator replaying arbitrary workloads) can recover gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Name of the operation that failed, e.g. `"matmul"`.
    op: &'static str,
    /// Shape of the left-hand operand.
    lhs: (usize, usize),
    /// Shape of the right-hand operand.
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with the offending operand shapes.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that rejected the shapes.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left-hand operand.
    pub fn lhs(&self) -> (usize, usize) {
        self.lhs
    }

    /// Shape of the right-hand operand.
    pub fn rhs(&self) -> (usize, usize) {
        self.rhs
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: left is {}x{}, right is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation_and_shapes() {
        let err = ShapeError::new("matmul", (2, 3), (4, 5));
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
        assert_eq!(err.op(), "matmul");
        assert_eq!(err.lhs(), (2, 3));
        assert_eq!(err.rhs(), (4, 5));
    }
}
