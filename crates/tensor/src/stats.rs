//! Histogram and interval-occupancy helpers.
//!
//! The ViTALiTy paper motivates its Taylor attention with the distribution of
//! (mean-centred) attention logits: Fig. 3 shows that row-wise mean centring moves up to
//! 67% of the similarity values into the interval `[-1, 1)`. These helpers compute the
//! same statistics for arbitrary matrices.

use crate::matrix::Matrix;

/// Simple summary statistics over a collection of values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std_dev: f32,
    /// Smallest value.
    pub min: f32,
    /// Largest value.
    pub max: f32,
    /// Number of values summarised.
    pub count: usize,
}

impl Summary {
    /// Computes summary statistics of `values`. An empty slice yields all-zero statistics.
    pub fn of(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f32>() / count as f32;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / count as f32;
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        Self {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            count,
        }
    }
}

/// A fixed-width histogram over a closed-open interval `[lo, hi)`.
///
/// Values outside the interval are accumulated in underflow / overflow counters so that
/// the histogram never silently drops observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    bins: Vec<usize>,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram interval must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a single observation.
    pub fn record(&mut self, value: f32) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f32;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every element of a matrix.
    pub fn record_matrix(&mut self, matrix: &Matrix) {
        for &v in matrix.iter() {
            self.record(v);
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Observations below the interval.
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn total(&self) -> usize {
        self.bins.iter().sum::<usize>() + self.underflow + self.overflow
    }

    /// Fraction of observations that landed inside `[lo, hi)`.
    pub fn fraction_in_range(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.bins.iter().sum::<usize>() as f32 / total as f32
    }

    /// Normalised bin densities (fractions of the total count).
    pub fn densities(&self) -> Vec<f32> {
        let total = self.total().max(1) as f32;
        self.bins.iter().map(|&c| c as f32 / total).collect()
    }
}

/// Fraction of matrix elements lying in the closed-open interval `[lo, hi)`.
///
/// This is the paper's Fig. 3 metric: the share of attention logits inside `[-1, 1)`,
/// i.e. the share of "weak" query/key connections that the first-order Taylor expansion
/// approximates well.
///
/// ```
/// use vitality_tensor::{Matrix, stats::fraction_in_interval};
/// let m = Matrix::from_rows(&[vec![-0.5, 0.5, 2.0, -3.0]]).unwrap();
/// assert!((fraction_in_interval(&m, -1.0, 1.0) - 0.5).abs() < 1e-6);
/// ```
pub fn fraction_in_interval(matrix: &Matrix, lo: f32, hi: f32) -> f32 {
    if matrix.is_empty() {
        return 0.0;
    }
    let inside = matrix.iter().filter(|&&v| v >= lo && v < hi).count();
    inside as f32 / matrix.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.std_dev - (1.25f32).sqrt()).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn summary_of_empty_slice_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(-1.0, 1.0, 4);
        for v in [-2.0, -0.9, -0.1, 0.1, 0.9, 1.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<usize>(), 4);
        assert!((h.fraction_in_range() - 4.0 / 7.0).abs() < 1e-6);
        let densities = h.densities();
        assert!((densities.iter().sum::<f32>() - 4.0 / 7.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_record_matrix() {
        let m = Matrix::from_rows(&[vec![-0.5, 0.5], vec![1.5, -1.5]]).unwrap();
        let mut h = Histogram::new(-1.0, 1.0, 2);
        h.record_matrix(&m);
        assert_eq!(h.total(), 4);
        assert!((h.fraction_in_range() - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn fraction_in_interval_edges() {
        let m = Matrix::from_rows(&[vec![-1.0, 1.0]]).unwrap();
        // Closed at the lower bound, open at the upper bound.
        assert!((fraction_in_interval(&m, -1.0, 1.0) - 0.5).abs() < 1e-6);
        assert_eq!(fraction_in_interval(&Matrix::zeros(0, 0), -1.0, 1.0), 0.0);
    }
}
