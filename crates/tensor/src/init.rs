//! Deterministic random initialisers for matrices.
//!
//! All initialisers take an explicit `rand::Rng`, so experiment binaries can seed a
//! `StdRng` and obtain bit-for-bit reproducible weights and synthetic data.

use crate::matrix::Matrix;
use rand::Rng;

/// Samples a standard normal value using the Box–Muller transform.
///
/// Implemented locally to keep the dependency set to the pre-approved crates (no
/// `rand_distr`).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid log(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Matrix with i.i.d. normal entries of the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f32,
    std_dev: f32,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        mean + std_dev * sample_standard_normal(rng)
    })
}

/// Matrix with i.i.d. uniform entries drawn from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Xavier/Glorot uniform initialiser for a weight matrix with `rows` inputs and `cols`
/// outputs: entries are uniform in `[-a, a]` with `a = sqrt(6 / (rows + cols))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, -a, a)
}

/// Kaiming/He normal initialiser: entries are normal with standard deviation
/// `sqrt(2 / rows)`. Suited to layers followed by ReLU/GELU non-linearities.
pub fn kaiming_normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    normal(rng, rows, cols, 0.0, (2.0 / rows.max(1) as f32).sqrt())
}

/// Truncated normal initialiser (values re-sampled until they fall within
/// `mean ± 2 * std_dev`), the initialiser DeiT uses for its projection weights.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    mean: f32,
    std_dev: f32,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| loop {
        let v = mean + std_dev * sample_standard_normal(rng);
        if (v - mean).abs() <= 2.0 * std_dev {
            return v;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_expected_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = normal(&mut rng, 100, 100, 0.5, 2.0);
        let s = m.summary();
        assert!((s.mean - 0.5).abs() < 0.05, "mean was {}", s.mean);
        assert!((s.std_dev - 2.0).abs() < 0.05, "std was {}", s.std_dev);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = uniform(&mut rng, 50, 50, -0.25, 0.25);
        assert!(m.max() < 0.25);
        assert!(m.min() >= -0.25);
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = xavier_uniform(&mut rng, 64, 64);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(m.max() <= bound + 1e-6);
        assert!(m.min() >= -bound - 1e-6);
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(10);
        let wide = kaiming_normal(&mut rng, 512, 32);
        let narrow = kaiming_normal(&mut rng, 8, 32);
        assert!(wide.summary().std_dev < narrow.summary().std_dev);
    }

    #[test]
    fn truncated_normal_stays_within_two_sigma() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = truncated_normal(&mut rng, 40, 40, 0.0, 0.02);
        assert!(m.max() <= 0.04 + 1e-6);
        assert!(m.min() >= -0.04 - 1e-6);
    }

    #[test]
    fn seeded_initialisation_is_deterministic() {
        let a = normal(&mut StdRng::seed_from_u64(42), 10, 10, 0.0, 1.0);
        let b = normal(&mut StdRng::seed_from_u64(42), 10, 10, 0.0, 1.0);
        assert!(a.approx_eq(&b, 0.0));
    }
}
