//! [`AlignedVec`]: a heap buffer with a 32-byte-aligned base pointer.
//!
//! The AVX2 microkernels in [`crate::simd`] read their operands with 256-bit vector
//! loads. A plain `Vec<f32>` only guarantees 4-byte alignment, so a kernel consuming
//! it either pays an unaligned-access penalty on cache-line-straddling loads or needs
//! a scalar peel loop to reach the first aligned element. `AlignedVec` removes both:
//! every allocation is made with a 32-byte-aligned [`Layout`], so SIMD code can assume
//! vector-width alignment of element `0` unconditionally.
//!
//! A `Vec<T>` cannot provide this soundly — its buffer must be deallocated with the
//! exact layout it was allocated with, and `Vec` always uses `align_of::<T>()`, so a
//! handed-in over-aligned pointer would be freed with a mismatched layout. This type
//! owns both sides of the contract: allocation and deallocation use the same
//! 32-byte-aligned layout, which also keeps it clean under Miri.
//!
//! The API is the small slice-shaped subset the [`crate::Workspace`] pools and the
//! packed-panel scratch need: construct, `reset_zeroed` to a length (reallocating only
//! when capacity is exceeded), and `Deref`/`DerefMut` to `[T]` for everything else.
//! There is no `push`/`insert` — the pools always size buffers up front.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every `AlignedVec` allocation: one AVX2 vector register.
pub const SIMD_ALIGN: usize = 32;

/// A fixed-capacity, 32-byte-aligned heap buffer of plain-old-data elements.
///
/// See the [module documentation](self) for why this exists next to `Vec<T>`. The
/// element bound is `Copy + Default` with the additional (checked) expectation that
/// `T::default()` is the all-zeroes bit pattern — true for every pooled element type
/// (`f32`, `i8`, `i32`), and what lets [`AlignedVec::reset_zeroed`] use `alloc_zeroed`
/// and `write_bytes` instead of an element-wise fill.
#[derive(Debug)]
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its buffer exclusively (no interior sharing); sending or
// sharing it is exactly as safe as for the `Vec<T>` it replaces.
unsafe impl<T: Send> Send for AlignedVec<T> {}
// SAFETY: shared access only hands out `&[T]`; same aliasing story as `Vec<T>`.
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T> AlignedVec<T> {
    /// An empty buffer with no allocation (the pool's parking form).
    pub fn new() -> Self {
        Self {
            // A dangling-but-aligned pointer, the same trick Vec uses for capacity 0.
            ptr: NonNull::<T>::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// Elements currently live.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements the current allocation can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops all live elements (capacity is retained, like `Vec::clear`).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Copy + Default> AlignedVec<T> {
    /// A zeroed buffer of exactly `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut v = Self::new();
        v.reset_zeroed(len);
        v
    }

    /// Resizes to exactly `len` zeroed elements, reusing the current allocation when
    /// it is large enough. Previous contents are discarded — this is the checkout
    /// path of the workspace pools, which always hand out zeroed buffers.
    pub fn reset_zeroed(&mut self, len: usize) {
        debug_assert!(
            is_zero_default::<T>(),
            "pooled element must be zero-default"
        );
        if len > self.cap {
            self.release();
            if let Some(layout) = Self::layout(len) {
                // SAFETY: `layout` has non-zero size (len > cap >= 0 and T is not a
                // ZST for any pooled element type) and valid 32-byte alignment.
                let raw = unsafe { alloc_zeroed(layout) };
                let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
                    handle_alloc_error(layout)
                };
                self.ptr = ptr;
                self.cap = len;
            }
            self.len = len;
            return;
        }
        // SAFETY: `len <= cap`, so the range is inside the live allocation; T is
        // plain-old-data with an all-zeroes default (asserted above).
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, len) };
        self.len = len;
    }

    /// The allocation layout for `len` elements: element array size, 32-byte aligned.
    fn layout(len: usize) -> Option<Layout> {
        let bytes = std::mem::size_of::<T>().checked_mul(len)?;
        if bytes == 0 {
            return None;
        }
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(bytes, align).ok()
    }

    /// Returns the current allocation to the allocator (no-op at capacity 0).
    fn release(&mut self) {
        if self.cap == 0 {
            return;
        }
        let layout = Self::layout(self.cap).expect("live AlignedVec has a valid layout");
        // SAFETY: `ptr` was allocated by `alloc_zeroed` with exactly this layout
        // (same element count and alignment), and is released exactly once.
        unsafe { dealloc(self.ptr.as_ptr().cast::<u8>(), layout) };
        self.ptr = NonNull::<T>::dangling();
        self.cap = 0;
        self.len = 0;
    }
}

/// `true` when `T::default()` is the all-zeroes bit pattern (debug-checked
/// precondition of the zeroing fast paths).
fn is_zero_default<T: Copy + Default>() -> bool {
    let v = T::default();
    // SAFETY: T is Copy (no padding-sensitive drop), read back as raw bytes only.
    let bytes =
        unsafe { std::slice::from_raw_parts((&v as *const T).cast::<u8>(), size_of::<T>()) };
    bytes.iter().all(|&b| b == 0)
}

impl<T> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap == 0 {
            return;
        }
        let bytes = std::mem::size_of::<T>() * self.cap;
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        let layout = Layout::from_size_align(bytes, align).expect("live layout");
        // SAFETY: allocated with exactly this layout in `reset_zeroed`.
        unsafe { dealloc(self.ptr.as_ptr().cast::<u8>(), layout) };
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: `len` elements starting at `ptr` are initialised (zeroed at resize,
        // then only written through `DerefMut`).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as in `Deref`, plus `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl<'a, T> IntoIterator for &'a AlignedVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut AlignedVec<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

impl<T: PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_32_byte_aligned() {
        for len in [1usize, 3, 8, 31, 32, 33, 1000] {
            let f = AlignedVec::<f32>::zeroed(len);
            assert_eq!(f.as_ptr() as usize % SIMD_ALIGN, 0, "f32 len {len}");
            let b = AlignedVec::<i8>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % SIMD_ALIGN, 0, "i8 len {len}");
            let i = AlignedVec::<i32>::zeroed(len);
            assert_eq!(i.as_ptr() as usize % SIMD_ALIGN, 0, "i32 len {len}");
        }
    }

    #[test]
    fn reset_zeroed_reuses_capacity_and_zeroes_contents() {
        let mut v = AlignedVec::<f32>::zeroed(64);
        let ptr = v.as_ptr();
        v.iter_mut().for_each(|x| *x = 7.0);
        v.clear();
        v.reset_zeroed(32);
        assert_eq!(v.as_ptr(), ptr, "shrinking reset must not reallocate");
        assert_eq!(v.len(), 32);
        assert_eq!(v.capacity(), 64);
        assert!(v.iter().all(|&x| x == 0.0), "stale contents survived reset");
        // Growing past capacity reallocates, still aligned.
        v.reset_zeroed(128);
        assert_eq!(v.len(), 128);
        assert_eq!(v.as_ptr() as usize % SIMD_ALIGN, 0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_buffers_do_not_allocate() {
        let v = AlignedVec::<i32>::new();
        assert_eq!(v.len(), 0);
        assert_eq!(v.capacity(), 0);
        assert!(v.is_empty());
        let mut v = AlignedVec::<i32>::new();
        v.reset_zeroed(0);
        assert_eq!(v.capacity(), 0);
    }

    #[test]
    fn clone_and_eq_follow_contents() {
        let mut v = AlignedVec::<i8>::zeroed(5);
        v.copy_from_slice(&[1, -2, 3, -4, 5]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w.as_ptr() as usize % SIMD_ALIGN, 0);
    }
}
