//! A reusable scratch-buffer arena for allocation-lean inference hot paths.
//!
//! Every layer of a ViT forward pass needs short-lived intermediates — projected
//! queries/keys/values, per-head slices, attention scores, MLP hidden activations. The
//! naive implementation allocates a fresh [`Matrix`] for each of them at every layer of
//! every head of every image, which turns a served inference workload into a steady
//! stream of heap traffic. A [`Workspace`] breaks that pattern: buffers are *checked
//! out* for the duration of one computation and *recycled* back into the pool, so after
//! a warmup pass the steady state performs **zero** hot-path allocations (verified by
//! the counting-allocator regression test in `tests/alloc_regression.rs`).
//!
//! The element pools (`f32`/`i8`/`i32`) hand out [`AlignedVec`] buffers whose base
//! pointer is 32-byte aligned, so the AVX2 microkernels in [`crate::backend`] can use
//! aligned vector loads on pooled operands without a scalar peel loop. [`Matrix`]
//! checkouts come from a separate plain-`Vec` pool because `Matrix` owns its storage as
//! `Vec<f32>`; nothing on the SIMD fast path reads a `Matrix` buffer directly (operands
//! are repacked into aligned panels first).
//!
//! # Ownership discipline
//!
//! A `Workspace` is a plain owned value — thread it down the call chain as `&mut
//! Workspace`. It is deliberately **not** `Sync`: every thread of a parallel region
//! owns its own workspace (see [`with_thread_workspace`] for the thread-local form the
//! batched inference path uses). Checkout and recycle must be balanced by the caller;
//! an unrecycled buffer is not leaked (it is just an ordinary `Matrix`/buffer), but it
//! costs one pool miss — and therefore one allocation — on the next checkout.
//!
//! # Example
//!
//! ```
//! use vitality_tensor::{Matrix, Workspace};
//!
//! let a = Matrix::from_fn(8, 4, |i, j| (i + j) as f32);
//! let b = Matrix::from_fn(4, 6, |i, j| (i * j) as f32 * 0.1);
//!
//! let mut ws = Workspace::new();
//! let mut out = ws.take(8, 6);          // first checkout allocates...
//! a.matmul_into(&b, &mut out);
//! assert_eq!(out.shape(), (8, 6));
//! ws.recycle(out);
//!
//! let out = ws.take(8, 6);              // ...the second one reuses the same buffer
//! assert_eq!(ws.pool_hits(), 1);
//! ws.recycle(out);
//! ```

use crate::aligned::AlignedVec;
use crate::matrix::Matrix;
use std::cell::RefCell;

/// Upper bound on pooled buffers per kind; checkouts beyond a balanced pattern drop the
/// smallest buffer instead of growing the pool without bound.
const MAX_POOLED: usize = 64;

/// A pool of reusable `f32`, `i8`, `i32` and index buffers backing [`Matrix`] and
/// [`AlignedVec`] checkouts.
///
/// See the [module documentation](self) for the ownership discipline and an example,
/// and [`crate::Matrix::matmul_into`] for the `*_into` operations designed to pair
/// with it. The integer pools back the int8-quantized attention kernels: operands are
/// `AlignedVec<i8>`, accumulators `AlignedVec<i32>`, and both follow the same best-fit
/// checkout / recycle policy (and feed the same hit counters) as the `f32` pool, so the
/// quantized inference path reaches the identical zero-allocation steady state instead
/// of round-tripping integer data through `f32` buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    f32_pool: Vec<AlignedVec<f32>>,
    i8_pool: Vec<AlignedVec<i8>>,
    i32_pool: Vec<AlignedVec<i32>>,
    mat_pool: Vec<Vec<f32>>,
    idx_pool: Vec<Vec<usize>>,
    checkouts: u64,
    hits: u64,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zeroed `rows x cols` matrix, reusing a pooled buffer when one with
    /// sufficient capacity exists (best fit).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let data = take_zeroed(
            &mut self.mat_pool,
            &mut self.checkouts,
            &mut self.hits,
            rows * cols,
        );
        Matrix::from_vec(rows, cols, data).expect("workspace buffer length")
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        recycle_into(&mut self.mat_pool, m.into_vec());
    }

    /// Checks out a zeroed, 32-byte-aligned `f32` buffer of exactly `len` elements.
    pub fn take_vec(&mut self, len: usize) -> AlignedVec<f32> {
        take_zeroed(&mut self.f32_pool, &mut self.checkouts, &mut self.hits, len)
    }

    /// Returns an `f32` buffer to the pool.
    pub fn recycle_vec(&mut self, v: AlignedVec<f32>) {
        recycle_into(&mut self.f32_pool, v);
    }

    /// Checks out a zeroed, 32-byte-aligned `i8` buffer of exactly `len` elements
    /// (quantized operands of the int8 attention kernels), with the same best-fit
    /// policy as [`Workspace::take_vec`].
    pub fn take_i8_vec(&mut self, len: usize) -> AlignedVec<i8> {
        take_zeroed(&mut self.i8_pool, &mut self.checkouts, &mut self.hits, len)
    }

    /// Returns an `i8` buffer to the pool.
    pub fn recycle_i8_vec(&mut self, v: AlignedVec<i8>) {
        recycle_into(&mut self.i8_pool, v);
    }

    /// Checks out a zeroed, 32-byte-aligned `i32` buffer of exactly `len` elements
    /// (integer accumulators of the int8 attention kernels), with the same best-fit
    /// policy as [`Workspace::take_vec`].
    pub fn take_i32_vec(&mut self, len: usize) -> AlignedVec<i32> {
        take_zeroed(&mut self.i32_pool, &mut self.checkouts, &mut self.hits, len)
    }

    /// Returns an `i32` buffer to the pool.
    pub fn recycle_i32_vec(&mut self, v: AlignedVec<i32>) {
        recycle_into(&mut self.i32_pool, v);
    }

    /// Checks out an **empty** index buffer (capacity reused from the pool); callers
    /// push into it and hand it back with [`Workspace::recycle_indices`].
    pub fn take_indices(&mut self) -> Vec<usize> {
        self.checkouts += 1;
        match self.idx_pool.pop() {
            Some(mut v) => {
                self.hits += 1;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns an index buffer to the pool.
    pub fn recycle_indices(&mut self, v: Vec<usize>) {
        if self.idx_pool.len() >= MAX_POOLED {
            drop_smallest(&mut self.idx_pool, Vec::capacity);
        }
        self.idx_pool.push(v);
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.f32_pool.len()
            + self.i8_pool.len()
            + self.i32_pool.len()
            + self.mat_pool.len()
            + self.idx_pool.len()
    }

    /// Total bytes currently parked in the pool.
    pub fn pooled_bytes(&self) -> usize {
        fn aligned_bytes<T>(pool: &[AlignedVec<T>]) -> usize {
            pool.iter()
                .map(|v| v.capacity() * std::mem::size_of::<T>())
                .sum()
        }
        fn vec_bytes<T>(pool: &[Vec<T>]) -> usize {
            pool.iter()
                .map(|v| v.capacity() * std::mem::size_of::<T>())
                .sum()
        }
        aligned_bytes(&self.f32_pool)
            + aligned_bytes(&self.i8_pool)
            + aligned_bytes(&self.i32_pool)
            + vec_bytes(&self.mat_pool)
            + vec_bytes(&self.idx_pool)
    }

    /// Total checkouts since creation.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Checkouts served from the pool (no allocation). `checkouts - pool_hits` bounds
    /// the number of allocations the workspace performed.
    pub fn pool_hits(&self) -> u64 {
        self.hits
    }
}

/// The two buffer shapes the element pools park: plain `Vec<T>` (matrix storage,
/// index lists) and [`AlignedVec<T>`] (SIMD-consumable element buffers). Private —
/// only the pool plumbing below is generic over it.
trait PoolBuf: Default {
    /// Elements the allocation can hold without reallocating.
    fn cap(&self) -> usize;
    /// Resizes to exactly `len` zeroed elements, reusing capacity when possible.
    fn reset_zeroed(&mut self, len: usize);
}

impl<T: Copy + Default> PoolBuf for Vec<T> {
    fn cap(&self) -> usize {
        self.capacity()
    }

    fn reset_zeroed(&mut self, len: usize) {
        self.clear();
        self.resize(len, T::default());
    }
}

impl<T: Copy + Default> PoolBuf for AlignedVec<T> {
    fn cap(&self) -> usize {
        self.capacity()
    }

    fn reset_zeroed(&mut self, len: usize) {
        AlignedVec::reset_zeroed(self, len);
    }
}

/// Shared checkout path of the typed element pools: best-fit reuse, else grow the
/// largest pooled buffer (one realloc, and it serves this size from the pool
/// afterwards) rather than sacrificing a small size class that would then miss on its
/// own next checkout, else allocate fresh.
fn take_zeroed<B: PoolBuf>(
    pool: &mut Vec<B>,
    checkouts: &mut u64,
    hits: &mut u64,
    len: usize,
) -> B {
    *checkouts += 1;
    match best_fit(pool, len, B::cap) {
        Some(i) => {
            *hits += 1;
            let mut v = pool.swap_remove(i);
            v.reset_zeroed(len);
            v
        }
        None => match take_largest(pool) {
            Some(mut v) => {
                v.reset_zeroed(len);
                v
            }
            None => {
                let mut v = B::default();
                v.reset_zeroed(len);
                v
            }
        },
    }
}

/// Shared recycle path of the typed element pools (bounded by [`MAX_POOLED`]).
fn recycle_into<B: PoolBuf>(pool: &mut Vec<B>, v: B) {
    if v.cap() == 0 {
        return;
    }
    if pool.len() >= MAX_POOLED {
        drop_smallest(pool, B::cap);
    }
    pool.push(v);
}

/// Index of the pooled buffer with the smallest capacity that still fits `len`.
fn best_fit<T>(pool: &[T], len: usize, cap: impl Fn(&T) -> usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, buf) in pool.iter().enumerate() {
        let c = cap(buf);
        if c >= len && best.is_none_or(|(_, bc)| c < bc) {
            best = Some((i, c));
        }
    }
    best.map(|(i, _)| i)
}

/// Removes and returns the largest-capacity pooled buffer, if any.
fn take_largest<B: PoolBuf>(pool: &mut Vec<B>) -> Option<B> {
    let (i, _) = pool
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.cap()))
        .max_by_key(|&(_, c)| c)?;
    Some(pool.swap_remove(i))
}

/// Drops the smallest-capacity buffer to keep the pool bounded.
fn drop_smallest<T>(pool: &mut Vec<T>, cap: impl Fn(&T) -> usize) {
    if let Some((i, _)) = pool
        .iter()
        .enumerate()
        .map(|(i, v)| (i, cap(v)))
        .min_by_key(|&(_, c)| c)
    {
        pool.swap_remove(i);
    }
}

std::thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's workspace.
///
/// The workspace lives for the thread's lifetime, so repeated calls on the same thread
/// (a serving worker answering request after request) reuse the same warm pool. Do not
/// call [`with_thread_workspace`] re-entrantly from inside `f` — the inner call would
/// panic on the already-borrowed `RefCell`; pass the outer `&mut Workspace` down
/// instead.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::SIMD_ALIGN;

    #[test]
    fn checkout_returns_zeroed_buffers_of_the_requested_shape() {
        let mut ws = Workspace::new();
        let mut m = ws.take(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.iter().all(|&v| v == 0.0));
        m.set(1, 1, 5.0);
        ws.recycle(m);
        // The recycled (dirty) buffer comes back zeroed.
        let m = ws.take(3, 4);
        assert!(m.iter().all(|&v| v == 0.0));
        assert_eq!(ws.checkouts(), 2);
        assert_eq!(ws.pool_hits(), 1);
    }

    #[test]
    fn best_fit_prefers_the_tightest_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(10, 10);
        let small = ws.take(2, 2);
        ws.recycle(big);
        ws.recycle(small);
        let hits_before = ws.pool_hits();
        let m = ws.take(2, 2);
        assert_eq!(ws.pool_hits(), hits_before + 1);
        ws.recycle(m);
        // Both buffers are still pooled: the 2x2 checkout must not have consumed the
        // 10x10 buffer.
        assert_eq!(ws.pooled_buffers(), 2);
        assert!(ws.pooled_bytes() >= (100 + 4) * 4);
    }

    #[test]
    fn steady_state_checkouts_always_hit_the_pool() {
        let mut ws = Workspace::new();
        // Warm up with the shapes of a fake per-layer pattern.
        for _ in 0..2 {
            let a = ws.take(16, 16);
            let b = ws.take(16, 32);
            let c = ws.take(1, 16);
            ws.recycle(a);
            ws.recycle(b);
            ws.recycle(c);
        }
        let (checkouts, hits) = (ws.checkouts(), ws.pool_hits());
        for _ in 0..10 {
            let a = ws.take(16, 16);
            let b = ws.take(16, 32);
            let c = ws.take(1, 16);
            ws.recycle(a);
            ws.recycle(b);
            ws.recycle(c);
        }
        assert_eq!(
            ws.checkouts() - checkouts,
            ws.pool_hits() - hits,
            "steady-state checkouts must all be pool hits"
        );
    }

    #[test]
    fn int8_and_i32_pools_follow_the_same_recycle_policy() {
        let mut ws = Workspace::new();
        let mut q = ws.take_i8_vec(64);
        q[0] = 17;
        let mut acc = ws.take_i32_vec(256);
        acc[255] = -9;
        ws.recycle_i8_vec(q);
        ws.recycle_i32_vec(acc);
        let (checkouts, hits) = (ws.checkouts(), ws.pool_hits());
        // Recycled buffers come back zeroed and count as pool hits.
        let q = ws.take_i8_vec(64);
        assert!(q.iter().all(|&v| v == 0));
        let acc = ws.take_i32_vec(200);
        assert!(acc.iter().all(|&v| v == 0));
        assert_eq!(ws.checkouts() - checkouts, 2);
        assert_eq!(ws.pool_hits() - hits, 2, "warm integer pools must hit");
        ws.recycle_i8_vec(q);
        ws.recycle_i32_vec(acc);
        // Integer buffers never cross into the f32 pool: an f32 checkout after only
        // integer recycles must miss.
        let hits_before = ws.pool_hits();
        let f = ws.take_vec(8);
        assert_eq!(
            ws.pool_hits(),
            hits_before,
            "f32 checkout hit an integer pool"
        );
        ws.recycle_vec(f);
        assert_eq!(ws.pooled_buffers(), 3);
        assert!(ws.pooled_bytes() >= 64 + 256 * 4 + 8 * 4);
    }

    #[test]
    fn element_pool_checkouts_stay_32_byte_aligned_through_recycling() {
        // The SIMD satellite contract: every f32/i8/i32 checkout — fresh, recycled,
        // best-fit downsized or grown-in-place — has a 32-byte-aligned base pointer.
        let mut ws = Workspace::new();
        for len in [1usize, 7, 64, 196, 1000] {
            let f = ws.take_vec(len);
            let q = ws.take_i8_vec(len);
            let acc = ws.take_i32_vec(len);
            assert_eq!(f.as_ptr() as usize % SIMD_ALIGN, 0, "fresh f32 len {len}");
            assert_eq!(q.as_ptr() as usize % SIMD_ALIGN, 0, "fresh i8 len {len}");
            assert_eq!(acc.as_ptr() as usize % SIMD_ALIGN, 0, "fresh i32 len {len}");
            ws.recycle_vec(f);
            ws.recycle_i8_vec(q);
            ws.recycle_i32_vec(acc);
        }
        // Recycled checkouts (pool hits) must keep the alignment, for every size
        // class: smaller than pooled (best fit), equal, and larger (grow largest).
        let hits_before = ws.pool_hits();
        for len in [3usize, 64, 196, 4096] {
            let f = ws.take_vec(len);
            let q = ws.take_i8_vec(len);
            let acc = ws.take_i32_vec(len);
            assert_eq!(
                f.as_ptr() as usize % SIMD_ALIGN,
                0,
                "recycled f32 len {len}"
            );
            assert_eq!(q.as_ptr() as usize % SIMD_ALIGN, 0, "recycled i8 len {len}");
            assert_eq!(
                acc.as_ptr() as usize % SIMD_ALIGN,
                0,
                "recycled i32 len {len}"
            );
            ws.recycle_vec(f);
            ws.recycle_i8_vec(q);
            ws.recycle_i32_vec(acc);
        }
        assert!(
            ws.pool_hits() >= hits_before + 9,
            "the alignment sweep must exercise recycled (pool-hit) checkouts"
        );
    }

    #[test]
    fn index_buffers_reuse_capacity() {
        let mut ws = Workspace::new();
        let mut idx = ws.take_indices();
        idx.extend(0..100);
        ws.recycle_indices(idx);
        let idx = ws.take_indices();
        assert!(idx.is_empty());
        assert!(idx.capacity() >= 100);
        ws.recycle_indices(idx);
    }

    #[test]
    fn pool_stays_bounded() {
        let mut ws = Workspace::new();
        let buffers: Vec<Matrix> = (1..=2 * MAX_POOLED).map(|i| ws.take(1, i)).collect();
        for b in buffers {
            ws.recycle(b);
        }
        assert!(ws.pooled_buffers() <= MAX_POOLED + 1);
    }

    #[test]
    fn thread_workspace_persists_across_calls() {
        let first = with_thread_workspace(|ws| {
            let m = ws.take(4, 4);
            ws.recycle(m);
            ws.checkouts()
        });
        let second = with_thread_workspace(|ws| {
            let m = ws.take(4, 4);
            ws.recycle(m);
            ws.checkouts()
        });
        assert!(second > first, "thread workspace must accumulate state");
    }
}
