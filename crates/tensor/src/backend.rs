//! Pluggable dense-GEMM backends: a scalar reference and a cache-blocked, register-tiled,
//! parallel kernel.
//!
//! ViTALiTy's linear Taylor attention turns ViT inference into a stream of small dense
//! GEMMs (`G = K̂ᵀV` is only `d × d`, projections are `n × d × d`), so the quality of the
//! software model's matmul decides whether the repo's experiments run in milliseconds or
//! minutes. This module supplies the hot-path implementation behind every
//! [`Matrix`](crate::Matrix) product:
//!
//! * [`MatmulBackend::Naive`] — the textbook `i j k` scalar triple loop. Kept as the
//!   differential-testing reference and as the baseline the perf benches compare against.
//! * [`MatmulBackend::Blocked`] — a BLIS-style kernel: the operands are packed into
//!   panel buffers (`MC × KC` row panels of A, `KC × NC` column panels of B, zero-padded
//!   to the register tile), and an `MR × NR = 8 × 8` microkernel accumulates each output
//!   tile in registers over contiguous packed slices, which the compiler auto-vectorises.
//!   Row panels of the output are distributed over threads with rayon.
//!
//! Both backends serve all three access patterns the attention kernels need — `A·B`,
//! `A·Bᵀ` ([`Matrix::matmul_transpose_b`](crate::Matrix::matmul_transpose_b)) and `Aᵀ·B`
//! ([`Matrix::transpose_matmul`](crate::Matrix::transpose_matmul)) — by packing through a
//! layout accessor instead of materialising the transpose.
//!
//! # Backend selection
//!
//! The process-wide default is [`MatmulBackend::Blocked`]. It can be overridden with the
//! `VITALITY_MATMUL_BACKEND` environment variable (`naive` or `blocked`) or at runtime
//! with [`set_matmul_backend`]. Code that needs a *specific* backend regardless of the
//! global default (differential tests, benches) should use the explicit `*_with` methods
//! on [`Matrix`](crate::Matrix).
//!
//! # Blocking parameters
//!
//! | Constant | Value | Role |
//! |---|---|---|
//! | `MR × NR` | 8 × 8  | register tile: 64 scalar accumulators held in SIMD registers |
//! | `KC`      | 256    | depth of one packed panel (A panel stays in L1/L2) |
//! | `MC`      | 64     | rows per parallel work unit (one packed A panel per task) |
//! | `NC`      | 512    | columns per packed B panel (panel stays in L2/L3) |
//!
//! Products smaller than [`SMALL_GEMM_LIMIT`] scalar multiply-adds skip packing entirely
//! and run a cache-friendly `i k j` loop — per-head attention matrices in the unit tests
//! are a few hundred elements, where panel packing would cost more than it saves.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which dense-GEMM implementation [`Matrix`](crate::Matrix) products run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulBackend {
    /// Textbook scalar `i j k` triple loop — slow, obviously correct, single-threaded.
    Naive,
    /// Cache-blocked, packed, 8×8-register-tiled kernel with rayon parallelism over row
    /// panels. The default.
    Blocked,
}

/// Register tile height (rows of C accumulated per microkernel call).
pub const MR: usize = 8;
/// Register tile width (columns of C accumulated per microkernel call).
pub const NR: usize = 8;
/// Packed-panel depth: how many of the shared dimension's entries one panel holds.
pub const KC: usize = 256;
/// Rows of C per parallel work unit (multiple of [`MR`]).
pub const MC: usize = 64;
/// Columns per packed B panel (multiple of [`NR`]).
pub const NC: usize = 512;

/// Below this many scalar multiply-adds (`m * k * n`) the blocked backend skips packing
/// and runs a plain `i k j` loop instead.
pub const SMALL_GEMM_LIMIT: usize = 32 * 1024;

const BACKEND_UNSET: u8 = 0;
const BACKEND_NAIVE: u8 = 1;
const BACKEND_BLOCKED: u8 = 2;

static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// Returns the process-wide backend used by the implicit `Matrix` products.
///
/// Resolution order: the last [`set_matmul_backend`] call, else the
/// `VITALITY_MATMUL_BACKEND` environment variable (`naive` / `blocked`), else
/// [`MatmulBackend::Blocked`].
///
/// An unrecognised `VITALITY_MATMUL_BACKEND` value does **not** abort the process: it
/// logs a warning to stderr (once) and falls back to the default backend. Long-lived
/// serving processes resolve the backend lazily on the first product of a request, and
/// a typo in a deployment environment must degrade to the default kernel, not kill the
/// server. Benchmark harnesses that care about the distinction should assert on
/// [`matmul_backend`]'s return value instead of trusting the variable.
pub fn matmul_backend() -> MatmulBackend {
    match GLOBAL_BACKEND.load(Ordering::Relaxed) {
        BACKEND_NAIVE => MatmulBackend::Naive,
        BACKEND_BLOCKED => MatmulBackend::Blocked,
        _ => {
            let resolved = match std::env::var("VITALITY_MATMUL_BACKEND") {
                Ok(value) => match value.as_str() {
                    "naive" => MatmulBackend::Naive,
                    "blocked" => MatmulBackend::Blocked,
                    other => {
                        eprintln!(
                            "warning: unrecognised VITALITY_MATMUL_BACKEND value {other:?} \
                             (expected \"naive\" or \"blocked\"); falling back to the \
                             default blocked backend"
                        );
                        MatmulBackend::Blocked
                    }
                },
                Err(_) => MatmulBackend::Blocked,
            };
            set_matmul_backend(resolved);
            resolved
        }
    }
}

/// Sets the process-wide backend used by the implicit `Matrix` products.
///
/// Prefer the explicit `*_with` methods for differential testing — they do not touch
/// global state and are therefore safe under the parallel test harness.
pub fn set_matmul_backend(backend: MatmulBackend) {
    let code = match backend {
        MatmulBackend::Naive => BACKEND_NAIVE,
        MatmulBackend::Blocked => BACKEND_BLOCKED,
    };
    GLOBAL_BACKEND.store(code, Ordering::Relaxed);
}

/// How a GEMM operand is laid out relative to the product being computed.
///
/// `RowMajor` reads element `(r, c)` at `data[r * stride + c]`; `Transposed` reads it at
/// `data[c * stride + r]`, i.e. the operand participates as its transpose without being
/// materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Operand participates as stored.
    RowMajor,
    /// Operand participates as its transpose.
    Transposed,
}

impl Layout {
    #[inline(always)]
    fn at(self, data: &[f32], stride: usize, r: usize, c: usize) -> f32 {
        match self {
            Layout::RowMajor => data[r * stride + c],
            Layout::Transposed => data[c * stride + r],
        }
    }
}

/// One GEMM operand: a flat buffer, its row stride, and how to index it.
#[derive(Debug, Clone, Copy)]
pub struct Operand<'a> {
    data: &'a [f32],
    stride: usize,
    layout: Layout,
}

impl<'a> Operand<'a> {
    /// A row-major operand with the given row stride (usually its column count).
    pub fn row_major(data: &'a [f32], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::RowMajor,
        }
    }

    /// An operand participating as the transpose of the given row-major buffer.
    pub fn transposed(data: &'a [f32], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::Transposed,
        }
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.layout.at(self.data, self.stride, r, c)
    }
}

impl MatmulBackend {
    /// Computes the `m × n` product `C = A · B` (with `A` logically `m × k` and `B`
    /// logically `k × n` after their layouts are applied) into a fresh buffer.
    pub fn gemm(self, m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        self.dispatch(&mut out, m, k, n, a, b);
        out
    }

    /// Computes the same product into a caller-provided buffer (the allocation-free
    /// entry point behind the `Matrix::*_into` methods and the [`crate::Workspace`]
    /// hot paths). The buffer is overwritten, not accumulated into.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n`.
    pub fn gemm_into(
        self,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
    ) {
        assert_eq!(out.len(), m * n, "gemm_into output buffer length");
        out.fill(0.0);
        self.dispatch(out, m, k, n, a, b);
    }

    fn dispatch(
        self,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        match self {
            MatmulBackend::Naive => gemm_naive(out, m, k, n, a, b),
            MatmulBackend::Blocked => {
                if m * k * n <= SMALL_GEMM_LIMIT {
                    gemm_small(out, m, k, n, a, b);
                } else {
                    gemm_blocked(out, m, k, n, a, b);
                }
            }
        }
    }
}

/// Reference kernel: the textbook scalar triple loop, one dot product per output element.
fn gemm_naive(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.at(i, kk) * b.at(kk, j);
            }
            out[i * n + j] = acc;
        }
    }
}

/// Small-product fast path: `i k j` loop over the output rows, no packing.
fn gemm_small(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for i in 0..m {
        let row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let a_ik = a.at(i, kk);
            for (j, o) in row.iter_mut().enumerate() {
                *o += a_ik * b.at(kk, j);
            }
        }
    }
}

/// The register-tiled inner kernel: accumulates an `MR × NR` tile of C over `kc` packed
/// depth steps. `ap` is k-major (`ap[kk * MR + i]`), `bp` is k-major (`bp[kk * NR + j]`);
/// both are zero-padded to the full tile, so the loop body is branch-free and the `j`
/// loop vectorises.
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = a.try_into().expect("packed A tile width");
        let b: &[f32; NR] = b.try_into().expect("packed B tile width");
        for i in 0..MR {
            let a_i = a[i];
            for j in 0..NR {
                acc[i][j] += a_i * b[j];
            }
        }
    }
}

/// Packs `kc` depth steps of `count` consecutive A rows (starting at `r0`) into a
/// k-major `MR`-wide tile, zero-padding the row edge.
#[inline]
fn pack_a_tile(dst: &mut [f32], a: Operand<'_>, kc: usize, k0: usize, r0: usize, count: usize) {
    for kk in 0..kc {
        let row = &mut dst[kk * MR..kk * MR + MR];
        for (i, slot) in row.iter_mut().enumerate().take(count) {
            *slot = a.at(r0 + i, k0 + kk);
        }
    }
}

/// Packs `kc` depth steps of `count` consecutive B columns (starting at `j0`) into a
/// k-major `NR`-wide tile, zero-padding the column edge.
#[inline]
fn pack_b_tile(dst: &mut [f32], b: Operand<'_>, kc: usize, k0: usize, j0: usize, count: usize) {
    for kk in 0..kc {
        let row = &mut dst[kk * NR..kk * NR + NR];
        for (j, slot) in row.iter_mut().enumerate().take(count) {
            *slot = b.at(k0 + kk, j0 + j);
        }
    }
}

/// The blocked kernel: BLIS-style `jc → pc → (parallel) ic` loop nest with packed
/// panels and the 8×8 microkernel.
fn gemm_blocked(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_tiles = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);

            // Pack the B panel once per (jc, pc); every row-panel task reads it.
            let mut bp = vec![0.0f32; n_tiles * kc * NR];
            for (t, tile) in bp.chunks_exact_mut(kc * NR).enumerate() {
                let j0 = jc + t * NR;
                pack_b_tile(tile, b, kc, pc, j0, NR.min(n - j0));
            }

            // Row panels of C are independent: distribute them over threads.
            out.par_chunks_mut(MC * n)
                .enumerate()
                .for_each(|(panel, c_rows)| {
                    let i0 = panel * MC;
                    let mc = MC.min(m - i0);
                    let m_tiles = mc.div_ceil(MR);

                    let mut ap = vec![0.0f32; m_tiles * kc * MR];
                    for (t, tile) in ap.chunks_exact_mut(kc * MR).enumerate() {
                        let r0 = i0 + t * MR;
                        pack_a_tile(tile, a, kc, pc, r0, MR.min(m - r0));
                    }

                    for ti in 0..m_tiles {
                        let a_tile = &ap[ti * kc * MR..(ti + 1) * kc * MR];
                        let rows_here = MR.min(mc - ti * MR);
                        for tj in 0..n_tiles {
                            let b_tile = &bp[tj * kc * NR..(tj + 1) * kc * NR];
                            let mut acc = [[0.0f32; NR]; MR];
                            microkernel(a_tile, b_tile, &mut acc);

                            let j0 = jc + tj * NR;
                            let cols_here = NR.min(n - j0);
                            for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                                let c_row = &mut c_rows[(ti * MR + i) * n + j0..][..cols_here];
                                for (o, &v) in c_row.iter_mut().zip(acc_row.iter()) {
                                    *o += v;
                                }
                            }
                        }
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] = f(r, c);
            }
        }
        data
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Pseudo-random but deterministic fill, large enough to exercise every edge path.
    fn entry(r: usize, c: usize) -> f32 {
        let h = (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17))) % 97;
        h as f32 * 0.03 - 1.4
    }

    #[test]
    fn blocked_matches_naive_on_ragged_shapes() {
        // Shapes straddling every blocking boundary: below MR/NR, non-multiples of the
        // tile, non-multiples of MC/KC/NC, and above the small-product cutoff.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (9, 7, 10),
            (33, 65, 17),
            (70, 70, 70),
            (65, 300, 19),
            (128, 64, 130),
        ] {
            let a = dense(m, k, entry);
            let b = dense(k, n, |r, c| entry(c, r));
            let fast = MatmulBackend::Blocked.gemm(
                m,
                k,
                n,
                Operand::row_major(&a, k),
                Operand::row_major(&b, n),
            );
            let slow = MatmulBackend::Naive.gemm(
                m,
                k,
                n,
                Operand::row_major(&a, k),
                Operand::row_major(&b, n),
            );
            let diff = max_abs_diff(&fast, &slow);
            assert!(diff < 1e-3, "({m},{k},{n}) diverged by {diff}");
        }
    }

    #[test]
    fn transposed_layouts_match_materialised_transposes() {
        let (m, k, n) = (37, 41, 29);
        let a = dense(m, k, entry); // used as A (m x k)
        let at = dense(k, m, |r, c| entry(c, r)); // A^T stored row-major
        let b = dense(k, n, |r, c| entry(r + 3, c));
        let direct = MatmulBackend::Blocked.gemm(
            m,
            k,
            n,
            Operand::row_major(&a, k),
            Operand::row_major(&b, n),
        );
        // A supplied as the transpose of A^T.
        let via_t = MatmulBackend::Blocked.gemm(
            m,
            k,
            n,
            Operand::transposed(&at, m),
            Operand::row_major(&b, n),
        );
        assert!(max_abs_diff(&direct, &via_t) < 1e-4);
    }

    #[test]
    fn empty_dimensions_produce_zero_buffers() {
        let a: Vec<f32> = vec![];
        let out = MatmulBackend::Blocked.gemm(
            0,
            4,
            3,
            Operand::row_major(&a, 4),
            Operand::row_major(&[0.0; 12], 3),
        );
        assert!(out.is_empty());
        let out = MatmulBackend::Blocked.gemm(
            2,
            0,
            3,
            Operand::row_major(&a, 0),
            Operand::row_major(&a, 3),
        );
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn backend_selection_round_trips() {
        let before = matmul_backend();
        set_matmul_backend(MatmulBackend::Naive);
        assert_eq!(matmul_backend(), MatmulBackend::Naive);
        set_matmul_backend(MatmulBackend::Blocked);
        assert_eq!(matmul_backend(), MatmulBackend::Blocked);
        set_matmul_backend(before);
    }
}
