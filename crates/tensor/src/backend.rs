//! Pluggable dense-GEMM backends: a scalar reference and a cache-blocked, register-tiled,
//! parallel kernel.
//!
//! ViTALiTy's linear Taylor attention turns ViT inference into a stream of small dense
//! GEMMs (`G = K̂ᵀV` is only `d × d`, projections are `n × d × d`), so the quality of the
//! software model's matmul decides whether the repo's experiments run in milliseconds or
//! minutes. This module supplies the hot-path implementation behind every
//! [`Matrix`](crate::Matrix) product:
//!
//! * [`MatmulBackend::Naive`] — the textbook `i j k` scalar triple loop. Kept as the
//!   differential-testing reference and as the baseline the perf benches compare against.
//! * [`MatmulBackend::Blocked`] — a BLIS-style kernel: the operands are packed into
//!   panel buffers (`MC × KC` row panels of A, `KC × NC` column panels of B, zero-padded
//!   to the register tile), and an `MR × NR = 8 × 8` microkernel accumulates each output
//!   tile in registers over contiguous packed slices, which the compiler auto-vectorises.
//!   Row panels of the output are distributed over threads with rayon.
//! * [`MatmulBackend::Avx2`] — the same blocking structure with the hand-written
//!   AVX2/FMA microkernels from [`crate::simd`]: 256-bit FMA register tiles for f32 and
//!   a native `maddubs` i8×i8→i32 kernel that lets [`gemm_lattice_exact_into`]
//!   (and [`gemm_i8_native_into`]) skip the widened-f32 lattice round trip entirely.
//!   The default wherever [`crate::simd::simd_available`] holds; elsewhere every call
//!   transparently degrades to the scalar blocked path.
//!
//! All backends serve all three access patterns the attention kernels need — `A·B`,
//! `A·Bᵀ` ([`Matrix::matmul_transpose_b`](crate::Matrix::matmul_transpose_b)) and `Aᵀ·B`
//! ([`Matrix::transpose_matmul`](crate::Matrix::transpose_matmul)) — by packing through a
//! layout accessor instead of materialising the transpose.
//!
//! # Backend selection
//!
//! The process-wide default is [`MatmulBackend::Avx2`] when the host supports it (see
//! [`crate::cpu_features`]), else [`MatmulBackend::Blocked`]. It can be overridden with
//! the `VITALITY_MATMUL_BACKEND` environment variable (`naive`, `blocked` or `avx2`) or
//! at runtime with [`set_matmul_backend`]. Code that needs a *specific* backend
//! regardless of the global default (differential tests, benches) should use the
//! explicit `*_with` methods on [`Matrix`](crate::Matrix).
//!
//! # Adding a microkernel (worked example)
//!
//! The dispatch layer is deliberately thin, so a new instruction-set tier (say AVX-512,
//! or NEON on aarch64) is a four-step change — mirroring how [`MatmulBackend::Avx2`]
//! itself was added:
//!
//! 1. **Write the kernel pair** in `crates/tensor/src/simd.rs` behind a
//!    `#[cfg(all(target_arch = "...", not(force_scalar)))]` module: an `unsafe`
//!    `#[target_feature(...)]` register-tile microkernel consuming the packed k-major
//!    `MR`-wide / `NR`-wide panel layout (every packer writes *all* tile slots, so
//!    dirty reused scratch is safe), plus a blocked driver that packs into the
//!    thread-local [`crate::AlignedVec`] scratch. Every intrinsic block carries a
//!    `// SAFETY:` comment — the crate denies `unsafe_op_in_unsafe_fn`.
//! 2. **Gate it at runtime**: extend [`crate::CpuFeatures`] with the new flag(s),
//!    detect them in `cpu_features()`, and add a `<tier>_available()` predicate. The
//!    runtime check is what keeps the `unsafe` call sound on every host.
//! 3. **Teach the enum**: add the variant here, a `BACKEND_*` code for the atomic, a
//!    [`MatmulBackend::label`] string, an env-variable spelling in [`matmul_backend`]
//!    (unsupported hosts must `trace::warn!` and fall back, never panic), and a
//!    [`MatmulBackend::dispatch`] arm that degrades to the scalar blocked path when
//!    the runtime check fails — explicit `*_with(new_tier)` callers on old hardware
//!    still get correct answers.
//! 4. **Pin it differentially**: extend `crates/tensor/tests/simd_differential.rs`
//!    so the new kernel is compared against [`MatmulBackend::Naive`] (f32, within
//!    `1e-5`) and [`MatmulBackend::gemm_i8_into`] (integers, bit-identical) across
//!    shapes that straddle every remainder lane, and add the backend to the bench
//!    matrix in `bench_attention` so the win is tracked in `BENCH_attention.json`.
//!
//! # Blocking parameters
//!
//! | Constant | Value | Role |
//! |---|---|---|
//! | `MR × NR` | 8 × 8  | register tile: 64 scalar accumulators held in SIMD registers |
//! | `KC`      | 256    | depth of one packed panel (A panel stays in L1/L2) |
//! | `MC`      | 64     | rows per parallel work unit (one packed A panel per task) |
//! | `NC`      | 512    | columns per packed B panel (panel stays in L2/L3) |
//!
//! Products smaller than [`SMALL_GEMM_LIMIT`] scalar multiply-adds skip packing entirely
//! and run a cache-friendly `i k j` loop — per-head attention matrices in the unit tests
//! are a few hundred elements, where panel packing would cost more than it saves.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which dense-GEMM implementation [`Matrix`](crate::Matrix) products run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulBackend {
    /// Textbook scalar `i j k` triple loop — slow, obviously correct, single-threaded.
    Naive,
    /// Cache-blocked, packed, 8×8-register-tiled **scalar** kernel with rayon
    /// parallelism over row panels. The auto-vectorised baseline the SIMD tier is
    /// benchmarked against, and the default on hosts without AVX2/FMA.
    Blocked,
    /// The blocked structure with explicit AVX2/FMA microkernels ([`crate::simd`]):
    /// 256-bit FMA f32 register tiles and a native `maddubs` i8 path. The default
    /// when [`crate::simd::simd_available`] holds; on other hosts every call
    /// degrades to the scalar blocked kernel at runtime.
    Avx2,
}

/// Register tile height (rows of C accumulated per microkernel call).
pub const MR: usize = 8;
/// Register tile width (columns of C accumulated per microkernel call).
pub const NR: usize = 8;
/// Packed-panel depth: how many of the shared dimension's entries one panel holds.
pub const KC: usize = 256;
/// Rows of C per parallel work unit (multiple of [`MR`]).
pub const MC: usize = 64;
/// Columns per packed B panel (multiple of [`NR`]).
pub const NC: usize = 512;

/// Below this many scalar multiply-adds (`m * k * n`) the blocked backend skips packing
/// and runs a plain `i k j` loop instead.
pub const SMALL_GEMM_LIMIT: usize = 32 * 1024;

/// Reduction-chunk bound of [`MatmulBackend::gemm_i8_exact_into`]: the largest number
/// of `i8 × i8` partial products whose sum is guaranteed below `2²⁴`
/// (`1024 · 127² = 16 516 096 < 16 777 216`), i.e. exactly representable in `f32`.
pub const I8_EXACT_CHUNK: usize = 1024;

/// Process-wide hardware-counter accumulator for the dense-GEMM hot paths: every
/// non-small [`MatmulBackend`] product (f32 dispatch, chunked int8 lattice, native
/// int8 `maddubs`) runs under a [`perf::PerfRegion`] charging this sink, so
/// `/metrics` can report GEMM-attributed IPC and LLC miss rate separately from the
/// whole-batch compute counters. Products at or below [`SMALL_GEMM_LIMIT`]
/// multiply-adds are skipped — two `read(2)` syscalls would dominate them. Counts
/// are absent (never zero) on hosts where `perf_event_open(2)` is unavailable.
static GEMM_PERF: perf::PerfStats = perf::PerfStats::new();

/// The shared GEMM hardware-counter sink (see [`GEMM_PERF`]'s wiring notes).
pub fn gemm_perf() -> &'static perf::PerfStats {
    &GEMM_PERF
}

/// Counter region covering one GEMM, or `None` for products small enough that the
/// region's two read syscalls would outweigh the kernel itself.
#[inline]
fn gemm_perf_region(m: usize, k: usize, n: usize) -> Option<perf::PerfRegion<'static>> {
    if m * k * n > SMALL_GEMM_LIMIT {
        Some(perf::PerfRegion::enter(&GEMM_PERF))
    } else {
        None
    }
}

const BACKEND_UNSET: u8 = 0;
const BACKEND_NAIVE: u8 = 1;
const BACKEND_BLOCKED: u8 = 2;
const BACKEND_AVX2: u8 = 3;

static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The backend the process defaults to on this host: [`MatmulBackend::Avx2`] when the
/// SIMD microkernels can run, else [`MatmulBackend::Blocked`].
fn default_backend() -> MatmulBackend {
    if crate::simd::simd_available() {
        MatmulBackend::Avx2
    } else {
        MatmulBackend::Blocked
    }
}

/// Returns the process-wide backend used by the implicit `Matrix` products.
///
/// Resolution order: the last [`set_matmul_backend`] call, else the
/// `VITALITY_MATMUL_BACKEND` environment variable (`naive` / `blocked` / `avx2`), else
/// [`MatmulBackend::Avx2`] where [`crate::simd::simd_available`] holds and
/// [`MatmulBackend::Blocked`] everywhere else.
///
/// An unrecognised `VITALITY_MATMUL_BACKEND` value — or `avx2` requested on a host
/// whose CPU lacks the features — does **not** abort the process: it logs a
/// `trace::warn!` and falls back. Long-lived serving processes resolve the backend
/// lazily on the first product of a request, and a typo in a deployment environment
/// must degrade to the default kernel, not kill the server. Harnesses that care about
/// the distinction should assert on [`matmul_backend`]'s return value (the *resolved*
/// backend, also surfaced in `/metrics` and the bench JSON) instead of trusting the
/// variable.
pub fn matmul_backend() -> MatmulBackend {
    match GLOBAL_BACKEND.load(Ordering::Relaxed) {
        BACKEND_NAIVE => MatmulBackend::Naive,
        BACKEND_BLOCKED => MatmulBackend::Blocked,
        BACKEND_AVX2 => MatmulBackend::Avx2,
        _ => {
            let resolved = match std::env::var("VITALITY_MATMUL_BACKEND") {
                Ok(value) => match value.as_str() {
                    "naive" => MatmulBackend::Naive,
                    "blocked" => MatmulBackend::Blocked,
                    "avx2" => {
                        if crate::simd::simd_available() {
                            MatmulBackend::Avx2
                        } else {
                            trace::warn!(
                                "VITALITY_MATMUL_BACKEND=avx2 requested but this host \
                                 has no AVX2/FMA support ({:?}); falling back to the \
                                 scalar blocked backend",
                                crate::simd::cpu_features()
                            );
                            MatmulBackend::Blocked
                        }
                    }
                    other => {
                        trace::warn!(
                            "unrecognised VITALITY_MATMUL_BACKEND value {other:?} \
                             (expected \"naive\", \"blocked\" or \"avx2\"); falling \
                             back to the default {} backend",
                            default_backend().label()
                        );
                        default_backend()
                    }
                },
                Err(_) => default_backend(),
            };
            set_matmul_backend(resolved);
            resolved
        }
    }
}

/// Sets the process-wide backend used by the implicit `Matrix` products.
///
/// Prefer the explicit `*_with` methods for differential testing — they do not touch
/// global state and are therefore safe under the parallel test harness.
pub fn set_matmul_backend(backend: MatmulBackend) {
    let code = match backend {
        MatmulBackend::Naive => BACKEND_NAIVE,
        MatmulBackend::Blocked => BACKEND_BLOCKED,
        MatmulBackend::Avx2 => BACKEND_AVX2,
    };
    GLOBAL_BACKEND.store(code, Ordering::Relaxed);
}

/// How a GEMM operand is laid out relative to the product being computed.
///
/// `RowMajor` reads element `(r, c)` at `data[r * stride + c]`; `Transposed` reads it at
/// `data[c * stride + r]`, i.e. the operand participates as its transpose without being
/// materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Operand participates as stored.
    RowMajor,
    /// Operand participates as its transpose.
    Transposed,
}

impl Layout {
    #[inline(always)]
    fn at(self, data: &[f32], stride: usize, r: usize, c: usize) -> f32 {
        match self {
            Layout::RowMajor => data[r * stride + c],
            Layout::Transposed => data[c * stride + r],
        }
    }
}

/// One GEMM operand: a flat buffer, its row stride, and how to index it.
#[derive(Debug, Clone, Copy)]
pub struct Operand<'a> {
    data: &'a [f32],
    stride: usize,
    layout: Layout,
}

impl<'a> Operand<'a> {
    /// A row-major operand with the given row stride (usually its column count).
    pub fn row_major(data: &'a [f32], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::RowMajor,
        }
    }

    /// An operand participating as the transpose of the given row-major buffer.
    pub fn transposed(data: &'a [f32], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::Transposed,
        }
    }

    #[inline(always)]
    pub(crate) fn at(&self, r: usize, c: usize) -> f32 {
        self.layout.at(self.data, self.stride, r, c)
    }
}

/// One integer GEMM operand: a flat `i8` buffer, its row stride, and how to index it —
/// the quantized sibling of [`Operand`], consumed by [`MatmulBackend::gemm_i8_into`].
#[derive(Debug, Clone, Copy)]
pub struct IntOperand<'a> {
    data: &'a [i8],
    stride: usize,
    layout: Layout,
}

impl<'a> IntOperand<'a> {
    /// A row-major `i8` operand with the given row stride (usually its column count).
    pub fn row_major(data: &'a [i8], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::RowMajor,
        }
    }

    /// An `i8` operand participating as the transpose of the given row-major buffer.
    pub fn transposed(data: &'a [i8], stride: usize) -> Self {
        Self {
            data,
            stride,
            layout: Layout::Transposed,
        }
    }

    #[inline(always)]
    pub(crate) fn at(&self, r: usize, c: usize) -> i8 {
        match self.layout {
            Layout::RowMajor => self.data[r * self.stride + c],
            Layout::Transposed => self.data[c * self.stride + r],
        }
    }

    /// The raw buffer, stride and layout — for the SIMD packers' branch-free
    /// full-tile copies, which index the flat buffer directly instead of paying a
    /// per-byte `at` bounds check.
    #[inline(always)]
    pub(crate) fn raw(&self) -> (&'a [i8], usize, Layout) {
        (self.data, self.stride, self.layout)
    }
}

impl MatmulBackend {
    /// Computes the `m × n` product `C = A · B` (with `A` logically `m × k` and `B`
    /// logically `k × n` after their layouts are applied) into a fresh buffer.
    pub fn gemm(self, m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        self.dispatch(&mut out, m, k, n, a, b);
        out
    }

    /// Computes the same product into a caller-provided buffer (the allocation-free
    /// entry point behind the `Matrix::*_into` methods and the [`crate::Workspace`]
    /// hot paths). The buffer is overwritten, not accumulated into.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n`.
    pub fn gemm_into(
        self,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
    ) {
        assert_eq!(out.len(), m * n, "gemm_into output buffer length");
        out.fill(0.0);
        self.dispatch(out, m, k, n, a, b);
    }

    /// Integer GEMM **reference**: the `m × n` product of two quantized `i8` operands
    /// accumulated exactly into `i32` output elements (overwritten, not accumulated
    /// into) by a scalar widening `i k j` loop.
    ///
    /// Every partial product fits in `|a·b| ≤ 127² = 16129`, so the `i32` accumulator
    /// is exact for any shared dimension up to `k ≤ 2³¹ / 16129 ≈ 1.3·10⁵` — far
    /// beyond any token count this workspace serves; the bound is asserted. This form
    /// is kept as the obviously-correct differential baseline; hot paths should call
    /// [`MatmulBackend::gemm_i8_exact_into`], which produces bit-identical results
    /// through the packed f32 microkernel at a multiple of the throughput (baseline
    /// x86-64 has no vector `i8 → i32` widening multiply, so this loop stays scalar).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n` or `k` exceeds the exactness bound.
    pub fn gemm_i8_into(
        self,
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: IntOperand<'_>,
        b: IntOperand<'_>,
    ) {
        assert_eq!(out.len(), m * n, "gemm_i8_into output buffer length");
        assert!(
            k <= (i32::MAX / (127 * 127)) as usize,
            "gemm_i8_into shared dimension {k} would overflow the i32 accumulator"
        );
        out.fill(0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let a_ik = i32::from(a.at(i, kk));
                if a_ik == 0 {
                    continue;
                }
                match b.layout {
                    // The hot case (the attention kernels feed row-major B): a
                    // contiguous slice zip, which auto-vectorises the widening
                    // multiply-add; the accessor-per-element form does not.
                    Layout::RowMajor => {
                        let b_row = &b.data[kk * b.stride..kk * b.stride + n];
                        for (o, &bv) in row.iter_mut().zip(b_row) {
                            *o += a_ik * i32::from(bv);
                        }
                    }
                    Layout::Transposed => {
                        for (j, o) in row.iter_mut().enumerate() {
                            *o += a_ik * i32::from(b.data[j * b.stride + kk]);
                        }
                    }
                }
            }
        }
    }

    /// Fast exact integer GEMM: bit-identical to [`MatmulBackend::gemm_i8_into`], run
    /// through the packed f32 microkernel.
    ///
    /// The `i8` operands are widened into caller-provided `f32` scratch and multiplied
    /// with the ordinary (vectorised, register-tiled) float kernel. Every operand
    /// value is an integer with magnitude ≤ 127 and every partial sum over one
    /// reduction chunk is bounded by [`I8_EXACT_CHUNK`]` · 127² < 2²⁴`, so each f32
    /// operation lands on an exactly-representable integer — the float pipeline *is*
    /// an integer accumulator here, just one with SIMD lanes. Reductions longer than
    /// one chunk are split and the exact per-chunk integer results accumulated in
    /// `i32`. Differentially tested against the scalar reference.
    ///
    /// Scratch requirements (all overwritten): `a_f ≥ a.data.len()`,
    /// `b_f ≥ b.data.len()`, `c_f ≥ m · n`. Hot paths draw them from a
    /// [`crate::Workspace`], keeping the quantized kernels allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n` or a scratch slice is too small.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_i8_exact_into(
        self,
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: IntOperand<'_>,
        b: IntOperand<'_>,
        a_f: &mut [f32],
        b_f: &mut [f32],
        c_f: &mut [f32],
    ) {
        assert_eq!(out.len(), m * n, "gemm_i8_exact_into output buffer length");
        assert!(
            a_f.len() >= a.data.len() && b_f.len() >= b.data.len() && c_f.len() >= m * n,
            "gemm_i8_exact_into scratch too small"
        );
        for (f, &iv) in a_f.iter_mut().zip(a.data) {
            *f = f32::from(iv);
        }
        for (f, &iv) in b_f.iter_mut().zip(b.data) {
            *f = f32::from(iv);
        }
        let a_lat = Operand {
            data: &a_f[..a.data.len()],
            stride: a.stride,
            layout: a.layout,
        };
        let b_lat = Operand {
            data: &b_f[..b.data.len()],
            stride: b.stride,
            layout: b.layout,
        };
        self.gemm_lattice_exact_into(out, m, k, n, a_lat, b_lat, c_f);
    }

    /// The core of [`MatmulBackend::gemm_i8_exact_into`] for operands already held in
    /// the widened "lattice" form: `f32` buffers whose every element is an integer
    /// with `|v| ≤ 127` (e.g. produced directly by a quantization sweep). Accumulates
    /// the exact integer product into `i32`, chunking reductions at
    /// [`I8_EXACT_CHUNK`] so every f32 partial sum stays below `2²⁴` and therefore
    /// exactly integer. `c_f` (`≥ m · n`) is overwritten scratch.
    ///
    /// The lattice contract is the caller's to uphold — a non-integer or
    /// out-of-range operand silently loses exactness (the int8 kernels' differential
    /// tests against the scalar reference are the guard).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n` or `c_f` is too small.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_lattice_exact_into(
        self,
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
        c_f: &mut [f32],
    ) {
        assert_eq!(out.len(), m * n, "gemm_lattice_exact_into output length");
        assert!(
            c_f.len() >= m * n,
            "gemm_lattice_exact_into scratch too small"
        );
        // The same exactness bound the scalar reference asserts: beyond it the
        // per-chunk i32 accumulation could wrap, silently breaking the
        // bit-identical-to-reference contract.
        assert!(
            k <= (i32::MAX / (127 * 127)) as usize,
            "gemm_lattice_exact_into shared dimension {k} would overflow the i32 accumulator"
        );
        out.fill(0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        // SIMD fast path: re-narrow the lattice to i8 (one cheap O(len) sweep into
        // thread-local aligned scratch) and run the native maddubs kernel — exact
        // integer arithmetic on both routes, so results stay bit-identical to the
        // chunked f32 path and the scalar reference. Values outside [-127, 127]
        // (beyond the documented lattice contract, but tolerated by the f32 route)
        // make the sweep bail out to the chunked path instead.
        #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
        if self == MatmulBackend::Avx2
            && crate::simd::simd_available()
            && lattice_native(out, m, k, n, a, b)
        {
            return;
        }
        for lo in (0..k).step_by(I8_EXACT_CHUNK) {
            let kc = I8_EXACT_CHUNK.min(k - lo);
            // Offset the operand buffers so the sub-operand starts at reduction
            // index `lo` under either layout.
            let a_op = match a.layout {
                Layout::RowMajor => Operand::row_major(&a.data[lo..], a.stride),
                Layout::Transposed => Operand::transposed(&a.data[lo * a.stride..], a.stride),
            };
            let b_op = match b.layout {
                Layout::RowMajor => Operand::row_major(&b.data[lo * b.stride..], b.stride),
                Layout::Transposed => Operand::transposed(&b.data[lo..], b.stride),
            };
            self.gemm_into(&mut c_f[..m * n], m, kc, n, a_op, b_op);
            for (o, &s) in out.iter_mut().zip(c_f.iter()) {
                *o += s as i32;
            }
        }
    }

    /// Native int8 GEMM: the `maddubs` AVX2 kernel multiplying the `i8` operands
    /// directly with i32 accumulation — no f32 widening, no [`I8_EXACT_CHUNK`]
    /// splitting (integer accumulation is exact up to the asserted `k` bound).
    ///
    /// Returns `true` when the SIMD kernel ran and `out` holds the product
    /// (bit-identical to [`MatmulBackend::gemm_i8_into`]). Returns `false` — with
    /// `out` untouched — when this backend is not [`MatmulBackend::Avx2`], the host
    /// lacks the features, or an operand contains `-128` (the one i8 value the
    /// `abs`/`sign` maddubs idiom cannot represent; quantized attention operands are
    /// clamped to `±127` and never hit this). Callers fall back to
    /// [`MatmulBackend::gemm_i8_exact_into`] on `false`.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n` or `k` exceeds the i32 exactness bound.
    pub fn gemm_i8_native_into(
        self,
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: IntOperand<'_>,
        b: IntOperand<'_>,
    ) -> bool {
        if !(self == MatmulBackend::Avx2 && crate::simd::simd_available()) {
            return false;
        }
        if a.data.contains(&i8::MIN) || b.data.contains(&i8::MIN) {
            return false;
        }
        self.gemm_i8_native_clamped_into(out, m, k, n, a, b)
    }

    /// [`MatmulBackend::gemm_i8_native_into`] minus the `-128` operand scans, for
    /// callers that produce their operands through the ±127-saturating quantizer
    /// ([`crate::simd::quantize_i8`]) and can therefore *guarantee* the `maddubs`
    /// domain. The scans are `O(m·k + k·n)` full-buffer sweeps — pure overhead on the
    /// attention hot path, where every operand byte is clamped by construction.
    ///
    /// Feeding an operand containing `-128` here returns incorrect *values* (the
    /// `_mm256_sign_epi8` negation wraps) but is memory-safe, hence a safe `fn` with
    /// a debug-only re-check rather than an `unsafe` one.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != m * n` or `k` exceeds the i32 exactness bound; debug
    /// builds also re-assert the no-`-128` contract.
    pub fn gemm_i8_native_clamped_into(
        self,
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: IntOperand<'_>,
        b: IntOperand<'_>,
    ) -> bool {
        assert_eq!(out.len(), m * n, "gemm_i8_native_into output buffer length");
        assert!(
            k <= (i32::MAX / (127 * 127)) as usize,
            "gemm_i8_native_into shared dimension {k} would overflow the i32 accumulator"
        );
        debug_assert!(
            !a.data.contains(&i8::MIN) && !b.data.contains(&i8::MIN),
            "gemm_i8_native_clamped_into operand contains -128, outside the maddubs domain"
        );
        #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
        if self == MatmulBackend::Avx2 && crate::simd::simd_available() {
            let _perf = gemm_perf_region(m, k, n);
            crate::simd::gemm_i8_avx2(out, m, k, n, a, b);
            return true;
        }
        #[cfg(not(all(target_arch = "x86_64", not(force_scalar))))]
        let _ = (a, b);
        false
    }

    /// The stable lower-case name of this backend, as spelled in
    /// `VITALITY_MATMUL_BACKEND`, `/metrics` and `BENCH_attention.json`.
    pub fn label(self) -> &'static str {
        match self {
            MatmulBackend::Naive => "naive",
            MatmulBackend::Blocked => "blocked",
            MatmulBackend::Avx2 => "avx2",
        }
    }

    fn dispatch(
        self,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let _perf = gemm_perf_region(m, k, n);
        match self {
            MatmulBackend::Naive => gemm_naive(out, m, k, n, a, b),
            MatmulBackend::Blocked | MatmulBackend::Avx2 => {
                if m * k * n <= SMALL_GEMM_LIMIT {
                    // Per-head attention matrices in the unit tests and the tiny
                    // serving config land here: packing (for either blocked tier)
                    // would cost more than it saves.
                    gemm_small(out, m, k, n, a, b);
                    return;
                }
                #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
                if self == MatmulBackend::Avx2 && crate::simd::simd_available() {
                    crate::simd::gemm_f32_avx2(out, m, k, n, a, b);
                    return;
                }
                // Explicit Avx2 requests on unsupported hosts degrade to the scalar
                // blocked kernel — same results, no panic.
                gemm_blocked(out, m, k, n, a, b);
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
std::thread_local! {
    // Narrowed-lattice scratch for the SIMD fast path of `gemm_lattice_exact_into`;
    // distinct cells from the panel scratch inside `crate::simd`, which stays
    // borrowed while the kernel runs.
    static LATTICE_A_I8: std::cell::RefCell<crate::AlignedVec<i8>> =
        std::cell::RefCell::new(crate::AlignedVec::new());
    static LATTICE_B_I8: std::cell::RefCell<crate::AlignedVec<i8>> =
        std::cell::RefCell::new(crate::AlignedVec::new());
}

/// Narrows a widened-lattice operand back to `i8` scratch; `false` when any value
/// falls outside `[-127, 127]` (the caller then keeps the f32 route, which tolerates
/// such beyond-contract operands).
#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
fn narrow_lattice(dst: &mut crate::AlignedVec<i8>, src: &[f32]) -> bool {
    dst.reset_zeroed(src.len());
    let mut in_range = true;
    for (d, &v) in dst.iter_mut().zip(src) {
        in_range &= (-127.0..=127.0).contains(&v);
        *d = v as i8;
    }
    in_range
}

/// The SIMD fast path of [`MatmulBackend::gemm_lattice_exact_into`]: narrow both
/// lattice operands to thread-local aligned `i8` buffers and run the native maddubs
/// kernel. Returns `false` (with `out` still all-zero) when an operand breaks the
/// `[-127, 127]` lattice contract.
#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
fn lattice_native(
    out: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
    a: Operand<'_>,
    b: Operand<'_>,
) -> bool {
    LATTICE_A_I8.with(|a_cell| {
        LATTICE_B_I8.with(|b_cell| {
            let mut a_i8 = a_cell.borrow_mut();
            let mut b_i8 = b_cell.borrow_mut();
            if !narrow_lattice(&mut a_i8, a.data) || !narrow_lattice(&mut b_i8, b.data) {
                return false;
            }
            let a_op = IntOperand {
                data: &a_i8,
                stride: a.stride,
                layout: a.layout,
            };
            let b_op = IntOperand {
                data: &b_i8,
                stride: b.stride,
                layout: b.layout,
            };
            crate::simd::gemm_i8_avx2(out, m, k, n, a_op, b_op);
            true
        })
    })
}

/// Reference kernel: the textbook scalar triple loop, one dot product per output element.
fn gemm_naive(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.at(i, kk) * b.at(kk, j);
            }
            out[i * n + j] = acc;
        }
    }
}

/// Small-product fast path: `i k j` loop over the output rows, no packing.
fn gemm_small(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for i in 0..m {
        let row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let a_ik = a.at(i, kk);
            for (j, o) in row.iter_mut().enumerate() {
                *o += a_ik * b.at(kk, j);
            }
        }
    }
}

/// The register-tiled inner kernel: accumulates an `MR × NR` tile of C over `kc` packed
/// depth steps. `ap` is k-major (`ap[kk * MR + i]`), `bp` is k-major (`bp[kk * NR + j]`);
/// both are zero-padded to the full tile, so the loop body is branch-free and the `j`
/// loop vectorises.
#[inline(always)]
fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let a: &[f32; MR] = a.try_into().expect("packed A tile width");
        let b: &[f32; NR] = b.try_into().expect("packed B tile width");
        for i in 0..MR {
            let a_i = a[i];
            for j in 0..NR {
                acc[i][j] += a_i * b[j];
            }
        }
    }
}

/// Packs `kc` depth steps of `count` consecutive A rows (starting at `r0`) into a
/// k-major `MR`-wide tile, zero-padding the row edge.
#[inline]
fn pack_a_tile(dst: &mut [f32], a: Operand<'_>, kc: usize, k0: usize, r0: usize, count: usize) {
    for kk in 0..kc {
        let row = &mut dst[kk * MR..kk * MR + MR];
        for (i, slot) in row.iter_mut().enumerate().take(count) {
            *slot = a.at(r0 + i, k0 + kk);
        }
    }
}

/// Packs `kc` depth steps of `count` consecutive B columns (starting at `j0`) into a
/// k-major `NR`-wide tile, zero-padding the column edge.
#[inline]
fn pack_b_tile(dst: &mut [f32], b: Operand<'_>, kc: usize, k0: usize, j0: usize, count: usize) {
    for kk in 0..kc {
        let row = &mut dst[kk * NR..kk * NR + NR];
        for (j, slot) in row.iter_mut().enumerate().take(count) {
            *slot = b.at(k0 + kk, j0 + j);
        }
    }
}

/// The blocked kernel: BLIS-style `jc → pc → (parallel) ic` loop nest with packed
/// panels and the 8×8 microkernel.
fn gemm_blocked(out: &mut [f32], m: usize, k: usize, n: usize, a: Operand<'_>, b: Operand<'_>) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let n_tiles = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);

            // Pack the B panel once per (jc, pc); every row-panel task reads it.
            let mut bp = vec![0.0f32; n_tiles * kc * NR];
            for (t, tile) in bp.chunks_exact_mut(kc * NR).enumerate() {
                let j0 = jc + t * NR;
                pack_b_tile(tile, b, kc, pc, j0, NR.min(n - j0));
            }

            // Row panels of C are independent: distribute them over threads.
            out.par_chunks_mut(MC * n)
                .enumerate()
                .for_each(|(panel, c_rows)| {
                    let i0 = panel * MC;
                    let mc = MC.min(m - i0);
                    let m_tiles = mc.div_ceil(MR);

                    let mut ap = vec![0.0f32; m_tiles * kc * MR];
                    for (t, tile) in ap.chunks_exact_mut(kc * MR).enumerate() {
                        let r0 = i0 + t * MR;
                        pack_a_tile(tile, a, kc, pc, r0, MR.min(m - r0));
                    }

                    for ti in 0..m_tiles {
                        let a_tile = &ap[ti * kc * MR..(ti + 1) * kc * MR];
                        let rows_here = MR.min(mc - ti * MR);
                        for tj in 0..n_tiles {
                            let b_tile = &bp[tj * kc * NR..(tj + 1) * kc * NR];
                            let mut acc = [[0.0f32; NR]; MR];
                            microkernel(a_tile, b_tile, &mut acc);

                            let j0 = jc + tj * NR;
                            let cols_here = NR.min(n - j0);
                            for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                                let c_row = &mut c_rows[(ti * MR + i) * n + j0..][..cols_here];
                                for (o, &v) in c_row.iter_mut().zip(acc_row.iter()) {
                                    *o += v;
                                }
                            }
                        }
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] = f(r, c);
            }
        }
        data
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Pseudo-random but deterministic fill, large enough to exercise every edge path.
    fn entry(r: usize, c: usize) -> f32 {
        let h = (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17))) % 97;
        h as f32 * 0.03 - 1.4
    }

    #[test]
    fn blocked_matches_naive_on_ragged_shapes() {
        // Shapes straddling every blocking boundary: below MR/NR, non-multiples of the
        // tile, non-multiples of MC/KC/NC, and above the small-product cutoff.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (8, 8, 8),
            (9, 7, 10),
            (33, 65, 17),
            (70, 70, 70),
            (65, 300, 19),
            (128, 64, 130),
        ] {
            let a = dense(m, k, entry);
            let b = dense(k, n, |r, c| entry(c, r));
            let fast = MatmulBackend::Blocked.gemm(
                m,
                k,
                n,
                Operand::row_major(&a, k),
                Operand::row_major(&b, n),
            );
            let slow = MatmulBackend::Naive.gemm(
                m,
                k,
                n,
                Operand::row_major(&a, k),
                Operand::row_major(&b, n),
            );
            let diff = max_abs_diff(&fast, &slow);
            assert!(diff < 1e-3, "({m},{k},{n}) diverged by {diff}");
        }
    }

    #[test]
    fn transposed_layouts_match_materialised_transposes() {
        let (m, k, n) = (37, 41, 29);
        let a = dense(m, k, entry); // used as A (m x k)
        let at = dense(k, m, |r, c| entry(c, r)); // A^T stored row-major
        let b = dense(k, n, |r, c| entry(r + 3, c));
        let direct = MatmulBackend::Blocked.gemm(
            m,
            k,
            n,
            Operand::row_major(&a, k),
            Operand::row_major(&b, n),
        );
        // A supplied as the transpose of A^T.
        let via_t = MatmulBackend::Blocked.gemm(
            m,
            k,
            n,
            Operand::transposed(&at, m),
            Operand::row_major(&b, n),
        );
        assert!(max_abs_diff(&direct, &via_t) < 1e-4);
    }

    #[test]
    fn empty_dimensions_produce_zero_buffers() {
        let a: Vec<f32> = vec![];
        let out = MatmulBackend::Blocked.gemm(
            0,
            4,
            3,
            Operand::row_major(&a, 4),
            Operand::row_major(&[0.0; 12], 3),
        );
        assert!(out.is_empty());
        let out = MatmulBackend::Blocked.gemm(
            2,
            0,
            3,
            Operand::row_major(&a, 0),
            Operand::row_major(&a, 3),
        );
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn integer_gemm_matches_a_widening_reference_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (9, 7, 10),
            (33, 65, 17),
        ] {
            let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
            let b: Vec<i8> = (0..k * n).map(|i| ((i * 53 + 7) % 255) as i8).collect();
            let mut expected = vec![0i32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for kk in 0..k {
                        expected[i * n + j] += i32::from(a[i * k + kk]) * i32::from(b[kk * n + j]);
                    }
                }
            }
            for backend in [MatmulBackend::Naive, MatmulBackend::Blocked] {
                let mut out = vec![1i32; m * n];
                backend.gemm_i8_into(
                    &mut out,
                    m,
                    k,
                    n,
                    IntOperand::row_major(&a, k),
                    IntOperand::row_major(&b, n),
                );
                assert_eq!(out, expected, "({m},{k},{n}) diverged on {backend:?}");
            }
        }
    }

    #[test]
    fn fast_integer_gemm_is_bit_identical_to_the_scalar_reference() {
        // Shapes straddling the small-product cutoff and the exactness chunk,
        // including a reduction longer than I8_EXACT_CHUNK at worst-case ±127
        // magnitudes (the chunk-boundary stress for f32 integer exactness).
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (9, 7, 10),
            (33, 65, 17),
            (64, 196, 64),
            (8, I8_EXACT_CHUNK + 500, 8),
        ] {
            let a: Vec<i8> = (0..m * k)
                .map(|i| {
                    if i % 3 == 0 {
                        127
                    } else {
                        ((i * 37) % 255) as i8
                    }
                })
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|i| {
                    if i % 5 == 0 {
                        -127
                    } else {
                        ((i * 53) % 255) as i8
                    }
                })
                .collect();
            let mut reference = vec![0i32; m * n];
            MatmulBackend::Blocked.gemm_i8_into(
                &mut reference,
                m,
                k,
                n,
                IntOperand::row_major(&a, k),
                IntOperand::row_major(&b, n),
            );
            let mut a_f = vec![0f32; m * k];
            let mut b_f = vec![0f32; k * n];
            let mut c_f = vec![0f32; m * n];
            for backend in [MatmulBackend::Naive, MatmulBackend::Blocked] {
                let mut fast = vec![7i32; m * n];
                backend.gemm_i8_exact_into(
                    &mut fast,
                    m,
                    k,
                    n,
                    IntOperand::row_major(&a, k),
                    IntOperand::row_major(&b, n),
                    &mut a_f,
                    &mut b_f,
                    &mut c_f,
                );
                assert_eq!(fast, reference, "({m},{k},{n}) diverged on {backend:?}");
                // Transposed-A form (the attention kernels' G = K̂ᵀV shape).
                if m == n {
                    let mut via_t = vec![0i32; m * n];
                    let mut expected_t = vec![0i32; m * n];
                    MatmulBackend::Blocked.gemm_i8_into(
                        &mut expected_t,
                        m,
                        k,
                        n,
                        IntOperand::transposed(&a, m),
                        IntOperand::row_major(&b, n),
                    );
                    backend.gemm_i8_exact_into(
                        &mut via_t,
                        m,
                        k,
                        n,
                        IntOperand::transposed(&a, m),
                        IntOperand::row_major(&b, n),
                        &mut a_f,
                        &mut b_f,
                        &mut c_f,
                    );
                    assert_eq!(via_t, expected_t, "transposed ({m},{k},{n}) diverged");
                }
            }
        }
    }

    #[test]
    fn integer_gemm_transposed_layout_matches_materialised_transpose() {
        let (m, k, n) = (6usize, 9usize, 5usize);
        // A^T stored row-major (k x m), participating as A.
        let at: Vec<i8> = (0..k * m).map(|i| ((i * 29 + 3) % 251) as i8).collect();
        let a: Vec<i8> = {
            let mut a = vec![0i8; m * k];
            for r in 0..m {
                for c in 0..k {
                    a[r * k + c] = at[c * m + r];
                }
            }
            a
        };
        let b: Vec<i8> = (0..k * n).map(|i| ((i * 41 + 13) % 251) as i8).collect();
        let mut direct = vec![0i32; m * n];
        let mut via_t = vec![0i32; m * n];
        MatmulBackend::Blocked.gemm_i8_into(
            &mut direct,
            m,
            k,
            n,
            IntOperand::row_major(&a, k),
            IntOperand::row_major(&b, n),
        );
        MatmulBackend::Blocked.gemm_i8_into(
            &mut via_t,
            m,
            k,
            n,
            IntOperand::transposed(&at, m),
            IntOperand::row_major(&b, n),
        );
        assert_eq!(direct, via_t);
    }

    #[test]
    fn backend_selection_round_trips() {
        let before = matmul_backend();
        set_matmul_backend(MatmulBackend::Naive);
        assert_eq!(matmul_backend(), MatmulBackend::Naive);
        set_matmul_backend(MatmulBackend::Blocked);
        assert_eq!(matmul_backend(), MatmulBackend::Blocked);
        set_matmul_backend(before);
    }
}
