//! Runtime CPU-feature detection and the explicit AVX2/FMA microkernels behind
//! [`MatmulBackend::Avx2`](crate::MatmulBackend::Avx2).
//!
//! The scalar 8×8 microkernel in [`crate::backend`] leans on the auto-vectoriser,
//! which on the baseline `x86-64` target means 128-bit SSE2 with separate multiply and
//! add. This module supplies hand-written `std::arch` kernels for the two hot element
//! types:
//!
//! * **f32** — eight 256-bit FMA accumulators (one per register-tile row); each packed
//!   depth step is one aligned B-row load plus eight broadcast-FMA pairs.
//! * **i8** — the AVX2 integer dot-product idiom hardware PE arrays mirror: depth is
//!   processed four steps at a time with `_mm256_maddubs_epi16` (unsigned×signed byte
//!   multiply, pairwise i16 add) followed by `_mm256_madd_epi16` against ones to reach
//!   exact i32 lane sums. Signedness is handled with the `abs`/`sign` trick
//!   (`|a| · (b · sign a) = a · b`), which is exact for all operand values in
//!   `[-127, 127]` — the callers in [`crate::backend`] guard the single excluded value
//!   `-128` (where `_mm256_sign_epi8`'s negation would wrap) and fall back to the
//!   scalar-exact path instead.
//!
//! Everything here is gated twice: at compile time on `target_arch = "x86_64"` plus the
//! `--cfg force_scalar` escape hatch (useful under Miri, which does not model the
//! intrinsics), and at runtime on [`cpu_features`] (cached
//! `is_x86_feature_detected!`). Non-x86 and feature-less hosts transparently keep the
//! scalar blocked kernel.

use std::sync::OnceLock;

/// The instruction-set extensions the SIMD microkernels need, detected at runtime.
///
/// Surfaced in `/metrics` and the bench JSON so perf numbers are attributable to the
/// hardware they ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer + float vector ops (`_mm256_maddubs_epi16` and friends).
    pub avx2: bool,
    /// Fused multiply-add (`_mm256_fmadd_ps`).
    pub fma: bool,
}

impl CpuFeatures {
    /// `true` when both extensions the microkernels rely on are present.
    pub fn simd_ready(&self) -> bool {
        self.avx2 && self.fma
    }
}

static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();

/// Detects (once, cached) the CPU features the SIMD backend needs.
///
/// The first call logs the outcome through `trace::info!` so serving logs record which
/// kernel family the process dispatched to.
pub fn cpu_features() -> CpuFeatures {
    *FEATURES.get_or_init(|| {
        let f = detect();
        trace::info!(
            "cpu features: avx2={} fma={} — {}",
            f.avx2,
            f.fma,
            if f.simd_ready() {
                "AVX2/FMA microkernels available"
            } else {
                "scalar blocked kernels only"
            }
        );
        f
    })
}

/// `true` when the AVX2/FMA microkernels can run on this host and build
/// (`x86_64`, not `--cfg force_scalar`, and the CPU advertises both features).
pub fn simd_available() -> bool {
    cfg!(all(target_arch = "x86_64", not(force_scalar))) && cpu_features().simd_ready()
}

#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
fn detect() -> CpuFeatures {
    CpuFeatures {
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        fma: std::arch::is_x86_feature_detected!("fma"),
    }
}

#[cfg(not(all(target_arch = "x86_64", not(force_scalar))))]
fn detect() -> CpuFeatures {
    CpuFeatures {
        avx2: false,
        fma: false,
    }
}

#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
pub(crate) use x86::{gemm_f32_avx2, gemm_i8_avx2};

/// Round-to-nearest-even magic constant (`1.5 · 2²³`): adding it pushes any value in
/// `[-2²², 2²²]` into the binade where one ulp is exactly 1, so the correctly rounded
/// integer falls out of the float add and can be read off the mantissa bits.
pub(crate) const MAGIC: f32 = 12_582_912.0;
pub(crate) const MAGIC_BITS: i32 = MAGIC.to_bits() as i32;

/// Largest absolute entry of a slice (`0.0` when empty). Finite inputs assumed — the
/// quantization calibration sweeps never see NaN/inf activations.
///
/// Dispatches to an AVX2 `vandnps`/`vmaxps` loop when the host supports it; the scalar
/// fallback keeps eight independent lane accumulators (an ordered `max`-fold is a
/// sequential dependency chain LLVM must keep scalar). Both forms compute the exact
/// same maximum — `max` is associative on finite floats.
pub fn absmax(xs: &[f32]) -> f32 {
    #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
    if simd_available() {
        // SAFETY: simd_available() verified the CPU advertises avx2.
        return unsafe { x86::absmax_avx2(xs) };
    }
    absmax_scalar(xs)
}

/// Scalar reference for [`absmax`] — public so differential tests can pin the SIMD
/// path against it on any host.
#[doc(hidden)]
pub fn absmax_scalar(xs: &[f32]) -> f32 {
    let chunks = xs.chunks_exact(8);
    let mut acc = chunks
        .remainder()
        .iter()
        .fold(0.0f32, |acc, &v| acc.max(v.abs()));
    let mut lanes = [0.0f32; 8];
    for chunk in chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = lane.max(v.abs());
        }
    }
    for &lane in &lanes {
        acc = acc.max(lane);
    }
    acc
}

/// Quantizes `src` onto the symmetric int8 grid: `dst[i] = rne(clamp(src[i] · inv,
/// -127, 127))` with round-to-nearest-even via the [`MAGIC`] constant. Finite inputs
/// assumed. The AVX2 path and the scalar fallback run the identical IEEE op sequence
/// (multiply, clamp, magic add, mantissa extract) lane for lane, so the two are
/// bit-identical; the saturating `packs` narrowing in the SIMD path never engages
/// because the clamp already bounds every lane to `±127`.
///
/// # Panics
///
/// Panics when `src.len() != dst.len()`.
pub fn quantize_i8(src: &[f32], inv: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize_i8 length mismatch");
    #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
    if simd_available() {
        // SAFETY: simd_available() verified the CPU advertises avx2.
        unsafe { x86::quantize_i8_avx2(src, inv, dst) };
        return;
    }
    quantize_i8_scalar(src, inv, dst);
}

/// Scalar reference for [`quantize_i8`] — public for differential tests.
#[doc(hidden)]
pub fn quantize_i8_scalar(src: &[f32], inv: f32, dst: &mut [i8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        let shifted = (s * inv).clamp(-127.0, 127.0) + MAGIC;
        *d = (shifted.to_bits() as i32).wrapping_sub(MAGIC_BITS) as i8;
    }
}

/// [`quantize_i8`] without the int8 narrowing: writes the *lattice view* — the rounded
/// grid values still widened to f32 (`(clamp(src·inv) + MAGIC) - MAGIC`) — for
/// operands whose every downstream consumer is an f32 kernel. Same rounding, same
/// bit-identical SIMD/scalar guarantee.
///
/// # Panics
///
/// Panics when `src.len() != dst.len()`.
pub fn quantize_lattice(src: &[f32], inv: f32, dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "quantize_lattice length mismatch");
    #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
    if simd_available() {
        // SAFETY: simd_available() verified the CPU advertises avx2.
        unsafe { x86::quantize_lattice_avx2(src, inv, dst) };
        return;
    }
    quantize_lattice_scalar(src, inv, dst);
}

/// Scalar reference for [`quantize_lattice`] — public for differential tests.
#[doc(hidden)]
pub fn quantize_lattice_scalar(src: &[f32], inv: f32, dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = ((s * inv).clamp(-127.0, 127.0) + MAGIC) - MAGIC;
    }
}

/// Exact per-column i32 sums of a row-major `i8` matrix: `out[c] = Σ_r data[r * cols
/// + c]`. The integer-sum half of the quantized attention aggregates (`k̂_sum`,
/// `v_sum`), hoisted here so it can ride the AVX2 `vpmovsxbd` widen-and-add path.
///
/// # Panics
///
/// Panics when `data.len()` is not a multiple of `out.len()` (`cols`), or `cols == 0`
/// while `data` is non-empty.
pub fn i8_column_sums(data: &[i8], out: &mut [i32]) {
    let cols = out.len();
    assert!(
        (cols == 0 && data.is_empty()) || (cols != 0 && data.len().is_multiple_of(cols)),
        "i8_column_sums: data length {} not a multiple of {cols} columns",
        data.len()
    );
    out.fill(0);
    #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
    if simd_available() && cols >= 8 {
        // SAFETY: simd_available() verified the CPU advertises avx2.
        unsafe { x86::i8_column_sums_avx2(data, out) };
        return;
    }
    i8_column_sums_scalar(data, out);
}

/// Scalar reference for [`i8_column_sums`] — public for differential tests. Adds into
/// `out` without zeroing (the dispatcher zeroes).
#[doc(hidden)]
pub fn i8_column_sums_scalar(data: &[i8], out: &mut [i32]) {
    if out.is_empty() {
        return;
    }
    for row in data.chunks_exact(out.len()) {
        for (acc, &v) in out.iter_mut().zip(row) {
            *acc += i32::from(v);
        }
    }
}

/// Test-only direct entry to the AVX2 f32 driver, bypassing the small-product
/// cutoff in the public dispatch so differential tests can pin the microkernel's
/// remainder lanes on tiny shapes. Overwrites `out`; returns `false` (leaving `out`
/// zeroed) when the SIMD kernels cannot run on this host/build.
#[doc(hidden)]
pub fn gemm_f32_avx2_direct(
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: crate::backend::Operand<'_>,
    b: crate::backend::Operand<'_>,
) -> bool {
    assert_eq!(
        out.len(),
        m * n,
        "gemm_f32_avx2_direct output buffer length"
    );
    out.fill(0.0);
    #[cfg(all(target_arch = "x86_64", not(force_scalar)))]
    if simd_available() {
        if m > 0 && n > 0 && k > 0 {
            x86::gemm_f32_avx2(out, m, k, n, a, b);
        }
        return true;
    }
    #[cfg(not(all(target_arch = "x86_64", not(force_scalar))))]
    let _ = (a, b, k);
    false
}

#[cfg(all(target_arch = "x86_64", not(force_scalar)))]
mod x86 {
    use crate::aligned::{AlignedVec, SIMD_ALIGN};
    use crate::backend::{IntOperand, Layout, Operand, KC, MC, MR, NC, NR};
    use rayon::prelude::*;
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    /// Depth steps folded into one i32 lane per `maddubs`/`madd` pair.
    const KG: usize = 4;

    std::thread_local! {
        // Packed-panel scratch, one cell per operand side so a caller holding the
        // B-panel borrow across the parallel region never collides with a worker
        // (possibly this same thread, under the inline rayon shim) packing A.
        static PANEL_A_F32: RefCell<AlignedVec<f32>> = RefCell::new(AlignedVec::new());
        static PANEL_B_F32: RefCell<AlignedVec<f32>> = RefCell::new(AlignedVec::new());
        static PANEL_A_I8: RefCell<AlignedVec<i8>> = RefCell::new(AlignedVec::new());
        static PANEL_B_I8: RefCell<AlignedVec<i8>> = RefCell::new(AlignedVec::new());
    }

    /// AVX2+FMA `MR × NR` register-tile microkernel: accumulates `kc` packed depth
    /// steps into `acc`. `ap` is k-major `MR`-wide, `bp` k-major `NR`-wide (the same
    /// packed layout the scalar microkernel consumes), and `bp` must be 32-byte
    /// aligned — each packed B row is exactly one `__m256`, loaded aligned.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports `avx2` and `fma` (checked once via
    /// [`super::cpu_features`] before any dispatch reaches this module) and that
    /// `ap.len() >= kc * MR`, `bp.len() >= kc * NR`, with `bp` 32-byte aligned.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn microkernel_f32(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        debug_assert_eq!(bp.as_ptr() as usize % SIMD_ALIGN, 0);
        let mut rows = [_mm256_setzero_ps(); MR];
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        for kk in 0..kc {
            // SAFETY: `kk < kc`, so the B row starts within bounds (len >= kc * NR);
            // the panel base is 32-byte aligned and each row is NR * 4 = 32 bytes,
            // keeping every row start aligned.
            let bv = unsafe { _mm256_load_ps(b.add(kk * NR)) };
            for (i, row) in rows.iter_mut().enumerate() {
                // SAFETY: `kk * MR + i < kc * MR <= ap.len()`.
                let av = unsafe { _mm256_broadcast_ss(&*a.add(kk * MR + i)) };
                *row = _mm256_fmadd_ps(av, bv, *row);
            }
        }
        for (dst, row) in acc.iter_mut().zip(rows) {
            // SAFETY: `dst` is a [f32; NR] — exactly the 8 lanes stored (unaligned
            // store: the accumulator tile lives on the stack).
            unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), row) };
        }
    }

    /// AVX2 `maddubs` integer microkernel: accumulates `groups` packed groups of
    /// [`KG`] depth steps into the `MR × NR` i32 tile `acc`. Packed layouts (see
    /// [`pack_a_i8`]/[`pack_b_i8`]): per group, `ap` holds `MR` rows × `KG`
    /// consecutive depth bytes, `bp` holds `NR` columns × `KG` depth bytes — one
    /// 32-byte aligned `__m256i` per B group.
    ///
    /// Exactness: with every operand byte in `[-127, 127]`, each `maddubs` pair sum
    /// is bounded by `2 · 127² = 32 258 < i16::MAX`, so the saturating i16 add never
    /// saturates, and `madd_epi16` widens exactly to i32. The callers keep `-128`
    /// out (it would additionally wrap in `_mm256_sign_epi8`).
    ///
    /// # Safety
    ///
    /// CPU must support `avx2`; `ap.len() >= groups * KG * MR`,
    /// `bp.len() >= groups * KG * NR`, both 32-byte aligned.
    #[target_feature(enable = "avx2")]
    unsafe fn microkernel_i8(ap: &[i8], bp: &[i8], groups: usize, acc: &mut [[i32; NR]; MR]) {
        debug_assert!(ap.len() >= groups * KG * MR && bp.len() >= groups * KG * NR);
        debug_assert_eq!(ap.as_ptr() as usize % SIMD_ALIGN, 0);
        debug_assert_eq!(bp.as_ptr() as usize % SIMD_ALIGN, 0);
        let ones = _mm256_set1_epi16(1);
        let mut rows = [_mm256_setzero_si256(); MR];
        let a = ap.as_ptr();
        let b = bp.as_ptr();
        for g in 0..groups {
            // SAFETY: group `g` starts at byte `g * 32 < groups * KG * NR <= bp.len()`
            // and the panel base is 32-byte aligned, so every group load is aligned.
            let bv = unsafe { _mm256_load_si256(b.add(g * KG * NR).cast::<__m256i>()) };
            for (i, row) in rows.iter_mut().enumerate() {
                // SAFETY: the four A bytes of (group g, row i) start at
                // `g * 32 + i * 4`, in bounds and 4-byte aligned off the 32-byte
                // aligned base.
                let aw = unsafe { a.add(g * KG * MR + i * KG).cast::<i32>().read() };
                let av = _mm256_set1_epi32(aw);
                let ua = _mm256_abs_epi8(av);
                let sb = _mm256_sign_epi8(bv, av);
                let pairs = _mm256_maddubs_epi16(ua, sb);
                *row = _mm256_add_epi32(*row, _mm256_madd_epi16(pairs, ones));
            }
        }
        for (dst, row) in acc.iter_mut().zip(rows) {
            // SAFETY: `dst` is a [i32; NR] — exactly the 8 lanes stored.
            unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast::<__m256i>(), row) };
        }
    }

    /// Packs `kc` depth steps of `count` consecutive A rows into the k-major
    /// `MR`-wide f32 tile, writing **every** slot (edge rows zeroed) so dirty
    /// reused scratch never leaks stale values into the kernel.
    fn pack_a_f32(dst: &mut [f32], a: Operand<'_>, kc: usize, k0: usize, r0: usize, count: usize) {
        for kk in 0..kc {
            let row = &mut dst[kk * MR..kk * MR + MR];
            for (i, slot) in row.iter_mut().enumerate() {
                *slot = if i < count {
                    a.at(r0 + i, k0 + kk)
                } else {
                    0.0
                };
            }
        }
    }

    /// Packs `kc` depth steps of `count` consecutive B columns into the k-major
    /// `NR`-wide f32 tile, writing every slot (edge columns zeroed).
    fn pack_b_f32(dst: &mut [f32], b: Operand<'_>, kc: usize, k0: usize, j0: usize, count: usize) {
        for kk in 0..kc {
            let row = &mut dst[kk * NR..kk * NR + NR];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = if j < count {
                    b.at(k0 + kk, j0 + j)
                } else {
                    0.0
                };
            }
        }
    }

    /// Interleaves four 8-byte depth rows into one packed 32-byte group:
    /// `dst[lane * KG + t] = row_t[lane]` — the exact scatter both i8 packers need
    /// per group, done with three `punpck` stages instead of 32 dependent byte
    /// stores. SSE2 only, which is baseline on every `x86_64` target.
    #[inline(always)]
    fn interleave_4x8(dst: &mut [i8], r0: &[i8], r1: &[i8], r2: &[i8], r3: &[i8]) {
        debug_assert!(dst.len() >= 32);
        debug_assert!(r0.len() >= 8 && r1.len() >= 8 && r2.len() >= 8 && r3.len() >= 8);
        // SAFETY: SSE2 is baseline on x86_64 (this module is compile-gated to it);
        // each `loadl` reads exactly the 8 asserted bytes, the two stores write the
        // 32 asserted destination bytes.
        unsafe {
            let v0 = _mm_loadl_epi64(r0.as_ptr().cast::<__m128i>());
            let v1 = _mm_loadl_epi64(r1.as_ptr().cast::<__m128i>());
            let v2 = _mm_loadl_epi64(r2.as_ptr().cast::<__m128i>());
            let v3 = _mm_loadl_epi64(r3.as_ptr().cast::<__m128i>());
            // ab = a0 b0 a1 b1 … a7 b7; cd likewise; the 16-bit unpacks then yield
            // a_j b_j c_j d_j quads in lane order — the packed group layout.
            let ab = _mm_unpacklo_epi8(v0, v1);
            let cd = _mm_unpacklo_epi8(v2, v3);
            let lo = _mm_unpacklo_epi16(ab, cd);
            let hi = _mm_unpackhi_epi16(ab, cd);
            let out = dst.as_mut_ptr();
            _mm_storeu_si128(out.cast::<__m128i>(), lo);
            _mm_storeu_si128(out.add(16).cast::<__m128i>(), hi);
        }
    }

    /// Packs `count` consecutive A rows into `groups` byte groups: group `g`, row
    /// `i`, depth offset `t` lands at `dst[g * KG * MR + i * KG + t]`. Edge rows and
    /// the depth tail beyond `k` are zeroed (zero products contribute nothing).
    ///
    /// Full `MR`-row tiles over complete depth groups — the entire interior of any
    /// GEMM whose `m` is a multiple of 8 and `k` of 4, e.g. every attention head
    /// aggregate — take a branch-free [`interleave_4x8`]/`memcpy` path; only edge
    /// tiles and the depth tail pay the per-byte bounds/branch cost of the general
    /// path. On the `(d, n, d)` head shapes the packers are a measurable slice of
    /// the whole integer GEMM, so this is worth the two code paths.
    fn pack_a_i8(
        dst: &mut [i8],
        a: IntOperand<'_>,
        k: usize,
        groups: usize,
        r0: usize,
        count: usize,
    ) {
        let (data, stride, layout) = a.raw();
        let full = if count == MR { k / KG } else { 0 };
        match layout {
            // A[r, kk] = data[kk * stride + r]: each depth step is MR consecutive
            // source bytes scattered to stride-KG slots of the group block — the
            // 4×8 interleave.
            Layout::Transposed => {
                for g in 0..full {
                    let block = &mut dst[g * KG * MR..(g + 1) * KG * MR];
                    let row = |t: usize| &data[(g * KG + t) * stride + r0..][..MR];
                    interleave_4x8(block, row(0), row(1), row(2), row(3));
                }
            }
            // A[r, kk] = data[r * stride + kk]: each row contributes KG consecutive
            // source bytes per group — a direct 4-byte copy.
            Layout::RowMajor => {
                for g in 0..full {
                    let block = &mut dst[g * KG * MR..(g + 1) * KG * MR];
                    for i in 0..MR {
                        let src = &data[(r0 + i) * stride + g * KG..][..KG];
                        block[i * KG..(i + 1) * KG].copy_from_slice(src);
                    }
                }
            }
        }
        for g in full..groups {
            let block = &mut dst[g * KG * MR..(g + 1) * KG * MR];
            for i in 0..MR {
                for t in 0..KG {
                    let kk = g * KG + t;
                    block[i * KG + t] = if i < count && kk < k {
                        a.at(r0 + i, kk)
                    } else {
                        0
                    };
                }
            }
        }
    }

    /// Packs `count` consecutive B columns into `groups` byte groups: group `g`,
    /// column `j`, depth offset `t` lands at `dst[g * KG * NR + j * KG + t]`.
    /// Same interior fast path / edge slow path split as [`pack_a_i8`].
    fn pack_b_i8(
        dst: &mut [i8],
        b: IntOperand<'_>,
        k: usize,
        groups: usize,
        j0: usize,
        count: usize,
    ) {
        let (data, stride, layout) = b.raw();
        let full = if count == NR { k / KG } else { 0 };
        match layout {
            // B[kk, j] = data[kk * stride + j]: each depth step is NR consecutive
            // source bytes scattered to stride-KG slots of the group block — the
            // 4×8 interleave.
            Layout::RowMajor => {
                for g in 0..full {
                    let block = &mut dst[g * KG * NR..(g + 1) * KG * NR];
                    let row = |t: usize| &data[(g * KG + t) * stride + j0..][..NR];
                    interleave_4x8(block, row(0), row(1), row(2), row(3));
                }
            }
            // B[kk, j] = data[j * stride + kk]: each column contributes KG
            // consecutive source bytes per group — a direct 4-byte copy.
            Layout::Transposed => {
                for g in 0..full {
                    let block = &mut dst[g * KG * NR..(g + 1) * KG * NR];
                    for j in 0..NR {
                        let src = &data[(j0 + j) * stride + g * KG..][..KG];
                        block[j * KG..(j + 1) * KG].copy_from_slice(src);
                    }
                }
            }
        }
        for g in full..groups {
            let block = &mut dst[g * KG * NR..(g + 1) * KG * NR];
            for j in 0..NR {
                for t in 0..KG {
                    let kk = g * KG + t;
                    block[j * KG + t] = if j < count && kk < k {
                        b.at(kk, j0 + j)
                    } else {
                        0
                    };
                }
            }
        }
    }

    /// AVX2 absmax sweep: `vandnps` abs + `vmaxps` accumulate, eight lanes wide.
    ///
    /// # Safety
    ///
    /// CPU must support `avx2`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn absmax_avx2(xs: &[f32]) -> f32 {
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let chunks = xs.chunks_exact(8);
        let mut m = chunks
            .remainder()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        for chunk in chunks {
            // SAFETY: each exact chunk holds 8 contiguous f32s.
            let v = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
            acc = _mm256_max_ps(acc, _mm256_andnot_ps(sign, v));
        }
        let mut lanes = [0.0f32; 8];
        // SAFETY: `lanes` is exactly the 8 stored f32 lanes (stack, unaligned store).
        unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
        for &lane in &lanes {
            m = m.max(lane);
        }
        m
    }

    /// AVX2 int8 quantization sweep: 32 floats per iteration — four
    /// multiply/clamp/magic-round vectors narrowed with two saturating `packs` stages
    /// and one cross-lane permute. The saturation never engages (the clamp bounds
    /// every lane to ±127), so the result is bit-identical to the scalar loop.
    ///
    /// # Safety
    ///
    /// CPU must support `avx2`; `src.len() == dst.len()` (checked by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn quantize_i8_avx2(src: &[f32], inv: f32, dst: &mut [i8]) {
        debug_assert_eq!(src.len(), dst.len());
        let invv = _mm256_set1_ps(inv);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        let magic = _mm256_set1_ps(super::MAGIC);
        let magic_bits = _mm256_set1_epi32(super::MAGIC_BITS);
        // packs_epi32 + packs_epi16 interleave 128-bit lanes; this permute restores
        // source order (dword g of the packed result came from input vector g % 4's
        // half g / 4).
        let unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let n = src.len();
        let s = src.as_ptr();
        let d = dst.as_mut_ptr();
        for b in 0..n / 32 {
            let mut q = [_mm256_setzero_si256(); 4];
            for (t, qt) in q.iter_mut().enumerate() {
                // SAFETY: `b * 32 + t * 8 + 7 < 32 * (n / 32) <= n`.
                let x = unsafe { _mm256_loadu_ps(s.add(b * 32 + t * 8)) };
                let y = _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(x, invv), lo), hi);
                *qt = _mm256_sub_epi32(_mm256_castps_si256(_mm256_add_ps(y, magic)), magic_bits);
            }
            let p01 = _mm256_packs_epi32(q[0], q[1]);
            let p23 = _mm256_packs_epi32(q[2], q[3]);
            let packed = _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), unshuffle);
            // SAFETY: the 32 output bytes at `b * 32` are within `dst`.
            unsafe { _mm256_storeu_si256(d.add(b * 32).cast::<__m256i>(), packed) };
        }
        for i in (n / 32) * 32..n {
            let shifted = (src[i] * inv).clamp(-127.0, 127.0) + super::MAGIC;
            dst[i] = (shifted.to_bits() as i32).wrapping_sub(super::MAGIC_BITS) as i8;
        }
    }

    /// AVX2 lattice quantization sweep: multiply/clamp, magic add then subtract —
    /// the rounded grid value kept widened in f32.
    ///
    /// # Safety
    ///
    /// CPU must support `avx2`; `src.len() == dst.len()` (checked by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn quantize_lattice_avx2(src: &[f32], inv: f32, dst: &mut [f32]) {
        debug_assert_eq!(src.len(), dst.len());
        let invv = _mm256_set1_ps(inv);
        let lo = _mm256_set1_ps(-127.0);
        let hi = _mm256_set1_ps(127.0);
        let magic = _mm256_set1_ps(super::MAGIC);
        let n = src.len();
        let s = src.as_ptr();
        let d = dst.as_mut_ptr();
        for i in 0..n / 8 {
            // SAFETY: `i * 8 + 7 < 8 * (n / 8) <= n` for both load and store.
            let x = unsafe { _mm256_loadu_ps(s.add(i * 8)) };
            let y = _mm256_min_ps(_mm256_max_ps(_mm256_mul_ps(x, invv), lo), hi);
            let z = _mm256_sub_ps(_mm256_add_ps(y, magic), magic);
            unsafe { _mm256_storeu_ps(d.add(i * 8), z) };
        }
        for i in (n / 8) * 8..n {
            dst[i] = ((src[i] * inv).clamp(-127.0, 127.0) + super::MAGIC) - super::MAGIC;
        }
    }

    /// AVX2 i8 column sums: `vpmovsxbd` widen plus i32 vector add, with up to eight
    /// register accumulators (64 columns) per pass over the rows. Adds into `out`
    /// (the dispatcher zeroes it), so multi-pass wide matrices compose.
    ///
    /// # Safety
    ///
    /// CPU must support `avx2`; `data.len()` must be a multiple of `out.len() >= 8`
    /// (checked by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn i8_column_sums_avx2(data: &[i8], out: &mut [i32]) {
        let cols = out.len();
        let rows = data.len() / cols;
        let simd_cols = cols - cols % 8;
        let mut c0 = 0;
        while c0 < simd_cols {
            let nblk = ((simd_cols - c0) / 8).min(8);
            let mut acc = [_mm256_setzero_si256(); 8];
            for r in 0..rows {
                let base = r * cols + c0;
                for (b, accb) in acc.iter_mut().take(nblk).enumerate() {
                    // SAFETY: `base + b * 8 + 8 <= r * cols + simd_cols <=
                    // data.len()` — each load reads 8 in-bounds bytes.
                    let v = unsafe {
                        _mm_loadl_epi64(data.as_ptr().add(base + b * 8).cast::<__m128i>())
                    };
                    *accb = _mm256_add_epi32(*accb, _mm256_cvtepi8_epi32(v));
                }
            }
            for (b, accb) in acc.iter().take(nblk).enumerate() {
                // SAFETY: `out[c0 + b * 8..][..8]` is in bounds (`c0 + nblk * 8 <=
                // simd_cols <= cols`); unaligned load/store pair accumulates.
                unsafe {
                    let dst = out.as_mut_ptr().add(c0 + b * 8).cast::<__m256i>();
                    _mm256_storeu_si256(dst, _mm256_add_epi32(_mm256_loadu_si256(dst), *accb));
                }
            }
            c0 += nblk * 8;
        }
        if simd_cols < cols {
            for row in data.chunks_exact(cols) {
                for (acc, &v) in out[simd_cols..].iter_mut().zip(&row[simd_cols..]) {
                    *acc += i32::from(v);
                }
            }
        }
    }

    /// The AVX2 blocked f32 driver: the same BLIS-style `jc → pc → (parallel) ic`
    /// loop nest as the scalar `gemm_blocked`, with thread-local aligned panel
    /// scratch (zero steady-state allocations) and the FMA microkernel. Accumulates
    /// into `out` (callers zero it first), so the `pc` panel loop composes.
    ///
    /// Caller contract: [`super::simd_available`] returned `true` (this is what
    /// makes the `unsafe` microkernel calls sound).
    pub(crate) fn gemm_f32_avx2(
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        a: Operand<'_>,
        b: Operand<'_>,
    ) {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let n_tiles = nc.div_ceil(NR);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);

                PANEL_B_F32.with(|cell| {
                    let mut bp = cell.borrow_mut();
                    bp.reset_zeroed(n_tiles * kc * NR);
                    for (t, tile) in bp.chunks_exact_mut(kc * NR).enumerate() {
                        let j0 = jc + t * NR;
                        pack_b_f32(tile, b, kc, pc, j0, NR.min(n - j0));
                    }
                    let bp: &[f32] = &bp;

                    out.par_chunks_mut(MC * n)
                        .enumerate()
                        .for_each(|(panel, c_rows)| {
                            let i0 = panel * MC;
                            let mc = MC.min(m - i0);
                            let m_tiles = mc.div_ceil(MR);

                            PANEL_A_F32.with(|cell| {
                                let mut ap = cell.borrow_mut();
                                ap.reset_zeroed(m_tiles * kc * MR);
                                for (t, tile) in ap.chunks_exact_mut(kc * MR).enumerate() {
                                    let r0 = i0 + t * MR;
                                    pack_a_f32(tile, a, kc, pc, r0, MR.min(m - r0));
                                }

                                for ti in 0..m_tiles {
                                    let a_tile = &ap[ti * kc * MR..(ti + 1) * kc * MR];
                                    let rows_here = MR.min(mc - ti * MR);
                                    for tj in 0..n_tiles {
                                        let b_tile = &bp[tj * kc * NR..(tj + 1) * kc * NR];
                                        let mut acc = [[0.0f32; NR]; MR];
                                        // SAFETY: simd_available() gated the dispatch
                                        // (avx2 + fma present); tile slices are exactly
                                        // kc*MR / kc*NR long and the B panel rows are
                                        // 32-byte aligned (AlignedVec base, 32-byte
                                        // tile stride).
                                        unsafe { microkernel_f32(a_tile, b_tile, kc, &mut acc) };

                                        let j0 = jc + tj * NR;
                                        let cols_here = NR.min(n - j0);
                                        for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                                            let c_row =
                                                &mut c_rows[(ti * MR + i) * n + j0..][..cols_here];
                                            for (o, &v) in c_row.iter_mut().zip(acc_row.iter()) {
                                                *o += v;
                                            }
                                        }
                                    }
                                }
                            });
                        });
                });
            }
        }
    }

    /// The AVX2 native int8 driver: packs both operands into aligned byte panels and
    /// runs the `maddubs` microkernel, writing exact i32 products into `out`
    /// (overwritten). No depth chunking is needed — integer accumulation is exact up
    /// to the `k ≤ i32::MAX / 127²` bound the callers assert.
    ///
    /// Caller contract: [`super::simd_available`] returned `true`, and **no operand
    /// byte is `-128`** (see [`microkernel_i8`]); `out.len() == m * n`.
    pub(crate) fn gemm_i8_avx2(
        out: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
        a: IntOperand<'_>,
        b: IntOperand<'_>,
    ) {
        out.fill(0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let groups = k.div_ceil(KG);
        let n_tiles = n.div_ceil(NR);
        let m_tiles = m.div_ceil(MR);
        PANEL_B_I8.with(|b_cell| {
            let mut bp = b_cell.borrow_mut();
            bp.reset_zeroed(n_tiles * groups * KG * NR);
            for (t, tile) in bp.chunks_exact_mut(groups * KG * NR).enumerate() {
                let j0 = t * NR;
                pack_b_i8(tile, b, k, groups, j0, NR.min(n - j0));
            }
            PANEL_A_I8.with(|a_cell| {
                let mut ap = a_cell.borrow_mut();
                ap.reset_zeroed(groups * KG * MR);
                for ti in 0..m_tiles {
                    let r0 = ti * MR;
                    let rows_here = MR.min(m - r0);
                    pack_a_i8(&mut ap, a, k, groups, r0, rows_here);
                    for (tj, b_tile) in bp.chunks_exact(groups * KG * NR).enumerate() {
                        let mut acc = [[0i32; NR]; MR];
                        // SAFETY: simd_available() gated the dispatch (avx2 present);
                        // panels hold exactly groups*KG*{MR,NR} bytes at 32-byte
                        // aligned bases (AlignedVec, 32-byte group stride).
                        unsafe { microkernel_i8(&ap, b_tile, groups, &mut acc) };

                        let j0 = tj * NR;
                        let cols_here = NR.min(n - j0);
                        for (i, acc_row) in acc.iter().enumerate().take(rows_here) {
                            let c_row = &mut out[(r0 + i) * n + j0..][..cols_here];
                            c_row.copy_from_slice(&acc_row[..cols_here]);
                        }
                    }
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_detection_is_cached_and_consistent() {
        let first = cpu_features();
        let second = cpu_features();
        assert_eq!(first, second);
        assert_eq!(simd_available(), {
            cfg!(all(target_arch = "x86_64", not(force_scalar))) && first.simd_ready()
        });
    }

    #[test]
    fn simd_ready_requires_both_features() {
        assert!(CpuFeatures {
            avx2: true,
            fma: true
        }
        .simd_ready());
        assert!(!CpuFeatures {
            avx2: true,
            fma: false
        }
        .simd_ready());
        assert!(!CpuFeatures {
            avx2: false,
            fma: true
        }
        .simd_ready());
    }
}
