//! Row-major dense `f32` matrix with the primitives required by attention kernels.

use crate::backend::{matmul_backend, MatmulBackend, Operand};
use crate::error::{ShapeError, TensorResult};
use crate::stats::Summary;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major dense matrix of `f32` values.
///
/// `Matrix` is the workhorse type of the reproduction: queries, keys, values, attention
/// maps, the ViTALiTy global context matrix `G` and layer weights are all `Matrix`
/// instances. The API favours explicit method names (`matmul_transpose_b`,
/// `broadcast_sub_row`) over operator overloading for the attention-specific patterns so
/// that the algorithm implementations read close to Algorithm 1 in the paper.
///
/// # Example
///
/// ```
/// use vitality_tensor::Matrix;
///
/// let k = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
/// let mean = k.col_mean();          // 1 x d row vector, the paper's \bar{K}
/// let centered = k.broadcast_sub_row(&mean); // \hat{K} = K - 1_n \bar{K}
/// assert!(centered.col_mean().iter().all(|v| v.abs() < 1e-6));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> TensorResult<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the rows do not all have the same length or when
    /// `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> TensorResult<Self> {
        if rows.is_empty() {
            return Err(ShapeError::new("from_rows", (0, 0), (0, 0)));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(ShapeError::new(
                    "from_rows",
                    (rows.len(), cols),
                    (1, r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a square diagonal matrix with `diag` on its main diagonal.
    pub fn diag(diag: &[f32]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(
            row < self.rows,
            "row index {row} out of bounds ({})",
            self.rows
        );
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(
            row < self.rows,
            "row index {row} out of bounds ({})",
            self.rows
        );
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Column `col` copied into a new vector.
    ///
    /// # Panics
    ///
    /// Panics when `col >= cols()`.
    pub fn col(&self, col: usize) -> Vec<f32> {
        assert!(
            col < self.cols,
            "col index {col} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Flat row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Returns a matrix whose elements are `f(self[i][j])`.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn try_add(&self, other: &Self) -> TensorResult<Self> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn try_sub(&self, other: &Self) -> TensorResult<Self> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn try_hadamard(&self, other: &Self) -> TensorResult<Self> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Elementwise division.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn try_div(&self, other: &Self) -> TensorResult<Self> {
        self.zip_with(other, "div", |a, b| a / b)
    }

    /// Elementwise (Hadamard) product, panicking on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.try_hadamard(other).expect("hadamard shape mismatch")
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Self,
        op: &'static str,
        f: F,
    ) -> TensorResult<Self> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(op, self.shape(), other.shape()));
        }
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Multiplies every element by `factor`.
    pub fn scale(&self, factor: f32) -> Self {
        self.map(|v| v * factor)
    }

    /// Adds `other` elementwise in place (the allocation-free residual-connection form
    /// of [`Matrix::try_add`]).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Overwrites `self` with the contents of an equally-shaped `other`.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Self {
        self.map(|v| v + value)
    }

    // ------------------------------------------------------------------
    // Matrix multiplication and transposition
    // ------------------------------------------------------------------

    /// Matrix product `self * other` on the process-wide [`MatmulBackend`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    pub fn try_matmul(&self, other: &Self) -> TensorResult<Self> {
        if self.cols != other.rows {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()));
        }
        Ok(self.matmul_with(matmul_backend(), other))
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, other: &Self) -> Self {
        self.try_matmul(other).expect("matmul shape mismatch")
    }

    /// Matrix product `self * other` on an explicit backend (used by differential tests
    /// and benches; everyday code should call [`Matrix::matmul`]).
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul_with(&self, backend: MatmulBackend, other: &Self) -> Self {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = backend.gemm(
            self.rows,
            self.cols,
            other.cols,
            Operand::row_major(&self.data, self.cols),
            Operand::row_major(&other.data, other.cols),
        );
        Self {
            rows: self.rows,
            cols: other.cols,
            data,
        }
    }

    /// Matrix product `self * other` written into `out` (the allocation-free form of
    /// [`Matrix::matmul`], used by the [`crate::Workspace`]-threaded inference hot
    /// paths). `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree or `out` is not `rows x other.cols`.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul_into inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        matmul_backend().gemm_into(
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
            Operand::row_major(&self.data, self.cols),
            Operand::row_major(&other.data, other.cols),
        );
    }

    /// Matrix product `self * other.T` written into `out` (see [`Matrix::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics when `self.cols() != other.cols()` or `out` is not `rows x other.rows`.
    pub fn matmul_transpose_b_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transpose_b_into inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_transpose_b_into output shape mismatch"
        );
        matmul_backend().gemm_into(
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
            Operand::row_major(&self.data, self.cols),
            Operand::transposed(&other.data, other.cols),
        );
    }

    /// Matrix product `self.T * other` written into `out` (see [`Matrix::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics when `self.rows() != other.rows()` or `out` is not `cols x other.cols`.
    pub fn transpose_matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.rows,
            other.rows,
            "transpose_matmul_into inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "transpose_matmul_into output shape mismatch"
        );
        matmul_backend().gemm_into(
            &mut out.data,
            self.cols,
            self.rows,
            other.cols,
            Operand::transposed(&self.data, self.cols),
            Operand::row_major(&other.data, other.cols),
        );
    }

    /// Matrix product `self * other` exploiting zeros in `self`.
    ///
    /// Skips inner-product work for exactly-zero entries of `self`, which makes it the
    /// right kernel for *masked* operands — the Sanger-style sparse attention maps whose
    /// rows are mostly structural zeros. Dense operands should use [`Matrix::matmul`]:
    /// the per-element branch that pays off at high sparsity penalises dense GEMM.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul_sparse(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul_sparse inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Matrix product `self * other.T` without materialising the transpose.
    ///
    /// This is the access pattern of `Q K^T` in the vanilla attention and of
    /// `Q \hat{k}_{sum}^T` in the Taylor attention.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Self) -> Self {
        self.matmul_transpose_b_with(matmul_backend(), other)
    }

    /// Matrix product `self * other.T` on an explicit backend.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols() != other.cols()`.
    pub fn matmul_transpose_b_with(&self, backend: MatmulBackend, other: &Self) -> Self {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transpose_b inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = backend.gemm(
            self.rows,
            self.cols,
            other.rows,
            Operand::row_major(&self.data, self.cols),
            Operand::transposed(&other.data, other.cols),
        );
        Self {
            rows: self.rows,
            cols: other.rows,
            data,
        }
    }

    /// Matrix product `self.T * other` without materialising the transpose.
    ///
    /// This is the access pattern of the ViTALiTy global context matrix `G = \hat{K}^T V`.
    ///
    /// # Panics
    ///
    /// Panics when `self.rows() != other.rows()`.
    pub fn transpose_matmul(&self, other: &Self) -> Self {
        self.transpose_matmul_with(matmul_backend(), other)
    }

    /// Matrix product `self.T * other` on an explicit backend.
    ///
    /// # Panics
    ///
    /// Panics when `self.rows() != other.rows()`.
    pub fn transpose_matmul_with(&self, backend: MatmulBackend, other: &Self) -> Self {
        assert_eq!(
            self.rows,
            other.rows,
            "transpose_matmul inner dimension mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = backend.gemm(
            self.cols,
            self.rows,
            other.cols,
            Operand::transposed(&self.data, self.cols),
            Operand::row_major(&other.data, other.cols),
        );
        Self {
            rows: self.cols,
            cols: other.cols,
            data,
        }
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum over every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over every element. Returns zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Row sums as an `n x 1` column vector.
    pub fn row_sum(&self) -> Self {
        let data = (0..self.rows)
            .map(|r| self.row(r).iter().sum())
            .collect::<Vec<f32>>();
        Self {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Row means as an `n x 1` column vector.
    pub fn row_mean(&self) -> Self {
        self.row_sum().scale(1.0 / self.cols.max(1) as f32)
    }

    /// Column sums as a `1 x d` row vector.
    ///
    /// This is the paper's `1_n^T K` reduction used by the accumulator array of the
    /// ViTALiTy accelerator.
    pub fn col_sum(&self) -> Self {
        let mut data = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (acc, &v) in data.iter_mut().zip(self.row(r).iter()) {
                *acc += v;
            }
        }
        Self {
            rows: 1,
            cols: self.cols,
            data,
        }
    }

    /// Column means as a `1 x d` row vector (`\bar{K}` in the paper).
    pub fn col_mean(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        self.col_mean_into(&mut out);
        out
    }

    /// Column means written into a caller-provided `1 x cols` row vector (the
    /// allocation-free form of [`Matrix::col_mean`], used by mean-pooling hot paths).
    ///
    /// # Panics
    ///
    /// Panics when `out.shape() != (1, cols)`.
    pub fn col_mean_into(&self, out: &mut Self) {
        assert_eq!(
            out.shape(),
            (1, self.cols),
            "col_mean_into output shape mismatch"
        );
        out.data.fill(0.0);
        for r in 0..self.rows {
            for (acc, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *acc += v;
            }
        }
        let inv_n = 1.0 / self.rows.max(1) as f32;
        for acc in out.data.iter_mut() {
            *acc *= inv_n;
        }
    }

    /// Largest element; `f32::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element; `f32::INFINITY` for an empty matrix.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Summary statistics (mean, standard deviation, min, max) of all elements.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.data)
    }

    // ------------------------------------------------------------------
    // Broadcasting
    // ------------------------------------------------------------------

    /// Subtracts a `1 x cols` row vector from every row (`K - 1_n \bar{K}`).
    ///
    /// # Panics
    ///
    /// Panics when `row.shape() != (1, self.cols())`.
    pub fn broadcast_sub_row(&self, row: &Self) -> Self {
        assert_eq!(row.rows, 1, "broadcast_sub_row expects a 1 x d row vector");
        assert_eq!(row.cols, self.cols, "broadcast_sub_row width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &m) in out.row_mut(r).iter_mut().zip(row.data.iter()) {
                *v -= m;
            }
        }
        out
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics when `row.shape() != (1, self.cols())`.
    pub fn broadcast_add_row(&self, row: &Self) -> Self {
        let mut out = self.clone();
        out.add_row_inplace(row);
        out
    }

    /// Adds a `1 x cols` row vector to every row in place (the allocation-free form of
    /// [`Matrix::broadcast_add_row`], used by hot inference paths such as the `x W + b`
    /// projections).
    ///
    /// # Panics
    ///
    /// Panics when `row.shape() != (1, self.cols())`.
    pub fn add_row_inplace(&mut self, row: &Self) {
        assert_eq!(row.rows, 1, "add_row_inplace expects a 1 x d row vector");
        assert_eq!(row.cols, self.cols, "add_row_inplace width mismatch");
        for chunk in self.data.chunks_exact_mut(self.cols) {
            for (v, &m) in chunk.iter_mut().zip(row.data.iter()) {
                *v += m;
            }
        }
    }

    /// Divides every row by the corresponding entry of an `n x 1` column vector.
    ///
    /// This is the Taylor attention's Step 6: `Z = diag^{-1}(t_D) T_N`.
    ///
    /// # Panics
    ///
    /// Panics when `col.shape() != (self.rows(), 1)`.
    pub fn broadcast_div_col(&self, col: &Self) -> Self {
        assert_eq!(
            col.cols, 1,
            "broadcast_div_col expects an n x 1 column vector"
        );
        assert_eq!(col.rows, self.rows, "broadcast_div_col height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let d = col.get(r, 0);
            for v in out.row_mut(r) {
                *v /= d;
            }
        }
        out
    }

    /// Multiplies every row by the corresponding entry of an `n x 1` column vector.
    ///
    /// # Panics
    ///
    /// Panics when `col.shape() != (self.rows(), 1)`.
    pub fn broadcast_mul_col(&self, col: &Self) -> Self {
        assert_eq!(
            col.cols, 1,
            "broadcast_mul_col expects an n x 1 column vector"
        );
        assert_eq!(col.rows, self.rows, "broadcast_mul_col height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let d = col.get(r, 0);
            for v in out.row_mut(r) {
                *v *= d;
            }
        }
        out
    }

    /// Subtracts the per-row mean from each row (row-wise mean centring of an attention
    /// map, used only to validate the efficient key-centring identity in tests).
    pub fn center_rows(&self) -> Self {
        let means = self.row_mean();
        let mut out = self.clone();
        for r in 0..out.rows {
            let m = means.get(r, 0);
            for v in out.row_mut(r) {
                *v -= m;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Softmax and masking
    // ------------------------------------------------------------------

    /// Numerically-stable softmax applied independently to each row.
    pub fn softmax_rows(&self) -> Self {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Softmax applied to each row **without** subtracting the row maximum.
    ///
    /// The ViTALiTy Taylor expansion is defined around the raw (mean-centred) logits, so
    /// equivalence tests compare against this un-shifted form; `softmax_rows` and
    /// `softmax_rows_unshifted` agree mathematically but can differ in the last ulps.
    pub fn softmax_rows_unshifted(&self) -> Self {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = v.exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Zeroes every element whose corresponding mask entry is zero.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn apply_mask(&self, mask: &Self) -> Self {
        assert_eq!(self.shape(), mask.shape(), "apply_mask shape mismatch");
        let data = self
            .data
            .iter()
            .zip(mask.data.iter())
            .map(|(&v, &m)| if m != 0.0 { v } else { 0.0 })
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    // ------------------------------------------------------------------
    // Slicing and stacking
    // ------------------------------------------------------------------

    /// Copies rows `start..end` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when `start > end` or `end > rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows, "slice_rows out of bounds");
        Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Copies columns `start..end` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when `start > end` or `end > cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.cols, "slice_cols out of bounds");
        let mut out = Self::zeros(self.rows, end - start);
        self.slice_cols_into(start, end, &mut out);
        out
    }

    /// Copies columns `start..end` into a caller-provided `rows x (end - start)` matrix
    /// (the allocation-free form of [`Matrix::slice_cols`], used to split per-head
    /// slices out of the fused Q/K/V projections).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or `out` has the wrong shape.
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Self) {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols_into out of bounds"
        );
        assert_eq!(
            out.shape(),
            (self.rows, end - start),
            "slice_cols_into output shape mismatch"
        );
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
    }

    /// Writes this matrix into columns `start..start + cols()` of a wider `out` matrix
    /// with the same row count (the inverse of [`Matrix::slice_cols_into`], used to
    /// merge per-head attention outputs).
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ or the column range does not fit.
    pub fn place_cols_into(&self, start: usize, out: &mut Self) {
        assert_eq!(self.rows, out.rows, "place_cols_into row count mismatch");
        assert!(
            start + self.cols <= out.cols,
            "place_cols_into column range out of bounds"
        );
        for r in 0..self.rows {
            out.row_mut(r)[start..start + self.cols].copy_from_slice(self.row(r));
        }
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ.
    pub fn hstack(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hstack row count mismatch");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// `true` when both matrices have the same shape and every pair of elements agrees
    /// within `tol` (absolutely or relatively, see [`crate::approx_eq`]).
    pub fn approx_eq(&self, other: &Self, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }

    /// Largest absolute elementwise difference between two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn constructors_and_shape() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(2, 2).sum(), 4.0);
        assert_eq!(Matrix::identity(3).sum(), 3.0);
        assert_eq!(Matrix::filled(2, 2, 0.5).mean(), 0.5);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b);
        let expected = Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(a.try_matmul(&sample()).is_err());
    }

    #[test]
    fn matmul_transpose_b_equals_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![1.0, 0.5, -1.0], vec![2.0, -2.0, 0.0]]).unwrap();
        let fused = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fused.approx_eq(&explicit, 1e-6));
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let fused = a.transpose_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fused.approx_eq(&explicit, 1e-6));
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert!(a
            .row_sum()
            .approx_eq(&Matrix::col_vector(&[6.0, 15.0]), 1e-6));
        assert!(a
            .col_sum()
            .approx_eq(&Matrix::row_vector(&[5.0, 7.0, 9.0]), 1e-6));
        assert!(a
            .row_mean()
            .approx_eq(&Matrix::col_vector(&[2.0, 5.0]), 1e-6));
        assert!(a
            .col_mean()
            .approx_eq(&Matrix::row_vector(&[2.5, 3.5, 4.5]), 1e-6));
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
    }

    #[test]
    fn broadcast_sub_row_centres_columns() {
        let a = sample();
        let centred = a.broadcast_sub_row(&a.col_mean());
        assert!(centred.col_mean().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn broadcast_div_col_matches_diagonal_inverse() {
        let a = sample();
        let d = Matrix::col_vector(&[2.0, 4.0]);
        let by_broadcast = a.broadcast_div_col(&d);
        let diag_inv = Matrix::diag(&[0.5, 0.25]);
        let by_matmul = diag_inv.matmul(&a);
        assert!(by_broadcast.approx_eq(&by_matmul, 1e-6));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_match_unshifted() {
        let a = Matrix::from_rows(&[vec![0.1, -0.4, 0.3], vec![2.0, 2.0, 2.0]]).unwrap();
        let s = a.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        let u = a.softmax_rows_unshifted();
        assert!(s.approx_eq(&u, 1e-5));
    }

    #[test]
    fn softmax_invariant_to_constant_row_shift() {
        // Property 1 in the paper: softmax(x - c) == softmax(x).
        let a = Matrix::from_rows(&[vec![0.4, -0.2, 1.3, 0.0]]).unwrap();
        let shifted = a.add_scalar(-3.7);
        assert!(a.softmax_rows().approx_eq(&shifted.softmax_rows(), 1e-5));
    }

    #[test]
    fn center_rows_produces_zero_row_means() {
        let a = sample();
        let centred = a.center_rows();
        assert!(centred.row_mean().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn masking_and_sparsity() {
        let a = sample();
        let mask = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]).unwrap();
        let masked = a.apply_mask(&mask);
        assert_eq!(masked.nnz(), 3);
        assert!((masked.sparsity() - 0.5).abs() < 1e-6);
        assert_eq!(masked.get(0, 1), 0.0);
        assert_eq!(masked.get(1, 2), 6.0);
    }

    #[test]
    fn slicing_and_stacking() {
        let a = sample();
        assert_eq!(a.slice_rows(1, 2).shape(), (1, 3));
        assert_eq!(a.slice_cols(0, 2).shape(), (2, 2));
        assert_eq!(a.hstack(&a).shape(), (2, 6));
        assert_eq!(a.vstack(&a).shape(), (4, 3));
        assert_eq!(a.hstack(&a).get(0, 4), 2.0);
        assert_eq!(a.vstack(&a).get(3, 0), 4.0);
    }

    #[test]
    fn operator_overloads() {
        let a = sample();
        let sum = &a + &a;
        assert!(sum.approx_eq(&a.scale(2.0), 1e-6));
        let diff = &sum - &a;
        assert!(diff.approx_eq(&a, 1e-6));
        let scaled = &a * 3.0;
        assert!(scaled.approx_eq(&a.scale(3.0), 1e-6));
    }

    #[test]
    fn into_products_match_their_allocating_forms() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let mut out = Matrix::filled(2, 2, f32::NAN); // stale contents must be overwritten
        a.matmul_into(&b, &mut out);
        assert!(out.approx_eq(&a.matmul(&b), 0.0));

        let bt = Matrix::from_rows(&[vec![1.0, 0.5, -1.0], vec![2.0, -2.0, 0.0]]).unwrap();
        let mut out = Matrix::zeros(2, 2);
        a.matmul_transpose_b_into(&bt, &mut out);
        assert!(out.approx_eq(&a.matmul_transpose_b(&bt), 0.0));

        let c = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut out = Matrix::zeros(3, 2);
        a.transpose_matmul_into(&c, &mut out);
        assert!(out.approx_eq(&a.transpose_matmul(&c), 0.0));
    }

    #[test]
    fn inplace_add_copy_and_column_placement() {
        let a = sample();
        let mut acc = a.clone();
        acc.add_assign(&a);
        assert!(acc.approx_eq(&a.scale(2.0), 1e-6));
        acc.copy_from(&a);
        assert!(acc.approx_eq(&a, 0.0));

        let mut head = Matrix::zeros(2, 2);
        a.slice_cols_into(1, 3, &mut head);
        assert!(head.approx_eq(&a.slice_cols(1, 3), 0.0));
        let mut merged = Matrix::zeros(2, 4);
        head.place_cols_into(2, &mut merged);
        assert_eq!(merged.get(0, 2), a.get(0, 1));
        assert_eq!(merged.get(1, 3), a.get(1, 2));
        assert_eq!(merged.get(0, 0), 0.0);
    }

    #[test]
    fn max_abs_diff_and_norm() {
        let a = sample();
        let b = a.add_scalar(0.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
        assert!((Matrix::identity(2).frobenius_norm() - 2.0_f32.sqrt()).abs() < 1e-6);
    }
}
