//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates-registry access, so the workspace vendors the
//! slice of proptest's API its property tests use: the [`Strategy`] trait with
//! `prop_map`, numeric-range strategies, `proptest::collection::vec`, the [`proptest!`]
//! macro (with `#![proptest_config(..)]`) and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: cases are sampled from a deterministic per-test RNG
//! (seeded from the test name), and there is **no shrinking** — a failing case reports
//! its case index and message but is not minimised. That trade-off keeps the shim tiny
//! while preserving the tests' semantics.

#![deny(missing_docs)]

use std::ops::Range;

/// The pieces a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Error produced by a failed property assertion (a plain message in this shim).
pub type TestCaseError = String;

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG used to generate test cases (xorshift64*, seeded from the test
/// name so every property gets an independent, reproducible stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test.
    pub fn deterministic(name: &str) -> Self {
        let mut state: u64 = 0x5851_F42D_4C95_7F2D;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: state.max(1),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! float_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    };
}

float_strategy!(f32);
float_strategy!(f64);

macro_rules! int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "cannot sample from an empty range");
                self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
        }
    };
}

int_strategy!(usize);
int_strategy!(u64);
int_strategy!(u32);
int_strategy!(i32);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates vectors of exactly `len` elements drawn from `element`.
    ///
    /// (Upstream accepts a size *range*; the workspace only uses fixed sizes.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case with a
/// formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind before negating so clippy's partial-ord lint does not fire on the
        // caller's comparison expression.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..) { body }` becomes
/// a regular `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
                $( let $arg = $strategy; )+
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&$arg, &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {case}: {message}",
                               ::std::stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (f32, f32)> {
        (0.0f32..1.0).prop_map(|a| (a, 1.0 - a))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -2.5f32..7.5, n in 3usize..9) {
            prop_assert!((-2.5..7.5).contains(&x), "x out of range: {}", x);
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply_their_function(p in pair()) {
            prop_assert!((p.0 + p.1 - 1.0).abs() < 1e-6);
        }

        #[test]
        fn vec_strategy_produces_fixed_lengths(v in crate::collection::vec(0.0f32..1.0, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_rng_reproduces_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
