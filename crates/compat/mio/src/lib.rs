//! Offline compat shim for the slice of [`mio`](https://docs.rs/mio) the
//! workspace needs: readiness polling over raw Linux `epoll`, with a
//! cross-thread [`Waker`] built on `eventfd`.
//!
//! The shim follows the PR-1 offline discipline — no registry dependencies.
//! The `epoll`/`eventfd` symbols are declared directly against the C library
//! that `std` already links; no `libc` crate is involved.
//!
//! Differences from real mio, deliberate and documented:
//!
//! - **Level-triggered only.** Every registration is level-triggered, so a
//!   socket that still has buffered bytes keeps firing. This is the simplest
//!   correct mode for a readiness loop that may not drain a source completely
//!   in one pass.
//! - **[`Waker`] is level-triggered too** and therefore must be drained: the
//!   event loop calls [`Waker::drain`] when it sees the waker token, otherwise
//!   the poll would spin.
//! - **Linux only.** On other targets [`Poll::new`] returns
//!   [`std::io::ErrorKind::Unsupported`]; callers are expected to fall back to
//!   a threaded front. Nothing panics at link or load time.

use std::io;
use std::time::Duration;

/// Identifies a registered event source in the events returned by
/// [`Poll::poll`]. Stored verbatim in the kernel's per-fd `epoll_data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest for a registration: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (and peer hang-up, which is always armed).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine two interests (`READABLE.add(WRITABLE)` polls for both).
    /// Named after the real mio's `Interest::add`, not `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Interest, Token};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::time::Duration;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EFD_CLOEXEC: c_int = 0x80000;
    const EFD_NONBLOCK: c_int = 0x800;

    // The kernel packs `epoll_event` on x86-64 (no padding between `events`
    // and `data`); every other architecture uses natural C layout. Getting
    // this wrong corrupts the token on one side or the other, so mirror
    // glibc's `__EPOLL_PACKED` exactly.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    // Declared against the C library std already links; no libc crate.
    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    }

    pub fn set_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
        // SAFETY: `fd` is a live listening socket owned by the caller; `listen`
        // on an already-listening socket just updates its accept-queue depth.
        if unsafe { listen(fd, backlog as c_int) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub struct Poll {
        epfd: RawFd,
    }

    impl Poll {
        pub fn new() -> io::Result<Poll> {
            // SAFETY: plain syscall wrapper; no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poll { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (DEL) or a valid EpollEvent for the
            // duration of the call; the kernel copies it before returning.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register<S: AsRawFd>(
            &self,
            source: &S,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token.0 as u64,
            };
            self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(&mut event))
        }

        pub fn reregister<S: AsRawFd>(
            &self,
            source: &S,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token.0 as u64,
            };
            self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(&mut event))
        }

        pub fn deregister<S: AsRawFd>(&self, source: &S) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
        }

        pub fn poll(
            &self,
            events: &mut super::Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.inner.clear();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => {
                    // Round sub-millisecond remainders up so a 100µs timeout
                    // does not become a busy spin at timeout 0.
                    let ms = d
                        .as_millis()
                        .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                    ms.min(c_int::MAX as u128) as c_int
                }
            };
            let capacity = events.inner.capacity().max(1) as c_int;
            // SAFETY: the spare capacity of `events.inner` is a valid,
            // properly aligned buffer for `capacity` EpollEvent values; the
            // kernel writes at most that many and reports the count.
            let count =
                unsafe { epoll_wait(self.epfd, events.inner.as_mut_ptr(), capacity, timeout_ms) };
            if count < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            // SAFETY: the kernel initialised exactly `count` events.
            unsafe { events.inner.set_len(count as usize) };
            Ok(())
        }
    }

    impl Drop for Poll {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            unsafe { close(self.epfd) };
        }
    }

    pub struct Waker {
        efd: RawFd,
    }

    impl Waker {
        pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
            // SAFETY: plain syscall wrapper.
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = Waker { efd };
            let mut event = EpollEvent {
                events: EPOLLIN,
                data: token.0 as u64,
            };
            poll.ctl(EPOLL_CTL_ADD, efd, Some(&mut event))?;
            Ok(waker)
        }

        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            // SAFETY: writing 8 bytes from a valid u64; eventfd writes are
            // atomic. A full counter (EAGAIN) still leaves the fd readable,
            // which is all a wake needs.
            let rc = unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::WouldBlock {
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }

        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // SAFETY: reading 8 bytes into a valid u64; EAGAIN (already
            // drained) is the expected benign outcome.
            unsafe { read(self.efd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            // SAFETY: closing an fd we own exactly once.
            unsafe { close(self.efd) };
        }
    }

    // The waker only carries an owned fd; writes to an eventfd are
    // thread-safe by contract.
    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    pub fn event_is_readable(bits: u32) -> bool {
        bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    pub fn event_is_writable(bits: u32) -> bool {
        bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    pub fn event_is_closed(bits: u32) -> bool {
        bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Interest, Token};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux; use the threaded fallback front",
        )
    }

    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub struct Poll {
        _private: (),
    }

    // On non-Linux targets there is no AsRawFd bound to satisfy; accept any
    // source so call sites compile unchanged.
    impl Poll {
        pub fn new() -> io::Result<Poll> {
            Err(unsupported())
        }

        pub fn register<S>(&self, _s: &S, _t: Token, _i: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn reregister<S>(&self, _s: &S, _t: Token, _i: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn deregister<S>(&self, _s: &S) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn poll(&self, _e: &mut super::Events, _t: Option<Duration>) -> io::Result<()> {
            Err(unsupported())
        }
    }

    pub struct Waker {
        _private: (),
    }

    impl Waker {
        pub fn new(_poll: &Poll, _token: Token) -> io::Result<Waker> {
            Err(unsupported())
        }

        pub fn wake(&self) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn drain(&self) {}
    }

    pub fn event_is_readable(_bits: u32) -> bool {
        false
    }

    pub fn event_is_writable(_bits: u32) -> bool {
        false
    }

    pub fn event_is_closed(_bits: u32) -> bool {
        false
    }
}

/// Readiness selector over raw `epoll`. One instance per event-loop thread.
///
/// Registrations are level-triggered: a source keeps firing while it stays
/// ready, so a handler that does not fully drain a socket is still correct.
pub struct Poll {
    inner: sys::Poll,
}

/// Widens a listening socket's accept queue.
///
/// `std::net::TcpListener::bind` hard-codes a backlog of 128. Under a
/// connection storm (hundreds of simultaneous connects) the kernel completes
/// handshakes via syncookies, then drops the connection when the accept queue
/// is full — the peer believes it connected and its first write dies with
/// `ECONNRESET`. Calling `listen(2)` again on the already-listening socket
/// updates the queue depth in place (the kernel clamps it to
/// `net.core.somaxconn`). Best-effort no-op outside Linux.
#[cfg(target_os = "linux")]
pub fn set_backlog<S: std::os::unix::io::AsRawFd>(source: &S, backlog: i32) -> io::Result<()> {
    sys::set_backlog(source.as_raw_fd(), backlog)
}

/// Widens a listening socket's accept queue (no-op on this target).
#[cfg(not(target_os = "linux"))]
pub fn set_backlog<S>(_source: &S, _backlog: i32) -> io::Result<()> {
    Ok(())
}

impl Poll {
    /// Create a new poller. Returns [`std::io::ErrorKind::Unsupported`] on
    /// non-Linux targets — callers should fall back to a threaded front.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            inner: sys::Poll::new()?,
        })
    }

    /// Register `source` for `interest`, tagging its events with `token`.
    #[cfg(target_os = "linux")]
    pub fn register<S: std::os::unix::io::AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(source, token, interest)
    }

    /// Register `source` for `interest`, tagging its events with `token`.
    #[cfg(not(target_os = "linux"))]
    pub fn register<S>(&self, source: &S, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.register(source, token, interest)
    }

    /// Change the interest set (and/or token) of an already registered source.
    #[cfg(target_os = "linux")]
    pub fn reregister<S: std::os::unix::io::AsRawFd>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.reregister(source, token, interest)
    }

    /// Change the interest set (and/or token) of an already registered source.
    #[cfg(not(target_os = "linux"))]
    pub fn reregister<S>(&self, source: &S, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.reregister(source, token, interest)
    }

    /// Remove a source from the poller. Closing the fd also removes it, so
    /// this is only needed when the source outlives its registration.
    #[cfg(target_os = "linux")]
    pub fn deregister<S: std::os::unix::io::AsRawFd>(&self, source: &S) -> io::Result<()> {
        self.inner.deregister(source)
    }

    /// Remove a source from the poller.
    #[cfg(not(target_os = "linux"))]
    pub fn deregister<S>(&self, source: &S) -> io::Result<()> {
        self.inner.deregister(source)
    }

    /// Block until at least one registered source is ready, `timeout`
    /// elapses, or a [`Waker`] fires. `None` blocks indefinitely. A signal
    /// interruption returns `Ok` with zero events rather than an error.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.poll(events, timeout)
    }
}

/// Buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<sys::EpollEvent>,
}

impl Events {
    /// Allocate space for up to `capacity` events per poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last poll timed out without readiness.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over the delivered events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().map(|raw| Event {
            bits: raw.events,
            token: Token(raw.data as usize),
        })
    }
}

/// A single readiness event: which source (token) and which directions.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    bits: u32,
    token: Token,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable, or peer closed / errored (a read will not block: it yields
    /// bytes, EOF, or the error).
    pub fn is_readable(&self) -> bool {
        sys::event_is_readable(self.bits)
    }

    /// Writable, or errored (a write will not block).
    pub fn is_writable(&self) -> bool {
        sys::event_is_writable(self.bits)
    }

    /// Peer hang-up or error — the connection is done for at least one
    /// direction; handlers should read to EOF and wind the connection down.
    pub fn is_closed(&self) -> bool {
        sys::event_is_closed(self.bits)
    }
}

/// Cross-thread wake-up handle for a [`Poll`], built on `eventfd`.
///
/// Level-triggered like everything else in the shim: after a wake fires the
/// loop must call [`Waker::drain`] or the poll will keep returning
/// immediately.
pub struct Waker {
    inner: sys::Waker,
}

impl Waker {
    /// Create a waker registered with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            inner: sys::Waker::new(&poll.inner, token)?,
        })
    }

    /// Make the next (or current) `poll` call return with this waker's token.
    /// Safe to call from any thread, any number of times; wakes coalesce.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }

    /// Reset the waker so the poll stops reporting it. Called by the event
    /// loop when it sees the waker's token.
    pub fn drain(&self) {
        self.inner.drain()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(9);

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(&listener, LISTENER, Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no readiness before a client connects");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![LISTENER]);
        assert!(events.iter().all(|e| e.is_readable()));
    }

    #[test]
    fn stream_readiness_tracks_reregistered_interest() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // A fresh connected socket is writable but not readable.
        poll.register(&server, CLIENT, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            events.is_empty(),
            "readable-only interest on an idle socket"
        );

        poll.reregister(&server, CLIENT, Interest::READABLE.add(Interest::WRITABLE))
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        client.write_all(b"ping").unwrap();
        poll.reregister(&server, CLIENT, Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_readable()));

        let mut buf = [0u8; 8];
        let mut stream_ref = &server;
        let n = stream_ref.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn peer_close_reports_closed_readiness() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poll.register(&server, CLIENT, Interest::READABLE).unwrap();

        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().find(|e| e.token() == CLIENT).unwrap();
        assert!(event.is_readable(), "EOF must surface as readable");
        assert!(event.is_closed(), "peer hang-up must surface as closed");
    }

    #[test]
    fn waker_wakes_across_threads_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake().unwrap();
            remote.wake().unwrap(); // wakes coalesce
        });

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        waker.drain();

        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "drained waker must stop firing");
        handle.join().unwrap();
    }

    #[test]
    fn poll_honours_timeout() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
