//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so the workspace vendors the
//! slice of criterion's API its benches use: [`Criterion`] with
//! `sample_size`/`measurement_time`/`warm_up_time`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! `sample_size` samples, each timing a batch of iterations sized so one sample lasts
//! roughly `measurement_time / sample_size`. The median per-iteration time is reported
//! on stdout as `name ... time: [x unit]` — the same headline format as criterion,
//! minus the statistical machinery (no outlier analysis, no HTML reports).

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API parity with criterion.
pub use std::hint::black_box;

/// Identifier of a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds an id from the parameter alone (for groups whose name already names the
    /// function).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    sample_size: usize,
    sample_time: Duration,
    /// Median per-iteration duration of the last [`Bencher::iter`] run, in nanoseconds.
    pub last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: also yields a per-iteration estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_sample_s = self.sample_time.as_secs_f64().max(1e-4);
        let batch = ((target_sample_s / est_per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
            sample_time: Duration::from_secs_f64(
                self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64,
            ),
            last_ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        println!(
            "{name:<50} time: [{}]",
            format_time(bencher.last_ns_per_iter)
        );
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_named(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.group);
        self.criterion.run_named(&full, f);
        self
    }

    /// Runs a parameterised benchmark within the group; the input is passed by
    /// reference to the closure.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.group);
        self.criterion.run_named(&full, |b| f(b, input));
        self
    }

    /// Finishes the group (cosmetic in this shim).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark target functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to harness=false targets;
            // this shim benchmarks everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures_something_positive() {
        let mut c = fast();
        let mut group = c.benchmark_group("shim");
        let mut measured = 0.0;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n as u64).sum::<u64>());
            measured = b.last_ns_per_iter;
        });
        group.finish();
        assert!(measured.is_finite() && measured > 0.0);
    }

    #[test]
    fn formats_cover_the_unit_ladder() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12e3).ends_with("µs"));
        assert!(format_time(12e6).ends_with("ms"));
        assert!(format_time(12e9).ends_with('s'));
    }
}
