//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates registry, so the
//! workspace vendors the tiny slice of the `rand 0.8` API it actually uses: the [`Rng`]
//! convenience trait (`gen`, `gen_range`), the [`SeedableRng::seed_from_u64`]
//! constructor and [`rngs::StdRng`].
//!
//! `StdRng` here is a xoshiro256++ generator seeded through SplitMix64. It is a
//! high-quality, deterministic PRNG, but it is **not** bit-compatible with upstream
//! `rand`'s ChaCha-based `StdRng` — seeds reproduce exactly within this workspace only,
//! which is all the experiments require.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the `Standard` distribution
/// of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i32);

/// Maps a uniform `u64` onto `[0, span)` via 128-bit multiply-shift (Lemire reduction,
/// without the rejection step — the bias is < 2^-64 per draw, irrelevant here).
fn reduce_u64(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type (`rng.gen::<f32>()` is uniform in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded through SplitMix64.
    ///
    /// Deterministic for a given seed, `Clone`-able and fast; not cryptographically
    /// secure and not bit-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut max = 0.0f32;
        let mut min = 1.0f32;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            max = max.max(v);
            min = min.min(v);
        }
        assert!(max > 0.99 && min < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0usize..200 {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        // Uniformity smoke test: mean of [0, 1) samples should be near 0.5.
        let mean: f32 = (0..10_000).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_trait_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
