//! A tiny fail-rs-style failpoint registry for chaos testing the serving stack.
//!
//! A *failpoint* is a named injection site compiled into production code paths
//! (`serve`'s HTTP framing, the worker loop, the gateway's prober). In the default
//! build every site is an inline no-op — [`fire`] is a `const`-foldable `false` and
//! the registry does not exist, so the alloc-regression and bench gates measure the
//! exact same code with or without this crate in the dependency graph. Building with
//! `RUSTFLAGS="--cfg failpoints"` compiles the registry in, and sites can then be
//! activated per test (or via the `FAILPOINTS` environment variable) to inject
//! stalls, partial writes, corrupted bytes, panics and probe failures.
//!
//! # Activation spec
//!
//! Each point is configured with a spec string:
//!
//! ```text
//! spec   := [prob '%'] [count '*'] kind ['@' thread_prefix]
//! kind   := 'off' | 'return' | 'sleep(' ms ')' | 'panic'
//! ```
//!
//! * `return` — [`fire`] yields `true`; the site injects its site-specific fault
//!   (truncate the write, flip the response bytes, fail the probe, ...).
//! * `sleep(ms)` — [`fire`] sleeps for `ms` milliseconds, then yields `false`
//!   (stall faults: slow reads/writes, wedged backends).
//! * `panic` — [`fire`] panics (worker-crash faults).
//! * `off` — the point stays registered but never triggers.
//! * `prob%` — trigger with the given percent probability, drawn from a
//!   deterministic xorshift generator seeded by [`set_seed`] (or the
//!   `FAILPOINTS_SEED` environment variable), so a chaos run replays exactly under
//!   a fixed seed and single-threaded evaluation order.
//! * `count*` — trigger at most `count` times; afterwards the point goes quiet.
//!   The count is consumed only by evaluations that pass the scope and probability
//!   filters.
//! * `@thread_prefix` — trigger only on threads whose name starts with the prefix.
//!   Serving threads carry their bound port in the name (`serve-conn-41123-…`), so
//!   one engine of an in-process cluster can be faulted while its siblings stay
//!   healthy.
//!
//! `FAILPOINTS="name=spec;name2=spec2"` configures points from the environment on
//! first use; programmatic [`cfg`] calls override it.
//!
//! # Worked example: adding a new failpoint site
//!
//! Say the response cache should be able to simulate eviction storms. Add one line
//! at the site:
//!
//! ```ignore
//! pub fn put(&self, key: &str, hash: u64, reply: InferReply) {
//!     if failpoint::fire("cache-drop-put") {
//!         return; // injected fault: the entry is silently not cached
//!     }
//!     /* real insert */
//! }
//! ```
//!
//! and activate it from a chaos test built with `--cfg failpoints`:
//!
//! ```ignore
//! failpoint::cfg("cache-drop-put", "25%return").unwrap();
//! // ... drive traffic, assert hit-rate degradation is handled ...
//! failpoint::remove("cache-drop-put");
//! ```
//!
//! The default build pays nothing for the new site: `fire` is `#[inline(always)]`
//! `false`, so the branch folds away.

#![deny(missing_docs)]

/// Whether failpoints are compiled into this build.
#[cfg(failpoints)]
pub const ENABLED: bool = true;

/// Whether failpoints are compiled into this build.
#[cfg(not(failpoints))]
pub const ENABLED: bool = false;

/// Evaluates the named failpoint (no-op build): never triggers, costs nothing.
#[cfg(not(failpoints))]
#[inline(always)]
pub fn fire(_name: &str) -> bool {
    false
}

/// Configures a failpoint (no-op build): accepted and ignored, so test setup code
/// can run unconditionally.
#[cfg(not(failpoints))]
#[inline(always)]
pub fn cfg(_name: &str, _spec: &str) -> Result<(), String> {
    Ok(())
}

/// Removes a failpoint (no-op build).
#[cfg(not(failpoints))]
#[inline(always)]
pub fn remove(_name: &str) {}

/// Clears every failpoint (no-op build).
#[cfg(not(failpoints))]
#[inline(always)]
pub fn clear() {}

/// Seeds the probability generator (no-op build).
#[cfg(not(failpoints))]
#[inline(always)]
pub fn set_seed(_seed: u64) {}

#[cfg(failpoints)]
mod enabled {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What a triggered point does.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Kind {
        Off,
        Return,
        Sleep(u64),
        Panic,
    }

    #[derive(Debug, Clone)]
    struct Point {
        kind: Kind,
        /// Percent chance per evaluation (100 = always).
        prob_pct: u8,
        /// Remaining triggers (`None` = unlimited).
        remaining: Option<u64>,
        /// Thread-name prefix filter.
        thread_prefix: Option<String>,
    }

    struct Registry {
        points: HashMap<String, Point>,
        /// xorshift64* state for probabilistic triggers.
        rng_state: u64,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut reg = Registry {
                points: HashMap::new(),
                rng_state: std::env::var("FAILPOINTS_SEED")
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0x5DEECE66D)
                    | 1,
            };
            if let Ok(env) = std::env::var("FAILPOINTS") {
                for entry in env.split(';').filter(|e| !e.trim().is_empty()) {
                    if let Some((name, spec)) = entry.split_once('=') {
                        if let Ok(point) = parse_spec(spec.trim()) {
                            reg.points.insert(name.trim().to_string(), point);
                        } else {
                            trace::warn!("ignoring malformed FAILPOINTS entry {entry:?}");
                        }
                    }
                }
            }
            Mutex::new(reg)
        })
    }

    fn parse_spec(spec: &str) -> Result<Point, String> {
        // Split off the optional thread scope first: prob%count*kind@prefix.
        let (term, thread_prefix) = match spec.split_once('@') {
            Some((term, prefix)) if !prefix.is_empty() => (term, Some(prefix.to_string())),
            Some(_) => return Err(format!("empty thread prefix in {spec:?}")),
            None => (spec, None),
        };
        let (prob_pct, term) = match term.split_once('%') {
            Some((pct, rest)) => (
                pct.parse::<u8>()
                    .ok()
                    .filter(|p| *p <= 100)
                    .ok_or_else(|| format!("bad probability in {spec:?}"))?,
                rest,
            ),
            None => (100, term),
        };
        let (remaining, term) = match term.split_once('*') {
            Some((count, rest)) => (
                Some(
                    count
                        .parse::<u64>()
                        .map_err(|_| format!("bad count in {spec:?}"))?,
                ),
                rest,
            ),
            None => (None, term),
        };
        let kind = if term == "off" {
            Kind::Off
        } else if term == "return" {
            Kind::Return
        } else if term == "panic" {
            Kind::Panic
        } else if let Some(ms) = term
            .strip_prefix("sleep(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            Kind::Sleep(
                ms.parse::<u64>()
                    .map_err(|_| format!("bad sleep duration in {spec:?}"))?,
            )
        } else {
            return Err(format!("unknown failpoint action {term:?}"));
        };
        Ok(Point {
            kind,
            prob_pct,
            remaining,
            thread_prefix,
        })
    }

    /// xorshift64*: tiny, deterministic, good enough for fault probabilities.
    fn next_pct(state: &mut u64) -> u8 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) % 100) as u8
    }

    /// Configures (or reconfigures) a failpoint from a spec string.
    pub fn cfg(name: &str, spec: &str) -> Result<(), String> {
        let point = parse_spec(spec)?;
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .points
            .insert(name.to_string(), point);
        Ok(())
    }

    /// Removes a failpoint; the site reverts to never triggering.
    pub fn remove(name: &str) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .points
            .remove(name);
    }

    /// Removes every configured failpoint (chaos-scenario teardown).
    pub fn clear() {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .points
            .clear();
    }

    /// Reseeds the probability generator (overrides `FAILPOINTS_SEED`).
    pub fn set_seed(seed: u64) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .rng_state = seed | 1;
    }

    /// Evaluates the named failpoint.
    ///
    /// Sleep and panic actions are performed *inside* this call; a `return` action
    /// yields `true`, telling the site to inject its site-specific fault. Anything
    /// else (unregistered point, `off`, failed probability draw, exhausted count,
    /// thread-scope mismatch) yields `false`.
    pub fn fire(name: &str) -> bool {
        let action = {
            let mut reg = registry().lock().expect("failpoint registry poisoned");
            let Registry { points, rng_state } = &mut *reg;
            let Some(point) = points.get_mut(name) else {
                return false;
            };
            if matches!(point.kind, Kind::Off) {
                return false;
            }
            if let Some(prefix) = &point.thread_prefix {
                let matches_scope = std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with(prefix.as_str()));
                if !matches_scope {
                    return false;
                }
            }
            if point.prob_pct < 100 && next_pct(rng_state) >= point.prob_pct {
                return false;
            }
            match &mut point.remaining {
                Some(0) => return false,
                Some(n) => *n -= 1,
                None => {}
            }
            point.kind
        };
        match action {
            Kind::Off => false,
            Kind::Return => true,
            Kind::Sleep(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                false
            }
            Kind::Panic => panic!("failpoint {name:?} triggered a panic"),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // The registry is process-global and these tests share it; every test uses
        // its own point names so they can run concurrently.

        #[test]
        fn unregistered_and_off_points_never_trigger() {
            assert!(!fire("t1-missing"));
            cfg("t1-off", "off").unwrap();
            assert!(!fire("t1-off"));
            remove("t1-off");
        }

        #[test]
        fn return_triggers_until_removed() {
            cfg("t2-ret", "return").unwrap();
            assert!(fire("t2-ret"));
            assert!(fire("t2-ret"));
            remove("t2-ret");
            assert!(!fire("t2-ret"));
        }

        #[test]
        fn counts_bound_the_trigger_budget() {
            cfg("t3-count", "2*return").unwrap();
            assert!(fire("t3-count"));
            assert!(fire("t3-count"));
            assert!(!fire("t3-count"), "count exhausted");
            remove("t3-count");
        }

        #[test]
        fn sleep_actions_stall_the_caller() {
            cfg("t4-sleep", "sleep(30)").unwrap();
            let start = std::time::Instant::now();
            assert!(!fire("t4-sleep"), "sleep yields false after stalling");
            assert!(start.elapsed() >= Duration::from_millis(25));
            remove("t4-sleep");
        }

        #[test]
        #[should_panic(expected = "failpoint \"t5-panic\" triggered a panic")]
        fn panic_actions_panic() {
            cfg("t5-panic", "panic").unwrap();
            fire("t5-panic");
        }

        #[test]
        fn thread_scopes_filter_by_name_prefix() {
            cfg("t6-scoped", "return@t6-target").unwrap();
            assert!(
                !fire("t6-scoped"),
                "the default test thread does not match the scope"
            );
            let triggered = std::thread::Builder::new()
                .name("t6-target-worker-3".to_string())
                .spawn(|| fire("t6-scoped"))
                .unwrap()
                .join()
                .unwrap();
            assert!(triggered, "a thread under the prefix triggers");
            remove("t6-scoped");
        }

        #[test]
        fn probabilities_are_deterministic_under_a_seed() {
            // Single-threaded evaluation order + fixed seed => identical sequences.
            let sequence = |seed: u64| -> Vec<bool> {
                set_seed(seed);
                cfg("t7-prob", "50%return").unwrap();
                let drawn = (0..64).map(|_| fire("t7-prob")).collect();
                remove("t7-prob");
                drawn
            };
            let a = sequence(42);
            let b = sequence(42);
            assert_eq!(a, b, "same seed replays the same fault pattern");
            assert!(a.iter().any(|t| *t) && a.iter().any(|t| !*t));
        }

        #[test]
        fn malformed_specs_are_rejected() {
            for bad in [
                "explode",
                "sleep(abc)",
                "200%return",
                "x*return",
                "return@",
                "sleep(",
            ] {
                assert!(cfg("t8-bad", bad).is_err(), "{bad:?} should not parse");
            }
            assert!(!fire("t8-bad"));
        }
    }
}

#[cfg(failpoints)]
pub use enabled::{cfg, clear, fire, remove, set_seed};

#[cfg(all(test, not(failpoints)))]
mod noop_tests {
    #[test]
    fn default_build_compiles_failpoints_out() {
        // The failpoints-off purity gate: sites cost a constant-false branch that
        // the optimiser folds away, and configuration is accepted but inert.
        assert_eq!(crate::ENABLED, cfg!(failpoints));
        crate::set_seed(7);
        crate::cfg("anything", "return").unwrap();
        assert!(!crate::fire("anything"), "no-op build never triggers");
        crate::remove("anything");
        crate::clear();
    }
}
