//! A small, real JSON implementation: a [`JsonValue`] tree, a strict recursive-descent
//! parser and a serializer (compact and pretty).
//!
//! The workspace has no registry access, so this module plays the role `serde_json`
//! would: the serving wire protocol (`vitality-serve`) and the bench emitters
//! (`BENCH_*.json`) all build and parse documents through this one implementation
//! instead of hand-rolling `String` pushes per call site.
//!
//! Scope and guarantees:
//!
//! * Full JSON value model (`null`, booleans, numbers as `f64`, strings, arrays,
//!   objects). Object members keep insertion order, so emitted documents are stable.
//! * Parsing is strict UTF-8 JSON with escape handling (`\n`, `\t`, `\uXXXX` including
//!   surrogate pairs), a nesting-depth limit and byte-offset error reporting.
//! * Serialization escapes control characters and round-trips every finite number
//!   (`f64` uses Rust's shortest-round-trip formatting). Non-finite numbers serialize
//!   as `null`, which is what `serde_json` does by default.

use std::fmt;

/// Maximum nesting depth the parser accepts before reporting an error (guards the
/// recursive-descent parser against stack exhaustion on adversarial input).
pub const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s default arithmetic type).
    Number(f64),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order for stable output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Creates an empty object.
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Inserts (or replaces) an object member and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object — mixing member insertion into non-objects
    /// is always a construction bug, not a data-dependent condition.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(members) => {
                let value = value.into();
                if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    members.push((key.to_string(), value));
                }
            }
            other => panic!("JsonValue::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, when it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing newline, the
    /// format the `BENCH_*.json` artifacts use.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                write_seq(
                    out,
                    indent,
                    level,
                    '[',
                    ']',
                    items.len(),
                    |out, i, level| {
                        items[i].write(out, indent, level);
                    },
                );
            }
            JsonValue::Object(members) => {
                write_seq(
                    out,
                    indent,
                    level,
                    '{',
                    '}',
                    members.len(),
                    |out, i, level| {
                        write_string(out, &members[i].0);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        members[i].1.write(out, indent, level);
                    },
                );
            }
        }
    }
}

/// Writes a bracketed, comma-separated sequence, handling both compact and pretty modes.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's `{}` for f64 is the shortest string that round-trips, which is both
        // valid JSON and lossless for every finite value (f32 widened to f64 included).
        out.push_str(&format!("{n}"));
    } else {
        // serde_json's default behaviour for NaN / infinity.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<f32> for JsonValue {
    fn from(v: f32) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

/// A parse failure: what went wrong and the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing content (other than whitespace) is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so boundaries exist).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is already consumed), combining
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a lone 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut root = JsonValue::object();
        root.set("name", "vitality-serve")
            .set("ok", true)
            .set("count", 3usize)
            .set("ratio", 0.125f64)
            .set("nothing", JsonValue::Null)
            .set("logits", vec![1.0f32, -2.5, 0.0]);
        let compact = root.to_json();
        assert_eq!(parse(&compact).unwrap(), root);
        let pretty = root.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), root);
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn numbers_round_trip_losslessly() {
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -17.0,
            0.1,
            1e-9,
            3.5e20,
            f64::MAX,
            f64::MIN,
        ] {
            let s = JsonValue::Number(v).to_json();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} serialised as {s}");
        }
        // f32 logits widen exactly and survive the trip.
        let x = -0.123_456_79_f32;
        let s = JsonValue::from(x).to_json();
        assert_eq!(parse(&s).unwrap().as_f64().unwrap() as f32, x);
        // Non-finite numbers degrade to null, never to invalid JSON.
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn integers_serialize_without_a_fraction() {
        assert_eq!(JsonValue::from(42usize).to_json(), "42");
        assert_eq!(JsonValue::from(-3i64).to_json(), "-3");
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let ugly = "a\"b\\c\nd\te\u{0007}é→𝄞";
        let s = JsonValue::from(ugly).to_json();
        assert_eq!(parse(&s).unwrap().as_str(), Some(ugly));
        assert_eq!(
            parse(r#""\u0041\u00e9\ud834\udd1e""#).unwrap().as_str(),
            Some("Aé𝄞")
        );
    }

    #[test]
    fn object_access_and_replacement() {
        let mut o = JsonValue::object();
        o.set("a", 1usize).set("b", "x").set("a", 2usize);
        assert_eq!(o.get("a").and_then(JsonValue::as_usize), Some(2));
        assert_eq!(o.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(o.get("missing"), None);
        assert_eq!(o.as_object().unwrap().len(), 2);
        assert_eq!(o.get("b").and_then(JsonValue::as_bool), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"abc",
            "\"\\q\"",
            "[1] x",
            "nulll",
            "\"\\ud800\"",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Offsets point at the failure site.
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(16).to_string() + &"]".repeat(16);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = parse(" \r\n\t{ \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("b").and_then(JsonValue::as_object).map(<[_]>::len),
            Some(0)
        );
    }
}
