//! Offline facade for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace *annotates* config/report types with `#[derive(Serialize,
//! Deserialize)]`; this facade re-exports no-op derive macros plus empty marker traits
//! so the annotated types compile unchanged, and the day a registry becomes reachable
//! the real `serde` can be swapped in without touching them.
//!
//! What *is* real here is [`json`]: a full `JsonValue` document model with a strict
//! parser and serializer, standing in for `serde_json`. The serving wire protocol
//! (`vitality-serve`) and the bench emitters (`BENCH_*.json`) all go through it, so the
//! workspace has exactly one JSON implementation.

#![deny(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this offline stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this offline stub).
pub trait Deserialize<'de> {}
