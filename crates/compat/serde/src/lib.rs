//! Offline facade for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only *annotates* config/report types with `#[derive(Serialize,
//! Deserialize)]` — nothing is serialised yet (no `serde_json` in the tree), so this
//! facade re-exports no-op derive macros plus empty marker traits. The annotated types
//! compile unchanged, and the day a registry becomes reachable the real `serde` can be
//! swapped in without touching them.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this offline stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this offline stub).
pub trait Deserialize<'de> {}
