//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace has no crates-registry access, and its `serde` derives are purely
//! declarative today (nothing is actually serialised — there is no `serde_json`). These
//! stubs let the annotated types compile unchanged; swap in the real `serde` +
//! `serde_derive` once a registry is reachable and the derives become load-bearing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
