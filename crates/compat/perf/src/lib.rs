//! Offline shim over raw `perf_event_open(2)`: hardware counter groups behind an
//! RAII region scope, with graceful degradation to "unsupported" wherever the
//! kernel, the PMU, or `perf_event_paranoid` says no.
//!
//! Mirrors the `crates/compat/mio` discipline: the syscall surface is declared
//! directly against the C library the Rust std already links (no `libc` crate),
//! every `unsafe` call carries a SAFETY comment, and non-Linux hosts get a stub
//! `sys` module so the public API compiles — and behaves as "counters absent" —
//! everywhere.
//!
//! # Model
//!
//! Each thread lazily opens one counter **group** on first use: a leader
//! (CPU cycles) plus optional siblings (instructions, cache-references,
//! cache-misses, branch-misses, and the software task-clock). The group is
//! enabled once and left running for the life of the thread; a [`PerfRegion`]
//! never toggles it — it snapshots the counters at construction and again at
//! drop (one `read(2)` each, into a stack buffer), and accumulates the delta
//! into the [`PerfStats`] it was given. That makes regions cheap (~two
//! syscalls), nestable (an outer batch region can wrap inner kernel regions;
//! both see correct deltas because the counters never stop), and allocation-free
//! at steady state.
//!
//! Counters are opened per-thread (`pid = 0`, `cpu = -1`) and count user-space
//! only (`exclude_kernel`, `exclude_hv`). `inherit` is incompatible with group
//! reads, so **counts cover the calling thread only** — callers that fan work
//! out to other threads must place regions on the threads doing the work.
//!
//! Siblings that fail to open (missing PMU event, counter pressure) are
//! individually skipped and reported as absent via the [`Delta`] mask; if the
//! *leader* cannot open (no PMU, restrictive `perf_event_paranoid`, non-Linux
//! host) the whole thread is unsupported and every region becomes a no-op.
//! Callers must treat every counter as optional: absent is reported as `None`,
//! never as zero.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Number of events a group tries to open, in fixed slot order.
pub const N_EVENTS: usize = 6;

/// Fixed slot order of the events in a group. Slot 0 (cycles) is the leader.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Event {
    /// Hardware CPU cycles (group leader).
    Cycles = 0,
    /// Hardware retired instructions.
    Instructions = 1,
    /// Hardware cache references (LLC accesses on most PMUs).
    CacheReferences = 2,
    /// Hardware cache misses (LLC misses on most PMUs).
    CacheMisses = 3,
    /// Hardware mispredicted branches.
    BranchMisses = 4,
    /// Software task clock, in nanoseconds (always available when the leader is).
    TaskClockNs = 5,
}

/// Stable metric-name spelling for each slot, in [`Event`] order.
pub const EVENT_NAMES: [&str; N_EVENTS] = [
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "branch_misses",
    "task_clock_ns",
];

/// Counter deltas for one region (or one [`measure`] call). `mask` bit `i` set
/// means slot `i` was actually counted; a clear bit means that counter was
/// absent (not zero) and `values[i]` is meaningless.
#[derive(Clone, Copy, Default, Debug)]
pub struct Delta {
    pub values: [u64; N_EVENTS],
    pub mask: u8,
}

impl Delta {
    /// The counted value for `event`, or `None` if that counter was absent.
    pub fn get(&self, event: Event) -> Option<u64> {
        let i = event as usize;
        if self.mask & (1 << i) != 0 {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Instructions per cycle, if both counters were present and cycles is nonzero.
    pub fn ipc(&self) -> Option<f64> {
        let cycles = self.get(Event::Cycles)?;
        let instructions = self.get(Event::Instructions)?;
        if cycles == 0 {
            return None;
        }
        Some(instructions as f64 / cycles as f64)
    }

    /// Last-level-cache miss rate (`cache_misses / cache_references`), if both
    /// counters were present and references is nonzero.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        let refs = self.get(Event::CacheReferences)?;
        let misses = self.get(Event::CacheMisses)?;
        if refs == 0 {
            return None;
        }
        Some(misses as f64 / refs as f64)
    }
}

/// Shared accumulator for region deltas: plain atomic adds, safe to share
/// across threads, allocation-free. `mask` is the union of the per-region
/// masks, so a counter that never opened anywhere stays reported as absent.
#[derive(Debug)]
pub struct PerfStats {
    regions: AtomicU64,
    mask: AtomicU8,
    values: [AtomicU64; N_EVENTS],
}

impl Default for PerfStats {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfStats {
    pub const fn new() -> Self {
        Self {
            regions: AtomicU64::new(0),
            mask: AtomicU8::new(0),
            values: [const { AtomicU64::new(0) }; N_EVENTS],
        }
    }

    /// Fold one region's delta in. Called from [`PerfRegion`]'s drop.
    pub fn add(&self, delta: &Delta) {
        if delta.mask == 0 {
            return;
        }
        self.regions.fetch_add(1, Ordering::Relaxed);
        self.mask.fetch_or(delta.mask, Ordering::Relaxed);
        for i in 0..N_EVENTS {
            if delta.mask & (1 << i) != 0 {
                self.values[i].fetch_add(delta.values[i], Ordering::Relaxed);
            }
        }
    }

    /// Number of regions that contributed at least one counted event.
    pub fn regions(&self) -> u64 {
        self.regions.load(Ordering::Relaxed)
    }

    /// Accumulated total for `event`, or `None` if it was never counted.
    pub fn get(&self, event: Event) -> Option<u64> {
        let i = event as usize;
        if self.mask.load(Ordering::Relaxed) & (1 << i) != 0 {
            Some(self.values[i].load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Whether any region ever contributed counted events.
    pub fn supported(&self) -> bool {
        self.mask.load(Ordering::Relaxed) != 0
    }

    /// A point-in-time copy of the totals as a [`Delta`].
    pub fn totals(&self) -> Delta {
        let mask = self.mask.load(Ordering::Relaxed);
        let mut values = [0u64; N_EVENTS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].load(Ordering::Relaxed);
        }
        Delta { values, mask }
    }

    /// Instructions per cycle over everything accumulated so far.
    pub fn ipc(&self) -> Option<f64> {
        self.totals().ipc()
    }

    /// LLC miss rate over everything accumulated so far.
    pub fn llc_miss_rate(&self) -> Option<f64> {
        self.totals().llc_miss_rate()
    }
}

/// Global runtime gate. When disabled, [`PerfRegion::enter`] and [`measure`]
/// are no-ops that perform zero syscalls — the knob the serve bench uses to
/// compare perf-on vs perf-off overhead on identical binaries.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all regions process-wide. Default: enabled.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether regions are currently enabled (see [`set_enabled`]).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the *calling thread* can count: forces the lazy group open and
/// reports the result. `false` on non-Linux hosts, unsupported architectures,
/// restrictive `perf_event_paranoid`, or a missing PMU.
pub fn supported() -> bool {
    imp::with_group(|_| ()).is_some()
}

/// Raw counter snapshot plus the group's scheduling clock, used to scale
/// deltas when the kernel multiplexed the group off the PMU part-time.
#[derive(Clone, Copy)]
struct Snapshot {
    values: [u64; N_EVENTS],
    mask: u8,
    time_enabled: u64,
    time_running: u64,
}

/// RAII counter scope: snapshots the thread's counter group at construction
/// and at drop, and accumulates the (scaled) delta into `stats`. A no-op —
/// zero syscalls, zero allocations — when counters are unavailable on this
/// thread or regions are globally disabled.
pub struct PerfRegion<'a> {
    stats: &'a PerfStats,
    start: Option<Snapshot>,
}

impl<'a> PerfRegion<'a> {
    pub fn enter(stats: &'a PerfStats) -> Self {
        let start = if enabled() {
            imp::with_group(|g| g.read()).flatten()
        } else {
            None
        };
        Self { stats, start }
    }
}

impl Drop for PerfRegion<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let Some(Some(end)) = imp::with_group(|g| g.read()) else {
            return;
        };
        self.stats.add(&scaled_delta(&start, &end));
    }
}

/// Run `f` under a fresh region and return its counter delta alongside the
/// result. `None` when counters are unavailable or disabled.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Option<Delta>) {
    let stats = PerfStats::new();
    let region = PerfRegion::enter(&stats);
    let armed = region.start.is_some();
    let result = f();
    drop(region);
    let totals = stats.totals();
    if armed && totals.mask != 0 {
        (result, Some(totals))
    } else {
        (result, None)
    }
}

/// Subtract two snapshots, scaling hardware counts by `time_enabled /
/// time_running` when the kernel multiplexed the group (more events than PMU
/// counters). The software task-clock is never multiplexed and stays raw. A
/// region during which the group never ran yields an empty delta (mask 0),
/// reported as absent rather than zero.
fn scaled_delta(start: &Snapshot, end: &Snapshot) -> Delta {
    let mask = start.mask & end.mask;
    let te = end.time_enabled.saturating_sub(start.time_enabled);
    let tr = end.time_running.saturating_sub(start.time_running);
    if mask == 0 || (te > 0 && tr == 0) {
        return Delta::default();
    }
    let scale = if tr > 0 && tr < te {
        te as f64 / tr as f64
    } else {
        1.0
    };
    let mut values = [0u64; N_EVENTS];
    for (i, value) in values.iter_mut().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let raw = end.values[i].saturating_sub(start.values[i]);
        *value = if i == Event::TaskClockNs as usize {
            raw
        } else {
            (raw as f64 * scale) as u64
        };
    }
    Delta { values, mask }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::{Snapshot, N_EVENTS};
    use std::os::raw::{c_int, c_long, c_uint, c_ulong, c_void};

    // Declared against the C library std already links; no libc crate.
    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_SOFTWARE: u32 = 1;

    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_CACHE_REFERENCES: u64 = 2;
    const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;
    const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
    const PERF_COUNT_SW_TASK_CLOCK: u64 = 1;

    /// `(type, config)` per slot, in [`super::Event`] order; slot 0 is the leader.
    const EVENT_IDS: [(u32, u64); N_EVENTS] = [
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
        (PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK),
    ];

    /// `PERF_ATTR_SIZE_VER5`: the 112-byte attr layout, the newest version this
    /// shim needs (it predates every kernel this repo targets).
    const PERF_ATTR_SIZE_VER5: u32 = 112;

    // Flag bits in `perf_event_attr.flags` (a u64 bitfield in the C header).
    const ATTR_DISABLED: u64 = 1 << 0;
    const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
    const ATTR_EXCLUDE_HV: u64 = 1 << 6;

    const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const PERF_FORMAT_GROUP: u64 = 1 << 3;

    const PERF_FLAG_FD_CLOEXEC: c_ulong = 1 << 3;

    const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    const PERF_IOC_FLAG_GROUP: c_ulong = 1;

    /// `struct perf_event_attr` at `PERF_ATTR_SIZE_VER5` (112 bytes). Every
    /// field this shim doesn't set stays zeroed, which is the documented
    /// "default behaviour" encoding for the whole attr surface.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
        config2: u64,
        branch_sample_type: u64,
        sample_regs_user: u64,
        sample_stack_user: u32,
        clockid: i32,
        sample_regs_intr: u64,
        aux_watermark: u32,
        sample_max_stack: u16,
        reserved_2: u16,
    }

    const _: () = assert!(std::mem::size_of::<PerfEventAttr>() == PERF_ATTR_SIZE_VER5 as usize);

    fn attr_for(slot: usize, leader: bool) -> PerfEventAttr {
        let (type_, config) = EVENT_IDS[slot];
        PerfEventAttr {
            type_,
            size: PERF_ATTR_SIZE_VER5,
            config,
            sample_period: 0,
            sample_type: 0,
            // Only the leader's read_format matters for group reads, but keeping
            // them identical is harmless and matches perf(1)'s own behaviour.
            read_format: PERF_FORMAT_GROUP
                | PERF_FORMAT_TOTAL_TIME_ENABLED
                | PERF_FORMAT_TOTAL_TIME_RUNNING,
            // The leader opens disabled so siblings can join before anything
            // counts; siblings inherit the leader's enable state.
            flags: if leader { ATTR_DISABLED } else { 0 } | ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
            config2: 0,
            branch_sample_type: 0,
            sample_regs_user: 0,
            sample_stack_user: 0,
            clockid: 0,
            sample_regs_intr: 0,
            aux_watermark: 0,
            sample_max_stack: 0,
            reserved_2: 0,
        }
    }

    fn perf_event_open(attr: &PerfEventAttr, group_fd: c_int) -> c_int {
        // SAFETY: `attr` points at a fully-initialised 112-byte struct whose
        // `size` field matches its layout; pid=0/cpu=-1 asks for a counter on
        // the calling thread, which needs no privileges beyond what
        // perf_event_paranoid grants (failure is reported via the return
        // value, which the caller checks).
        unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                attr as *const PerfEventAttr,
                0 as c_int,
                -1 as c_int,
                group_fd,
                PERF_FLAG_FD_CLOEXEC,
            ) as c_int
        }
    }

    /// One thread's counter group: the leader fd plus any sibling fds that
    /// opened, with `order` mapping read-buffer slots back to event indices.
    /// Fixed-size arrays throughout — opening and reading never allocate.
    pub(super) struct ThreadGroup {
        leader: c_int,
        fds: [c_int; N_EVENTS],
        order: [usize; N_EVENTS],
        n: usize,
        mask: u8,
    }

    impl ThreadGroup {
        fn open() -> Option<Self> {
            let leader = perf_event_open(&attr_for(0, true), -1);
            if leader < 0 {
                // No PMU, restrictive perf_event_paranoid, or a kernel without
                // perf support: the whole thread degrades to "unsupported".
                return None;
            }
            let mut fds = [-1 as c_int; N_EVENTS];
            let mut order = [0usize; N_EVENTS];
            fds[0] = leader;
            order[0] = 0;
            let mut n = 1;
            let mut mask: u8 = 1;
            for (slot, fd_slot) in fds.iter_mut().enumerate().skip(1) {
                let fd = perf_event_open(&attr_for(slot, false), leader);
                if fd < 0 {
                    // Individually-failing siblings are skipped, not fatal:
                    // the event may not exist on this PMU or the group may be
                    // out of counters. The mask records the absence.
                    continue;
                }
                *fd_slot = fd;
                order[n] = slot;
                n += 1;
                mask |= 1 << slot;
            }
            // SAFETY: `leader` is a live perf fd owned by this group;
            // ENABLE with the GROUP flag atomically starts the leader and
            // every sibling. Failure (unexpected) leaves the group counting
            // nothing, which `read` surfaces as zero deltas.
            let rc = unsafe { ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) };
            if rc < 0 {
                // Close everything and report unsupported rather than serving
                // a group that will never count.
                for &fd in fds.iter() {
                    if fd >= 0 {
                        // SAFETY: fd was returned by perf_event_open above and
                        // has not been closed yet.
                        unsafe { close(fd) };
                    }
                }
                return None;
            }
            Some(Self {
                leader,
                fds,
                order,
                n,
                mask,
            })
        }

        /// One `read(2)` of the whole group into a stack buffer. Layout with
        /// `PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING`:
        /// `{ nr, time_enabled, time_running, value[nr] }`, values in the
        /// order the events were opened.
        pub(super) fn read(&self) -> Option<Snapshot> {
            let mut buf = [0u64; 3 + N_EVENTS];
            let want = (3 + self.n) * 8;
            // SAFETY: `buf` is a writable stack buffer of at least `want`
            // bytes, and `leader` is a live perf fd; a group read either
            // fills exactly the advertised layout or fails with -1.
            let got = unsafe { read(self.leader, buf.as_mut_ptr() as *mut c_void, want) };
            if got != want as isize || buf[0] != self.n as u64 {
                return None;
            }
            let mut values = [0u64; N_EVENTS];
            for (i, &slot) in self.order[..self.n].iter().enumerate() {
                values[slot] = buf[3 + i];
            }
            Some(Snapshot {
                values,
                mask: self.mask,
                time_enabled: buf[1],
                time_running: buf[2],
            })
        }
    }

    impl Drop for ThreadGroup {
        fn drop(&mut self) {
            for &fd in self.fds.iter() {
                if fd >= 0 {
                    // SAFETY: each non-negative fd is a live perf fd owned
                    // exclusively by this group.
                    unsafe { close(fd) };
                }
            }
        }
    }

    std::thread_local! {
        // One lazily-opened group per thread; `OnceCell` so a failed open is
        // remembered (no reprobe storm) and fds close on thread exit.
        static GROUP: std::cell::OnceCell<Option<ThreadGroup>> =
            const { std::cell::OnceCell::new() };
    }

    pub(super) fn with_group<R>(f: impl FnOnce(&ThreadGroup) -> R) -> Option<R> {
        GROUP
            .try_with(|cell| cell.get_or_init(ThreadGroup::open).as_ref().map(f))
            .ok()
            .flatten()
    }

    // Referenced so the stub and real modules expose the same surface.
    #[allow(dead_code)]
    fn unsupported_marker() -> c_uint {
        0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::Snapshot;

    /// Stub group for hosts without `perf_event_open(2)`: never constructed.
    pub(super) struct ThreadGroup(());

    impl ThreadGroup {
        pub(super) fn read(&self) -> Option<Snapshot> {
            None
        }
    }

    /// Counters are structurally unavailable here; every region is a no-op.
    pub(super) fn with_group<R>(_f: impl FnOnce(&ThreadGroup) -> R) -> Option<R> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Busy work with an instruction count proportional to `iters`.
    fn spin(iters: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            std::hint::black_box(acc);
        }
        acc
    }

    /// Satellite gate: the instructions counter is monotone across a known
    /// loop — 16× the work must retire more instructions. Skipped (but the
    /// region path still exercised) where counters are unsupported.
    #[test]
    fn instructions_monotone_across_known_loop() {
        if !supported() {
            // The unsupported path must stay fully functional: regions are
            // inert and report absence, not zero.
            let stats = PerfStats::new();
            {
                let _r = PerfRegion::enter(&stats);
                std::hint::black_box(spin(1000));
            }
            assert_eq!(stats.regions(), 0);
            assert!(!stats.supported());
            assert!(stats.get(Event::Instructions).is_none());
            return;
        }
        let mut counted = Vec::new();
        for &iters in &[100_000u64, 1_600_000] {
            let (_, delta) = measure(|| spin(iters));
            let delta = delta.expect("supported() implies measure() yields a delta");
            counted.push(
                delta
                    .get(Event::Instructions)
                    .expect("instructions sibling"),
            );
        }
        assert!(
            counted[1] > counted[0],
            "16x the loop work must retire more instructions: {counted:?}"
        );
        // And the small loop alone retires at least one instruction per iteration.
        assert!(counted[0] >= 100_000, "implausibly low count: {counted:?}");
    }

    /// Disabling regions makes them zero-syscall no-ops that report absence.
    #[test]
    fn disabled_regions_are_inert() {
        set_enabled(false);
        let stats = PerfStats::new();
        {
            let _r = PerfRegion::enter(&stats);
            std::hint::black_box(spin(10_000));
        }
        assert_eq!(stats.regions(), 0);
        assert!(stats.ipc().is_none());
        let (_, delta) = measure(|| spin(1_000));
        assert!(delta.is_none());
        set_enabled(true);
    }

    /// Nested regions both observe their own deltas (counters never stop).
    #[test]
    fn nested_regions_accumulate_independently() {
        if !supported() {
            return;
        }
        let outer = PerfStats::new();
        let inner = PerfStats::new();
        {
            let _o = PerfRegion::enter(&outer);
            std::hint::black_box(spin(50_000));
            {
                let _i = PerfRegion::enter(&inner);
                std::hint::black_box(spin(50_000));
            }
            std::hint::black_box(spin(50_000));
        }
        let oi = outer.get(Event::Instructions).unwrap();
        let ii = inner.get(Event::Instructions).unwrap();
        assert!(oi > ii, "outer region ({oi}) must contain the inner ({ii})");
        assert!(ii > 0);
    }

    #[test]
    fn delta_ratios_report_absence() {
        let empty = Delta::default();
        assert!(empty.ipc().is_none());
        assert!(empty.llc_miss_rate().is_none());
        let mut d = Delta {
            mask: (1 << Event::Cycles as usize) | (1 << Event::Instructions as usize),
            ..Delta::default()
        };
        d.values[Event::Cycles as usize] = 1000;
        d.values[Event::Instructions as usize] = 2500;
        assert_eq!(d.ipc(), Some(2.5));
        assert!(d.llc_miss_rate().is_none(), "cache counters absent");
    }
}
