//! Offline drop-in subset of the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no crates-registry access, so the workspace vendors the
//! small slice of rayon's data-parallel API its hot paths use: `par_chunks_mut`,
//! `par_iter` / `into_par_iter` with `map` / `for_each` / `collect`, plus [`join`].
//!
//! Work is executed on `std::thread::scope` threads, one per available core, pulling
//! items from a shared queue. When only one core is available (or the job has a single
//! item) everything runs inline on the caller's thread, so the shim adds no overhead in
//! the degenerate case. This is a plain chunk-queue scheduler, not a work-stealing pool —
//! adequate for the coarse-grained panel/head/image parallelism this workspace needs.

#![deny(missing_docs)]

use std::sync::Mutex;

/// Everything a caller needs to use the parallel iterator subset.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

std::thread_local! {
    /// `true` while the current thread is already executing inside a parallel region.
    /// Nested regions then run inline instead of spawning another thread generation —
    /// without this guard, batch-level × head-level × GEMM-panel parallelism would
    /// multiply into O(cores³) concurrent OS threads (real rayon amortises nesting
    /// through its shared work-stealing pool; this shim simply keeps the outermost
    /// level parallel, which is where the coarse-grained win is).
    static IN_PARALLEL_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Number of worker threads to use for a job of `len` independent items.
fn workers_for(len: usize) -> usize {
    if len <= 1 || IN_PARALLEL_REGION.with(|flag| flag.get()) {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
}

/// Runs every item of `items` through `f`, distributing items over scoped worker
/// threads. Falls back to an inline sequential loop when one worker suffices or when
/// the caller is itself a worker of an enclosing parallel region.
fn drive<W, I, F>(items: I, f: F)
where
    W: Send,
    I: Iterator<Item = W> + Send,
    F: Fn(W) + Sync,
{
    let (lo, hi) = items.size_hint();
    let workers = workers_for(hi.unwrap_or(lo.max(2)));
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                loop {
                    let next = queue.lock().expect("queue poisoned").next();
                    match next {
                        Some(item) => f(item),
                        None => break,
                    }
                }
            });
        }
    });
}

/// Runs an indexed map over `len` items and returns the results in index order.
fn drive_map<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers_for(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let out = Mutex::new(Vec::with_capacity(len));
    drive(0..len, |i| {
        let r = f(i);
        out.lock().expect("results poisoned").push((i, r));
    });
    let mut pairs = out.into_inner().expect("results poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if workers_for(2) <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            IN_PARALLEL_REGION.with(|flag| flag.set(true));
            b()
        });
        (a(), hb.join().expect("joined task panicked"))
    })
}

// ---------------------------------------------------------------------------
// &mut [T] → par_chunks_mut
// ---------------------------------------------------------------------------

/// Parallel mutable-chunk extension for slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `size` elements that can be processed in
    /// parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumParChunksMut<'a, T> {
        EnumParChunksMut(self)
    }

    /// Processes every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        drive(self.slice.chunks_mut(self.size), f);
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumParChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumParChunksMut<'_, T> {
    /// Processes every `(index, chunk)` pair in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        drive(self.0.slice.chunks_mut(self.0.size).enumerate(), |pair| {
            f(pair)
        });
    }
}

// ---------------------------------------------------------------------------
// &[T] → par_iter / par_chunks
// ---------------------------------------------------------------------------

/// Parallel shared-reference extension for slices.
pub trait ParallelSlice<T: Sync> {
    /// Iterates the elements in parallel by shared reference.
    fn par_iter(&self) -> ParSliceIter<'_, T>;

    /// Splits the slice into read-only chunks of at most `size` elements.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// Parallel iterator over `&T` items of a slice.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Maps every element in parallel; results keep slice order.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        drive(self.slice.iter(), f);
    }
}

/// Mapped parallel slice iterator (see [`ParSliceIter::map`]).
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParSliceMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Collects the mapped results in slice order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(drive_map(self.slice.len(), |i| (self.f)(&self.slice[i])))
    }
}

/// Parallel iterator over read-only chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Maps every chunk in parallel; results keep chunk order.
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            slice: self.slice,
            size: self.size,
            f,
        }
    }
}

/// Mapped parallel chunk iterator (see [`ParChunks::map`]).
pub struct ParChunksMap<'a, T, F> {
    slice: &'a [T],
    size: usize,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Collects the mapped results in chunk order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let chunks: Vec<&[T]> = self.slice.chunks(self.size).collect();
        C::from(drive_map(chunks.len(), |i| (self.f)(chunks[i])))
    }
}

// ---------------------------------------------------------------------------
// Range<usize> → into_par_iter
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Maps every index in parallel; results keep index order.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        drive(self.range, f);
    }
}

/// Mapped parallel range iterator (see [`ParRange::map`]).
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<R, F> ParRangeMap<F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    /// Collects the mapped results in index order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let start = self.range.start;
        let len = self.range.len();
        C::from(drive_map(len, |i| (self.f)(start + i)))
    }
}

#[cfg(test)]
mod tests {
    use super::join;
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        assert!(data.iter().all(|&v| v >= 1));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..64).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 64);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn slice_par_iter_maps_in_order() {
        let input: Vec<i64> = (0..37).collect();
        let doubled: Vec<i64> = input.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, (0..37).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_parallel_regions_stay_correct_and_run_inline() {
        // Outer parallelism over 8 items, each item running an inner parallel map: the
        // nesting guard must keep results correct (inner regions run inline on the
        // worker thread instead of spawning another thread generation).
        let totals: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|outer| {
                let inner: Vec<usize> = (0..100).into_par_iter().map(|i| i * outer).collect();
                inner.iter().sum()
            })
            .collect();
        for (outer, &total) in totals.iter().enumerate() {
            assert_eq!(total, outer * (99 * 100) / 2);
        }
    }
}
