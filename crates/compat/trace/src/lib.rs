//! Request tracing and structured logging for the serving stack, in the same
//! offline-shim discipline as the sibling `failpoint` crate: `std`-only (JSON comes
//! from the workspace's `serde` shim), no registry dependencies, and an inert
//! default configuration.
//!
//! # Tracing model
//!
//! A *trace* is one request's journey through the stack, identified by a
//! `request_id` that is generated at the first hop (gateway or engine) and carried
//! on the wire like `deadline_ms`. A trace is a flat list of [`Span`]s — named
//! `[start_us, start_us + dur_us]` windows relative to the trace origin, with
//! optional parent indices so a gateway can graft the engine-side spans it receives
//! in a reply under its own `backend_attempt` span.
//!
//! Sampling has two stages, decided by one [`Tracer`] per server:
//!
//! * **Head sampling** — `VITALITY_TRACE_SAMPLE` (or
//!   [`TraceConfig::sample`]) sets the probability that a request's finished trace
//!   is retained regardless of outcome. At the default rate `0.0` the tracer is
//!   *off*: [`Tracer::begin`] returns `None`, every span point downstream is a
//!   branch on an `Option` that is never `Some`, and nothing allocates — the
//!   serving hot path stays on its zero-steady-state-allocation diet (covered by
//!   the workspace's `alloc_regression` test).
//! * **Tail sampling** — with any non-zero rate, *every* request records spans,
//!   and [`Tracer::finish`] additionally retains traces that ended in a 5xx/504
//!   status or were [flagged](ActiveTrace::flag) by a failover/retry, whatever the
//!   head-sampling draw said. The retained traces live in a bounded ring buffer
//!   served by `GET /debug/traces`.
//!
//! # Worked example: adding a span to a new pipeline stage
//!
//! Say the engine grows a pre-processing stage (image normalisation) that should
//! show up in span trees. The handler already owns a [`TraceHandle`] for the
//! request; wrap the stage in two `Instant`s and record between them:
//!
//! ```ignore
//! let start = Instant::now();
//! normalise(&mut image);
//! if let Some(t) = &trace {
//!     t.record("normalise", String::new(), start, Instant::now());
//! }
//! ```
//!
//! That is the whole integration: when tracing is off `trace` is `None` and the
//! stage costs one never-taken branch; when it is on, the span appears in
//! `/debug/traces`, in the reply's embedded span list (so an upstream gateway
//! grafts it into its own tree), and in the chrome://tracing export the bench bins
//! write. Give the span a `detail` string (the attention-variant label, a backend
//! address) when one label per name is not enough — detail is what the stage
//! histograms and trace viewers group by.
//!
//! # Logging
//!
//! [`warn!`], [`info!`] and [`debug!`] write leveled, structured lines to stderr:
//! elapsed time, level, thread name, module path and — when the handler installed a
//! [`request_scope`] — the request id, so one grep correlates a client-reported id
//! with every log line its request produced. `VITALITY_LOG` picks the maximum
//! level (`off`, `warn` (default), `info`, `debug`); disabled levels cost one
//! atomic load and never format their arguments.

#![deny(missing_docs)]

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::json::JsonValue;

/// Hard cap on spans accepted from a remote (reply-embedded) span list, so a
/// misbehaving backend cannot balloon a gateway trace.
const MAX_REMOTE_SPANS: usize = 512;

/// Hard cap on spans recorded into one trace; later records are dropped silently
/// (a runaway retry loop must not turn a trace into an unbounded allocation).
const MAX_TRACE_SPANS: usize = 4096;

// ---------------------------------------------------------------------------
// Request ids
// ---------------------------------------------------------------------------

/// Generates a fresh 16-hex-character request id.
///
/// Mixes wall-clock nanoseconds, the process id and a process-wide counter
/// through an xorshift64* finaliser — unique enough to correlate logs and traces
/// across a cluster without coordination, and cheap enough for the per-request
/// path (one atomic increment, no locks).
pub fn new_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let salt = COUNTER
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut x = nanos ^ salt ^ ((std::process::id() as u64) << 32);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    format!("{:016x}", x.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

// ---------------------------------------------------------------------------
// Spans and traces
// ---------------------------------------------------------------------------

/// One named timing window inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"queue_wait"`, `"backend_attempt"`, ...). Borrowed for the
    /// statically named local stages, owned for spans grafted from a reply.
    pub name: Cow<'static, str>,
    /// Free-form qualifier: the attention-variant label, a backend address, an
    /// error summary. Empty when the name says it all.
    pub detail: String,
    /// Start offset in microseconds since the trace origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Index of the parent span inside the same trace (`None` for a root span).
    pub parent: Option<u32>,
}

/// A finished, retained trace as stored in the tracer's ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// The propagated request id.
    pub id: String,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Total origin → finish duration in microseconds (finish runs after the
    /// response bytes are written, so this is the server-side end-to-end time).
    pub total_us: u64,
    /// When the trace was retained — `GET /debug/traces` reports each trace's
    /// age from this, so a dashboard can tell a fresh incident from stale
    /// ring-buffer residue.
    pub finished: Instant,
    /// The recorded spans, in recording order (parent indices point into this).
    pub spans: Vec<Span>,
}

/// One in-flight request's span recorder.
///
/// Lock-light by construction: the only lock is a per-request mutex around the
/// span vector, shared between the connection handler and (briefly) the worker
/// thread that runs the request's batch — never contended across requests.
#[derive(Debug)]
pub struct ActiveTrace {
    id: String,
    origin: Instant,
    head_sampled: bool,
    flagged: AtomicBool,
    spans: Mutex<Vec<Span>>,
}

/// What span points carry through the stack: `None` when tracing is off for this
/// request (the near-no-op mode), `Some` when spans are being recorded.
pub type TraceHandle = Option<Arc<ActiveTrace>>;

impl ActiveTrace {
    /// The request id this trace belongs to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The instant all span offsets are relative to.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Whether the head-sampling draw already retains this trace.
    pub fn head_sampled(&self) -> bool {
        self.head_sampled
    }

    /// Marks the trace as tail-sample-worthy regardless of final status — called
    /// when a backend attempt fails, so a request that *recovered* through
    /// failover still leaves its evidence in `/debug/traces`.
    pub fn flag(&self) {
        self.flagged.store(true, Ordering::Relaxed);
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_micros() as u64
    }

    /// Records a root span covering `[start, end]`. Returns the span's index for
    /// use as a parent of later spans.
    pub fn record(
        &self,
        name: impl Into<Cow<'static, str>>,
        detail: String,
        start: Instant,
        end: Instant,
    ) -> u32 {
        self.push(name.into(), detail, start, end, None)
    }

    /// Records a span as a child of the span at `parent`.
    pub fn record_child(
        &self,
        parent: u32,
        name: impl Into<Cow<'static, str>>,
        detail: String,
        start: Instant,
        end: Instant,
    ) -> u32 {
        self.push(name.into(), detail, start, end, Some(parent))
    }

    fn push(
        &self,
        name: Cow<'static, str>,
        detail: String,
        start: Instant,
        end: Instant,
        parent: Option<u32>,
    ) -> u32 {
        let start_us = self.offset_us(start);
        let dur_us = self.offset_us(end).saturating_sub(start_us);
        let mut spans = self.spans.lock().expect("trace span lock poisoned");
        if spans.len() >= MAX_TRACE_SPANS {
            return (spans.len() - 1) as u32;
        }
        spans.push(Span {
            name,
            detail,
            start_us,
            dur_us,
            parent,
        });
        (spans.len() - 1) as u32
    }

    /// Grafts a remote span list (an engine's reply-embedded spans) under the
    /// local span at `parent`, rebasing offsets so the remote origin aligns with
    /// `base` — the instant the local side started the remote call. Remote parent
    /// indices are remapped; out-of-range ones fall back to `parent`.
    pub fn graft(&self, parent: u32, base: Instant, remote: &[Span]) {
        let base_us = self.offset_us(base);
        let mut spans = self.spans.lock().expect("trace span lock poisoned");
        let offset = spans.len() as u32;
        for span in remote.iter().take(MAX_REMOTE_SPANS) {
            if spans.len() >= MAX_TRACE_SPANS {
                break;
            }
            let mapped = match span.parent {
                Some(p) if (p as usize) < remote.len() => Some(offset + p),
                _ => Some(parent),
            };
            spans.push(Span {
                name: span.name.clone(),
                detail: span.detail.clone(),
                start_us: base_us + span.start_us,
                dur_us: span.dur_us,
                parent: mapped,
            });
        }
    }

    /// A copy of the spans recorded so far (what an engine embeds in its reply).
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().expect("trace span lock poisoned").clone()
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Tracer tunables. `Default` reads the environment: sampling rate from
/// `VITALITY_TRACE_SAMPLE` (default `0` = tracing off), ring capacity 64.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Head-sampling probability in `[0.0, 1.0]`; `None` reads
    /// `VITALITY_TRACE_SAMPLE` at [`Tracer::new`] time. `0.0` disables recording
    /// entirely (the zero-allocation mode); any non-zero rate records every
    /// request and retains head-sampled + tail-flagged ones.
    pub sample: Option<f64>,
    /// Completed traces retained for `GET /debug/traces` (oldest evicted first).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sample: None,
            ring_capacity: 64,
        }
    }
}

/// Default newest-N cap on the `GET /debug/traces` body ([`Tracer::recent_json`]);
/// callers override per request via [`Tracer::recent_json_limited`]. Smaller than
/// the default ring so a debug scrape stays cheap even with a large retention ring.
pub const DEFAULT_JSON_TRACES: usize = 32;

/// One server's sampling policy plus the ring buffer of retained traces.
#[derive(Debug)]
pub struct Tracer {
    /// Head-sampling threshold in parts-per-million; 0 = recording off.
    threshold_ppm: u32,
    ring_capacity: usize,
    ring: Mutex<VecDeque<CompletedTrace>>,
    rng: AtomicU64,
}

impl Tracer {
    /// Builds a tracer from `config` (see [`TraceConfig::sample`] for the
    /// environment fallback).
    pub fn new(config: &TraceConfig) -> Self {
        let rate = config.sample.unwrap_or_else(env_sample_rate);
        let threshold_ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0).round() as u32;
        Self {
            threshold_ppm,
            ring_capacity: config.ring_capacity,
            ring: Mutex::new(VecDeque::new()),
            rng: AtomicU64::new(0x5EED_1E55_C0FF_EE00),
        }
    }

    /// Whether any recording happens at all (a non-zero sampling rate).
    pub fn enabled(&self) -> bool {
        self.threshold_ppm > 0
    }

    /// Opens a trace for one request. Returns `None` — the no-op mode — unless
    /// recording is enabled or `forced` is set (an upstream hop asked for the
    /// spans back via the request's `"trace"` flag). `origin` anchors all span
    /// offsets; pass the instant the handler first saw the request so
    /// pre-parse work is attributable.
    pub fn begin(&self, id: &str, origin: Instant, forced: bool) -> TraceHandle {
        if self.threshold_ppm == 0 && !forced {
            return None;
        }
        let head_sampled = self.threshold_ppm > 0
            && (self.threshold_ppm >= 1_000_000 || self.draw_ppm() < self.threshold_ppm);
        Some(Arc::new(ActiveTrace {
            id: id.to_string(),
            origin,
            head_sampled,
            flagged: AtomicBool::new(false),
            spans: Mutex::new(Vec::new()),
        }))
    }

    /// Closes a trace with the request's final HTTP status, retaining it in the
    /// ring when head-sampled, ended ≥ 500, or [flagged](ActiveTrace::flag).
    /// Call after the response bytes are written so `total_us` covers the
    /// serialize/write stages too. A `None` handle is a free no-op.
    pub fn finish(&self, handle: TraceHandle, status: u16) {
        let Some(active) = handle else { return };
        let keep = active.head_sampled || status >= 500 || active.flagged.load(Ordering::Relaxed);
        if !keep || self.ring_capacity == 0 {
            return;
        }
        let completed = CompletedTrace {
            id: active.id.clone(),
            status,
            total_us: active.origin.elapsed().as_micros() as u64,
            finished: Instant::now(),
            spans: active.snapshot(),
        };
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        while ring.len() >= self.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(completed);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<CompletedTrace> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The `GET /debug/traces` body: retained traces as nested span trees,
    /// capped to the default newest-[`DEFAULT_JSON_TRACES`] window.
    pub fn recent_json(&self) -> JsonValue {
        self.recent_json_limited(DEFAULT_JSON_TRACES)
    }

    /// [`Tracer::recent_json`] with an explicit cap: only the *newest* `limit`
    /// retained traces are returned (newest last, matching ring order), each
    /// annotated with its age in seconds since retention. `retained` reports
    /// how many traces the ring actually holds so a capped response is visibly
    /// capped.
    pub fn recent_json_limited(&self, limit: usize) -> JsonValue {
        let recent = self.recent();
        let skip = recent.len().saturating_sub(limit);
        let traces: Vec<JsonValue> = recent[skip..]
            .iter()
            .map(|trace| {
                let mut tree = trace_tree_json(trace);
                tree.set("age_s", trace.finished.elapsed().as_secs_f64());
                tree
            })
            .collect();
        let mut body = JsonValue::object();
        body.set("enabled", self.enabled())
            .set("retained", recent.len() as u64)
            .set("returned", traces.len() as u64)
            .set("traces", traces);
        body
    }

    /// Weyl-sequence + xorshift draw in `[0, 1_000_000)` — no locks, no
    /// allocation, deterministic per tracer.
    fn draw_ppm(&self) -> u32 {
        let mut x = self.rng.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1_000_000) as u32
    }
}

fn env_sample_rate() -> f64 {
    match std::env::var("VITALITY_TRACE_SAMPLE") {
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(rate) if (0.0..=1.0).contains(&rate) => rate,
            _ => {
                crate::warn!(
                    "ignoring VITALITY_TRACE_SAMPLE={raw:?}: expected a rate in [0.0, 1.0]"
                );
                0.0
            }
        },
        Err(_) => 0.0,
    }
}

// ---------------------------------------------------------------------------
// JSON codecs
// ---------------------------------------------------------------------------

/// Serialises spans as the flat array embedded in a reply's `"trace"` block:
/// `[{"name", "detail", "start_us", "dur_us", "parent"?}, ...]`.
pub fn spans_json(spans: &[Span]) -> JsonValue {
    let items: Vec<JsonValue> = spans
        .iter()
        .map(|span| {
            let mut item = JsonValue::object();
            item.set("name", span.name.as_ref())
                .set("detail", span.detail.as_str())
                .set("start_us", span.start_us)
                .set("dur_us", span.dur_us);
            if let Some(parent) = span.parent {
                item.set("parent", parent);
            }
            item
        })
        .collect();
    JsonValue::from(items)
}

/// Parses a reply-embedded span array back into spans (the gateway half of
/// [`spans_json`]). Returns `None` when the value is not a span array; entries
/// missing required fields are skipped, and at most [`MAX_REMOTE_SPANS`] entries
/// are read.
pub fn spans_from_json(value: &JsonValue) -> Option<Vec<Span>> {
    let items = value.as_array()?;
    let mut spans = Vec::with_capacity(items.len().min(MAX_REMOTE_SPANS));
    for item in items.iter().take(MAX_REMOTE_SPANS) {
        let (Some(name), Some(start_us), Some(dur_us)) = (
            item.get("name").and_then(JsonValue::as_str),
            item.get("start_us").and_then(JsonValue::as_usize),
            item.get("dur_us").and_then(JsonValue::as_usize),
        ) else {
            continue;
        };
        spans.push(Span {
            name: Cow::Owned(name.to_string()),
            detail: item
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            start_us: start_us as u64,
            dur_us: dur_us as u64,
            parent: item
                .get("parent")
                .and_then(JsonValue::as_usize)
                .map(|p| p as u32),
        });
    }
    Some(spans)
}

/// One retained trace as a nested span tree:
/// `{"id", "status", "total_us", "spans": [{.., "children": [..]}]}`.
pub fn trace_tree_json(trace: &CompletedTrace) -> JsonValue {
    fn node(trace: &CompletedTrace, index: usize) -> JsonValue {
        let span = &trace.spans[index];
        let children: Vec<JsonValue> = trace
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(index as u32))
            .map(|(i, _)| node(trace, i))
            .collect();
        let mut item = JsonValue::object();
        item.set("name", span.name.as_ref())
            .set("detail", span.detail.as_str())
            .set("start_us", span.start_us)
            .set("dur_us", span.dur_us)
            .set("children", children);
        item
    }
    let roots: Vec<JsonValue> = trace
        .spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent.is_none())
        .map(|(i, _)| node(trace, i))
        .collect();
    let mut body = JsonValue::object();
    body.set("id", trace.id.as_str())
        .set("status", trace.status as u64)
        .set("total_us", trace.total_us)
        .set("spans", roots);
    body
}

/// Converts retained traces to the `chrome://tracing` / Perfetto JSON object
/// format (one complete-event per span; one `tid` row per trace), written by the
/// bench bins next to their `BENCH_*.json` results.
pub fn chrome_trace_json(traces: &[CompletedTrace]) -> JsonValue {
    let mut events = Vec::new();
    for (tid, trace) in traces.iter().enumerate() {
        let mut request = JsonValue::object();
        request
            .set("request_id", trace.id.as_str())
            .set("status", trace.status as u64);
        let mut top = JsonValue::object();
        top.set("name", format!("request {}", trace.id))
            .set("cat", "request")
            .set("ph", "X")
            .set("ts", 0u64)
            .set("dur", trace.total_us)
            .set("pid", 1u64)
            .set("tid", tid as u64)
            .set("args", request);
        events.push(top);
        for span in &trace.spans {
            let mut args = JsonValue::object();
            args.set("detail", span.detail.as_str())
                .set("request_id", trace.id.as_str());
            let mut event = JsonValue::object();
            event
                .set("name", span.name.as_ref())
                .set("cat", "span")
                .set("ph", "X")
                .set("ts", span.start_us)
                .set("dur", span.dur_us)
                .set("pid", 1u64)
                .set("tid", tid as u64)
                .set("args", args);
            events.push(event);
        }
    }
    let mut body = JsonValue::object();
    body.set("traceEvents", events).set("displayTimeUnit", "ms");
    body
}

// ---------------------------------------------------------------------------
// Structured leveled logging
// ---------------------------------------------------------------------------

/// Log severity, most severe first. `VITALITY_LOG` picks the maximum level that
/// is emitted (`off`, `warn`, `info`, `debug`); the default is `warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something is wrong but being handled (fallbacks, ejections, panics
    /// absorbed). Emitted by default.
    Warn = 1,
    /// Notable state transitions (re-admissions, brownout entry/exit).
    Info = 2,
    /// Per-event diagnostics (individual probe failures).
    Debug = 3,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// Parses a `VITALITY_LOG` value into a maximum-level number (`0` = off). Accepts
/// the level names case-insensitively plus `error` (alias of `warn`, the most
/// severe level this logger has) and `trace` (alias of `debug`).
pub fn parse_level(raw: &str) -> Option<u8> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(0),
        "warn" | "warning" | "error" => Some(1),
        "info" => Some(2),
        "debug" | "trace" => Some(3),
        _ => None,
    }
}

fn max_level() -> u8 {
    static MAX: OnceLock<u8> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("VITALITY_LOG")
            .ok()
            .and_then(|raw| parse_level(&raw))
            .unwrap_or(1)
    })
}

/// Whether `level` is currently emitted — the macros check this first, so a
/// disabled level never formats its arguments.
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= max_level()
}

/// Writes one structured log line (use the [`warn!`]/[`info!`]/[`debug!`] macros
/// rather than calling this directly): elapsed seconds since first log, level,
/// thread name, `target` (the macros pass `module_path!`), the current
/// [`request_scope`] id when one is installed, then the message.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    static START: OnceLock<Instant> = OnceLock::new();
    let elapsed = START.get_or_init(Instant::now).elapsed();
    let thread = std::thread::current();
    let req = current_request_id().map_or(String::new(), |id| format!(" req={id}"));
    eprintln!(
        "[{:10.3}s {:5} {} {}{}] {}",
        elapsed.as_secs_f64(),
        level.label(),
        thread.name().unwrap_or("<unnamed>"),
        target,
        req,
        args
    );
}

thread_local! {
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previous thread-local request-id context on drop.
#[derive(Debug)]
pub struct RequestIdScope {
    prev: Option<String>,
}

/// Installs `id` as this thread's request-id logging context until the returned
/// guard drops (scopes nest; the previous id is restored).
pub fn request_scope(id: &str) -> RequestIdScope {
    let prev = REQUEST_ID.with(|slot| slot.borrow_mut().replace(id.to_string()));
    RequestIdScope { prev }
}

impl Drop for RequestIdScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        REQUEST_ID.with(|slot| *slot.borrow_mut() = prev);
    }
}

/// The request id installed on this thread by [`request_scope`], if any.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|slot| slot.borrow().clone())
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tracer(sample: f64, ring: usize) -> Tracer {
        Tracer::new(&TraceConfig {
            sample: Some(sample),
            ring_capacity: ring,
        })
    }

    #[test]
    fn rate_zero_returns_no_handle_and_finish_is_a_no_op() {
        let t = tracer(0.0, 8);
        assert!(!t.enabled());
        let handle = t.begin("deadbeef00000000", Instant::now(), false);
        assert!(handle.is_none(), "sampling off must be the no-op mode");
        t.finish(handle, 200);
        t.finish(None, 500);
        assert!(t.recent().is_empty());
    }

    #[test]
    fn forced_traces_record_even_at_rate_zero_but_are_only_tail_retained() {
        let t = tracer(0.0, 8);
        let origin = Instant::now();
        let handle = t.begin("0000000000000001", origin, true);
        let active = handle.as_ref().expect("forced begin records");
        assert!(!active.head_sampled());
        active.record("parse", String::new(), origin, Instant::now());
        assert_eq!(active.snapshot().len(), 1);
        // A forced-but-successful trace is for the caller (reply embedding), not
        // the ring.
        t.finish(handle, 200);
        assert!(t.recent().is_empty());
        // The same forced trace ending 500 is tail-sampled.
        let handle = t.begin("0000000000000002", Instant::now(), true);
        t.finish(handle, 500);
        assert_eq!(t.recent().len(), 1);
        assert_eq!(t.recent()[0].status, 500);
    }

    #[test]
    fn full_sampling_retains_successes_and_the_ring_is_bounded() {
        let t = tracer(1.0, 3);
        for i in 0..5 {
            let handle = t.begin(&format!("{i:016x}"), Instant::now(), false);
            assert!(handle.as_ref().is_some_and(|h| h.head_sampled()));
            t.finish(handle, 200);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 3, "oldest traces evicted at capacity");
        assert_eq!(recent[0].id, format!("{:016x}", 2));
        assert_eq!(recent[2].id, format!("{:016x}", 4));
    }

    #[test]
    fn flagged_traces_survive_a_success_status() {
        let t = tracer(0.000001, 8);
        // Practically never head-sampled; the flag (a failover happened) retains.
        let mut kept = 0;
        for _ in 0..20 {
            let handle = t.begin("00000000000000aa", Instant::now(), false);
            let active = handle.as_ref().expect("non-zero rate records all");
            active.flag();
            t.finish(handle, 200);
            kept += 1;
        }
        assert_eq!(t.recent().len(), kept.min(8));
    }

    #[test]
    fn sampling_rate_is_respected_statistically() {
        let t = tracer(0.25, 4096);
        let mut sampled = 0;
        for _ in 0..4000 {
            if t.begin("x", Instant::now(), false)
                .is_some_and(|h| h.head_sampled())
            {
                sampled += 1;
            }
        }
        assert!(
            (600..=1400).contains(&sampled),
            "~25% of 4000 draws expected, got {sampled}"
        );
    }

    #[test]
    fn spans_nest_and_survive_the_json_round_trip() {
        let t = tracer(1.0, 4);
        let origin = Instant::now();
        let handle = t.begin("00000000000000ff", origin, false);
        let active = handle.as_ref().unwrap();
        let parent = active.record(
            "backend_attempt",
            "127.0.0.1:1".into(),
            origin,
            origin + Duration::from_micros(900),
        );
        active.record_child(
            parent,
            "compute",
            "taylor".into(),
            origin + Duration::from_micros(100),
            origin + Duration::from_micros(700),
        );
        let flat = spans_json(&active.snapshot());
        let parsed = serde::json::parse(&flat.to_json()).unwrap();
        let back = spans_from_json(&parsed).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "backend_attempt");
        assert_eq!(back[1].parent, Some(0));
        assert_eq!(back[1].dur_us, 600);

        t.finish(handle, 200);
        let tree = trace_tree_json(&t.recent()[0]);
        let roots = tree.get("spans").and_then(JsonValue::as_array).unwrap();
        assert_eq!(roots.len(), 1);
        let children = roots[0]
            .get("children")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(
            children[0].get("name").and_then(JsonValue::as_str),
            Some("compute")
        );
    }

    #[test]
    fn grafting_rebases_offsets_and_remaps_parents() {
        let t = tracer(1.0, 4);
        let origin = Instant::now();
        let handle = t.begin("0000000000000abc", origin, false);
        let active = handle.as_ref().unwrap();
        let attempt_start = origin + Duration::from_micros(1000);
        let attempt = active.record(
            "backend_attempt",
            String::new(),
            attempt_start,
            attempt_start + Duration::from_micros(500),
        );
        let remote = vec![
            Span {
                name: Cow::Borrowed("parse"),
                detail: String::new(),
                start_us: 10,
                dur_us: 20,
                parent: None,
            },
            Span {
                name: Cow::Borrowed("compute"),
                detail: "taylor".into(),
                start_us: 40,
                dur_us: 100,
                parent: Some(0),
            },
        ];
        active.graft(attempt, attempt_start, &remote);
        let spans = active.snapshot();
        assert_eq!(spans.len(), 3);
        // Remote roots hang off the attempt span; nested remote parents remap.
        assert_eq!(spans[1].parent, Some(attempt));
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[1].start_us, 1010);
        assert_eq!(spans[2].start_us, 1040);
    }

    #[test]
    fn chrome_export_emits_one_complete_event_per_span() {
        let trace = CompletedTrace {
            id: "00000000000000aa".into(),
            status: 200,
            total_us: 1500,
            finished: Instant::now(),
            spans: vec![Span {
                name: Cow::Borrowed("compute"),
                detail: "taylor".into(),
                start_us: 100,
                dur_us: 900,
                parent: None,
            }],
        };
        let body = chrome_trace_json(&[trace]);
        let events = body
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        // One request-level event plus one per span.
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(
            events[1].get("dur").and_then(JsonValue::as_usize),
            Some(900)
        );
    }

    #[test]
    fn request_ids_are_sixteen_hex_chars_and_distinct() {
        let a = new_request_id();
        let b = new_request_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn level_filter_parses_all_spellings() {
        assert_eq!(parse_level("off"), Some(0));
        assert_eq!(parse_level("WARN"), Some(1));
        assert_eq!(parse_level("error"), Some(1));
        assert_eq!(parse_level(" info "), Some(2));
        assert_eq!(parse_level("debug"), Some(3));
        assert_eq!(parse_level("trace"), Some(3));
        assert_eq!(parse_level("verbose"), None);
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request_id(), None);
        {
            let _outer = request_scope("aaaa");
            assert_eq!(current_request_id().as_deref(), Some("aaaa"));
            {
                let _inner = request_scope("bbbb");
                assert_eq!(current_request_id().as_deref(), Some("bbbb"));
            }
            assert_eq!(current_request_id().as_deref(), Some("aaaa"));
        }
        assert_eq!(current_request_id(), None);
    }
}
