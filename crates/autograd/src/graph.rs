//! The differentiation tape: [`Graph`], [`Var`] and reverse-mode backpropagation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use vitality_tensor::Matrix;

/// Stable identifier of a tape node, used to look gradients up after a backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

impl VarId {
    /// Raw index of the node on the tape.
    pub fn index(&self) -> usize {
        self.0
    }
}

type BackwardFn = Box<dyn Fn(&Matrix) -> Vec<Matrix>>;

struct Node {
    value: Matrix,
    /// `true` for trainable parameters: their gradients are collected into [`Gradients`].
    is_parameter: bool,
    /// `true` when a gradient must flow through this node (parameter or ancestor of one).
    needs_grad: bool,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
}

/// A dynamically-built computation tape.
///
/// Cloning a `Graph` is cheap (it is a reference-counted handle); all clones share the
/// same tape. The tape only grows — call [`Graph::clear`] between training steps to drop
/// the recorded operations while keeping the handle alive.
#[derive(Clone, Default)]
pub struct Graph {
    nodes: Rc<RefCell<Vec<Node>>>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.borrow().len())
    }
}

/// A handle to one value on the tape.
///
/// All operator methods allocate a new node holding the eagerly-computed result together
/// with the closure that maps the output gradient back onto the operand gradients.
#[derive(Clone)]
pub struct Var {
    graph: Graph,
    idx: usize,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape = self.shape();
        write!(f, "Var(#{}, {}x{})", self.idx, shape.0, shape.1)
    }
}

/// Gradients of a scalar output with respect to every parameter node, keyed by [`VarId`].
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    map: HashMap<VarId, Matrix>,
}

impl Gradients {
    /// Gradient of the requested variable, if it is a parameter reached by the backward pass.
    pub fn get(&self, var: &Var) -> Option<&Matrix> {
        self.map.get(&var.id())
    }

    /// Gradient looked up directly by id.
    pub fn get_by_id(&self, id: VarId) -> Option<&Matrix> {
        self.map.get(&id)
    }

    /// Number of parameters that received a gradient.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterator over `(id, gradient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Matrix)> {
        self.map.iter()
    }

    /// Global L2 norm across every stored gradient, used for gradient clipping.
    pub fn global_norm(&self) -> f32 {
        self.map
            .values()
            .map(|g| g.iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Drops every recorded node. Outstanding [`Var`] handles become invalid and must not
    /// be used afterwards; training loops call this once per step after the optimizer
    /// update.
    pub fn clear(&self) {
        self.nodes.borrow_mut().clear();
    }

    /// Records a constant (non-trainable) value such as an input image or a fixed mask.
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(Node {
            value,
            is_parameter: false,
            needs_grad: false,
            parents: Vec::new(),
            backward: None,
        })
    }

    /// Records a trainable parameter whose gradient will be reported by [`Graph::backward`].
    pub fn parameter(&self, value: Matrix) -> Var {
        self.push(Node {
            value,
            is_parameter: true,
            needs_grad: true,
            parents: Vec::new(),
            backward: None,
        })
    }

    fn push(&self, node: Node) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        Var {
            graph: self.clone(),
            idx: nodes.len() - 1,
        }
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.nodes.borrow()[idx].value.clone()
    }

    fn needs_grad(&self, idx: usize) -> bool {
        self.nodes.borrow()[idx].needs_grad
    }

    /// Runs reverse-mode differentiation from `output` (which must be a `1 x 1` scalar)
    /// and returns the gradients of every parameter that influenced it.
    ///
    /// # Panics
    ///
    /// Panics when `output` is not a `1 x 1` matrix or does not belong to this graph.
    pub fn backward(&self, output: &Var) -> Gradients {
        assert!(
            Rc::ptr_eq(&self.nodes, &output.graph.nodes),
            "output variable belongs to a different graph"
        );
        assert_eq!(
            output.shape(),
            (1, 1),
            "backward expects a scalar (1 x 1) output, got {:?}",
            output.shape()
        );

        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        grads[output.idx] = Some(Matrix::ones(1, 1));

        let mut result = Gradients::default();
        for idx in (0..=output.idx).rev() {
            let Some(grad) = grads[idx].take() else {
                continue;
            };
            let node = &nodes[idx];
            if node.is_parameter {
                result.map.insert(VarId(idx), grad.clone());
            }
            if let Some(backward) = &node.backward {
                let parent_grads = backward(&grad);
                debug_assert_eq!(parent_grads.len(), node.parents.len());
                for (&parent, pgrad) in node.parents.iter().zip(parent_grads) {
                    if !nodes[parent].needs_grad {
                        continue;
                    }
                    debug_assert_eq!(
                        pgrad.shape(),
                        nodes[parent].value.shape(),
                        "gradient shape mismatch flowing into node {parent}"
                    );
                    grads[parent] = Some(match grads[parent].take() {
                        Some(existing) => existing.try_add(&pgrad).expect("gradient accumulation"),
                        None => pgrad,
                    });
                }
            }
        }
        result
    }
}

impl Var {
    /// Identifier of this variable on the tape.
    pub fn id(&self) -> VarId {
        VarId(self.idx)
    }

    /// The graph this variable belongs to.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A clone of the current value.
    pub fn value(&self) -> Matrix {
        self.graph.value_of(self.idx)
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.graph.nodes.borrow()[self.idx].value.shape()
    }

    /// Overwrites the stored value in place (used by optimizers to apply updates to
    /// parameter nodes between steps).
    ///
    /// # Panics
    ///
    /// Panics when the new value has a different shape.
    pub fn assign(&self, value: Matrix) {
        let mut nodes = self.graph.nodes.borrow_mut();
        assert_eq!(
            nodes[self.idx].value.shape(),
            value.shape(),
            "assign must preserve the shape"
        );
        nodes[self.idx].value = value;
    }

    fn unary<F>(&self, value: Matrix, backward: F) -> Var
    where
        F: Fn(&Matrix) -> Vec<Matrix> + 'static,
    {
        let needs = self.graph.needs_grad(self.idx);
        self.graph.push(Node {
            value,
            is_parameter: false,
            needs_grad: needs,
            parents: vec![self.idx],
            backward: if needs {
                Some(Box::new(backward))
            } else {
                None
            },
        })
    }

    fn binary<F>(&self, other: &Var, value: Matrix, backward: F) -> Var
    where
        F: Fn(&Matrix) -> Vec<Matrix> + 'static,
    {
        assert!(
            Rc::ptr_eq(&self.graph.nodes, &other.graph.nodes),
            "operands belong to different graphs"
        );
        let needs = self.graph.needs_grad(self.idx) || self.graph.needs_grad(other.idx);
        self.graph.push(Node {
            value,
            is_parameter: false,
            needs_grad: needs,
            parents: vec![self.idx, other.idx],
            backward: if needs {
                Some(Box::new(backward))
            } else {
                None
            },
        })
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Elementwise addition.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().try_add(&other.value()).expect("add shapes");
        self.binary(other, value, |grad| vec![grad.clone(), grad.clone()])
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().try_sub(&other.value()).expect("sub shapes");
        self.binary(other, value, |grad| vec![grad.clone(), grad.scale(-1.0)])
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.try_hadamard(&b).expect("hadamard shapes");
        self.binary(other, value, move |grad| {
            vec![grad.hadamard(&b), grad.hadamard(&a)]
        })
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, factor: f32) -> Var {
        self.unary(self.value().scale(factor), move |grad| {
            vec![grad.scale(factor)]
        })
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, value: f32) -> Var {
        self.unary(self.value().add_scalar(value), |grad| vec![grad.clone()])
    }

    // ------------------------------------------------------------------
    // Matrix products and transposition
    // ------------------------------------------------------------------

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.try_matmul(&b).expect("matmul shapes");
        self.binary(other, value, move |grad| {
            vec![grad.matmul_transpose_b(&b), a.transpose_matmul(grad)]
        })
    }

    /// Matrix product `self * other.T` (fused; neither operand is materialised transposed).
    pub fn matmul_transpose_b(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.matmul_transpose_b(&b);
        self.binary(other, value, move |grad| {
            // y = a b^T  =>  da = g b, db = g^T a
            vec![grad.matmul(&b), grad.transpose_matmul(&a)]
        })
    }

    /// Matrix product `self.T * other` (the ViTALiTy global-context pattern `K^T V`).
    pub fn transpose_matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.transpose_matmul(&b);
        self.binary(other, value, move |grad| {
            // y = a^T b  =>  da = b g^T, db = a g
            vec![b.matmul_transpose_b(grad), a.matmul(grad)]
        })
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        self.unary(self.value().transpose(), |grad| vec![grad.transpose()])
    }

    // ------------------------------------------------------------------
    // Broadcasts and reductions
    // ------------------------------------------------------------------

    /// Adds a `1 x d` bias row to every row of an `n x d` matrix.
    pub fn add_bias(&self, bias: &Var) -> Var {
        let value = self.value().broadcast_add_row(&bias.value());
        self.binary(bias, value, |grad| vec![grad.clone(), grad.col_sum()])
    }

    /// Subtracts a `1 x d` row vector from every row.
    pub fn broadcast_sub_row(&self, row: &Var) -> Var {
        let value = self.value().broadcast_sub_row(&row.value());
        self.binary(row, value, |grad| {
            vec![grad.clone(), grad.col_sum().scale(-1.0)]
        })
    }

    /// Divides each row by the matching entry of an `n x 1` column vector
    /// (the Taylor-attention normalisation `diag^{-1}(t_D) T_N`).
    pub fn broadcast_div_col(&self, col: &Var) -> Var {
        let x = self.value();
        let c = col.value();
        let value = x.broadcast_div_col(&c);
        self.binary(col, value, move |grad| {
            let dx = grad.broadcast_div_col(&c);
            let mut dc = Matrix::zeros(c.rows(), 1);
            for i in 0..x.rows() {
                let ci = c.get(i, 0);
                let mut acc = 0.0;
                for j in 0..x.cols() {
                    acc += grad.get(i, j) * x.get(i, j);
                }
                dc.set(i, 0, -acc / (ci * ci));
            }
            vec![dx, dc]
        })
    }

    /// Replicates a `1 x d` row vector into `n` identical rows.
    pub fn broadcast_row_to(&self, n: usize) -> Var {
        let v = self.value();
        assert_eq!(v.rows(), 1, "broadcast_row_to expects a 1 x d row vector");
        let value = Matrix::from_fn(n, v.cols(), |_, j| v.get(0, j));
        self.unary(value, |grad| vec![grad.col_sum()])
    }

    /// Column sums as a `1 x d` row vector (`1_n^T X`).
    pub fn col_sum(&self) -> Var {
        let rows = self.shape().0;
        self.unary(self.value().col_sum(), move |grad| {
            vec![Matrix::from_fn(rows, grad.cols(), |_, j| grad.get(0, j))]
        })
    }

    /// Column means as a `1 x d` row vector (`\bar{X}`).
    pub fn col_mean(&self) -> Var {
        let rows = self.shape().0;
        self.unary(self.value().col_mean(), move |grad| {
            vec![Matrix::from_fn(rows, grad.cols(), |_, j| {
                grad.get(0, j) / rows as f32
            })]
        })
    }

    /// Row sums as an `n x 1` column vector.
    pub fn row_sum(&self) -> Var {
        let cols = self.shape().1;
        self.unary(self.value().row_sum(), move |grad| {
            vec![Matrix::from_fn(grad.rows(), cols, |i, _| grad.get(i, 0))]
        })
    }

    /// Mean over all rows, producing a `1 x d` row vector (mean token pooling).
    pub fn mean_over_rows(&self) -> Var {
        self.col_mean()
    }

    /// Sum of every element as a `1 x 1` scalar.
    pub fn sum(&self) -> Var {
        let (rows, cols) = self.shape();
        let value = Matrix::filled(1, 1, self.value().sum());
        self.unary(value, move |grad| {
            vec![Matrix::filled(rows, cols, grad.get(0, 0))]
        })
    }

    /// Mean of every element as a `1 x 1` scalar.
    pub fn mean_all(&self) -> Var {
        let (rows, cols) = self.shape();
        let count = (rows * cols) as f32;
        let value = Matrix::filled(1, 1, self.value().mean());
        self.unary(value, move |grad| {
            vec![Matrix::filled(rows, cols, grad.get(0, 0) / count)]
        })
    }

    // ------------------------------------------------------------------
    // Non-linearities
    // ------------------------------------------------------------------

    /// Numerically-stable softmax over each row.
    pub fn softmax_rows(&self) -> Var {
        let s = self.value().softmax_rows();
        let s_saved = s.clone();
        self.unary(s, move |grad| {
            let mut dx = Matrix::zeros(s_saved.rows(), s_saved.cols());
            for i in 0..s_saved.rows() {
                let dot: f32 = (0..s_saved.cols())
                    .map(|j| grad.get(i, j) * s_saved.get(i, j))
                    .sum();
                for j in 0..s_saved.cols() {
                    dx.set(i, j, s_saved.get(i, j) * (grad.get(i, j) - dot));
                }
            }
            vec![dx]
        })
    }

    /// GELU activation (tanh approximation, as used by ViT MLP blocks).
    pub fn gelu(&self) -> Var {
        let x = self.value();
        let value = x.map(gelu_scalar);
        self.unary(value, move |grad| {
            let mut dx = grad.clone();
            for (g, &xv) in dx.as_mut_slice().iter_mut().zip(x.as_slice().iter()) {
                *g *= gelu_grad_scalar(xv);
            }
            vec![dx]
        })
    }

    /// ReLU activation.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let value = x.map(|v| v.max(0.0));
        self.unary(value, move |grad| {
            let mut dx = grad.clone();
            for (g, &xv) in dx.as_mut_slice().iter_mut().zip(x.as_slice().iter()) {
                if xv <= 0.0 {
                    *g = 0.0;
                }
            }
            vec![dx]
        })
    }

    /// Layer normalisation over the feature (column) dimension of each row, followed by a
    /// per-feature affine transform: `y = gamma ⊙ (x - μ)/σ + beta`.
    ///
    /// `gamma` and `beta` must be `1 x d` row vectors.
    pub fn layer_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        let x = self.value();
        let g = gamma.value();
        let b = beta.value();
        assert_eq!(g.shape(), (1, x.cols()), "gamma must be 1 x d");
        assert_eq!(b.shape(), (1, x.cols()), "beta must be 1 x d");

        let d = x.cols();
        let mut normalised = Matrix::zeros(x.rows(), d);
        let mut inv_std = vec![0.0f32; x.rows()];
        for (i, istd_slot) in inv_std.iter_mut().enumerate() {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            *istd_slot = istd;
            for j in 0..d {
                normalised.set(i, j, (x.get(i, j) - mean) * istd);
            }
        }
        let mut out = normalised.clone();
        for i in 0..out.rows() {
            for j in 0..d {
                out.set(i, j, out.get(i, j) * g.get(0, j) + b.get(0, j));
            }
        }

        assert!(
            Rc::ptr_eq(&self.graph.nodes, &gamma.graph.nodes)
                && Rc::ptr_eq(&self.graph.nodes, &beta.graph.nodes),
            "layer_norm operands belong to different graphs"
        );
        let needs = self.graph.needs_grad(self.idx)
            || self.graph.needs_grad(gamma.idx)
            || self.graph.needs_grad(beta.idx);
        let xhat = normalised;
        let gamma_saved = g;
        self.graph.push(Node {
            value: out,
            is_parameter: false,
            needs_grad: needs,
            parents: vec![self.idx, gamma.idx, beta.idx],
            backward: if needs {
                Some(Box::new(move |grad: &Matrix| {
                    let rows = xhat.rows();
                    let d = xhat.cols();
                    let mut dgamma = Matrix::zeros(1, d);
                    let mut dbeta = Matrix::zeros(1, d);
                    let mut dx = Matrix::zeros(rows, d);
                    for (i, &istd) in inv_std.iter().enumerate().take(rows) {
                        // Per-feature parameter gradients.
                        for j in 0..d {
                            dgamma.set(0, j, dgamma.get(0, j) + grad.get(i, j) * xhat.get(i, j));
                            dbeta.set(0, j, dbeta.get(0, j) + grad.get(i, j));
                        }
                        // Input gradient for this row.
                        let dxhat: Vec<f32> = (0..d)
                            .map(|j| grad.get(i, j) * gamma_saved.get(0, j))
                            .collect();
                        let mean_dxhat = dxhat.iter().sum::<f32>() / d as f32;
                        let mean_dxhat_xhat = dxhat
                            .iter()
                            .enumerate()
                            .map(|(j, v)| v * xhat.get(i, j))
                            .sum::<f32>()
                            / d as f32;
                        for (j, &dxh) in dxhat.iter().enumerate() {
                            let v = istd * (dxh - mean_dxhat - xhat.get(i, j) * mean_dxhat_xhat);
                            dx.set(i, j, v);
                        }
                    }
                    vec![dx, dgamma, dbeta]
                }))
            } else {
                None
            },
        })
    }

    // ------------------------------------------------------------------
    // Masking, slicing and concatenation
    // ------------------------------------------------------------------

    /// Zeroes elements where the (constant) mask is zero; the gradient is masked the same
    /// way. Used for dropout and for the Sanger-style sparse attention mask.
    pub fn apply_mask(&self, mask: &Matrix) -> Var {
        let value = self.value().apply_mask(mask);
        let mask = mask.clone();
        self.unary(value, move |grad| vec![grad.apply_mask(&mask)])
    }

    /// Copies columns `start..end` into a new variable (used to split attention heads).
    pub fn slice_cols(&self, start: usize, end: usize) -> Var {
        let (rows, cols) = self.shape();
        let value = self.value().slice_cols(start, end);
        self.unary(value, move |grad| {
            let mut dx = Matrix::zeros(rows, cols);
            for i in 0..rows {
                for (j, col) in (start..end).enumerate() {
                    dx.set(i, col, grad.get(i, j));
                }
            }
            vec![dx]
        })
    }

    /// Horizontally concatenates several variables (used to merge attention heads).
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or the row counts differ.
    pub fn concat_cols(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let graph = parts[0].graph.clone();
        let rows = parts[0].shape().0;
        let widths: Vec<usize> = parts.iter().map(|p| p.shape().1).collect();
        let mut value = parts[0].value();
        for p in &parts[1..] {
            assert_eq!(p.shape().0, rows, "concat_cols row count mismatch");
            value = value.hstack(&p.value());
        }
        let parents: Vec<usize> = parts.iter().map(|p| p.idx).collect();
        let needs = parents.iter().any(|&p| graph.needs_grad(p));
        let widths_saved = widths;
        graph.push(Node {
            value,
            is_parameter: false,
            needs_grad: needs,
            parents,
            backward: if needs {
                Some(Box::new(move |grad: &Matrix| {
                    let mut out = Vec::with_capacity(widths_saved.len());
                    let mut offset = 0;
                    for &w in &widths_saved {
                        out.push(grad.slice_cols(offset, offset + w));
                        offset += w;
                    }
                    out
                }))
            } else {
                None
            },
        })
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean cross-entropy between row-wise logits and integer class targets.
    ///
    /// # Panics
    ///
    /// Panics when `targets.len()` differs from the number of rows or a target is out of
    /// range.
    pub fn cross_entropy_with_logits(&self, targets: &[usize]) -> Var {
        let logits = self.value();
        assert_eq!(
            targets.len(),
            logits.rows(),
            "one target per row is required"
        );
        let probs = logits.softmax_rows();
        let n = logits.rows() as f32;
        let mut loss = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < logits.cols(), "target class {t} out of range");
            loss -= probs.get(i, t).max(1e-12).ln();
        }
        loss /= n;
        let targets = targets.to_vec();
        self.unary(Matrix::filled(1, 1, loss), move |grad| {
            let scale = grad.get(0, 0) / n;
            let mut dx = probs.clone();
            for (i, &t) in targets.iter().enumerate() {
                dx.set(i, t, dx.get(i, t) - 1.0);
            }
            vec![dx.scale(scale)]
        })
    }

    /// Mean cross-entropy between row-wise logits and *soft* target distributions
    /// (token-based knowledge distillation uses this with teacher probabilities).
    ///
    /// # Panics
    ///
    /// Panics when the shapes of the logits and the soft targets differ.
    pub fn soft_cross_entropy(&self, soft_targets: &Matrix) -> Var {
        let logits = self.value();
        assert_eq!(
            logits.shape(),
            soft_targets.shape(),
            "soft target shape mismatch"
        );
        let probs = logits.softmax_rows();
        let n = logits.rows() as f32;
        let mut loss = 0.0;
        for i in 0..logits.rows() {
            for j in 0..logits.cols() {
                loss -= soft_targets.get(i, j) * probs.get(i, j).max(1e-12).ln();
            }
        }
        loss /= n;
        let targets = soft_targets.clone();
        self.unary(Matrix::filled(1, 1, loss), move |grad| {
            let scale = grad.get(0, 0) / n;
            let dx = probs.try_sub(&targets).expect("soft target shapes");
            vec![dx.scale(scale)]
        })
    }
}

/// GELU with the tanh approximation used by ViT implementations.
fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu_scalar`].
fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
    let tanh = inner.tanh();
    let sech2 = 1.0 - tanh * tanh;
    0.5 * (1.0 + tanh) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[Vec<f32>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn constant_and_parameter_bookkeeping() {
        let g = Graph::new();
        let c = g.constant(Matrix::ones(2, 2));
        let p = g.parameter(Matrix::ones(2, 2));
        assert_eq!(g.len(), 2);
        assert_ne!(c.id(), p.id());
        assert_eq!(c.shape(), (2, 2));
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn matmul_gradients_match_closed_form() {
        let g = Graph::new();
        let a = g.parameter(mat(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = g.parameter(mat(&[vec![0.5, -1.0], vec![2.0, 0.0]]));
        let y = a.matmul(&b).sum();
        let grads = g.backward(&y);
        // d(sum(AB))/dA = 1 * B^T summed over output => each row of dA is col-sums of B^T.
        let da = grads.get(&a).unwrap();
        let db = grads.get(&b).unwrap();
        let ones = Matrix::ones(2, 2);
        assert!(da.approx_eq(&ones.matmul_transpose_b(&b.value()), 1e-5));
        assert!(db.approx_eq(&a.value().transpose_matmul(&ones), 1e-5));
    }

    #[test]
    fn fused_transpose_products_match_composed_ones() {
        let g = Graph::new();
        let a = g.parameter(mat(&[vec![1.0, -2.0, 0.5], vec![0.3, 4.0, -1.0]]));
        let b = g.parameter(mat(&[vec![2.0, 1.0, 0.0], vec![-1.0, 0.5, 3.0]]));
        let fused = a.matmul_transpose_b(&b).sum();
        let grads_fused = g.backward(&fused);
        let composed = a.matmul(&b.transpose()).sum();
        let grads_composed = g.backward(&composed);
        assert!(grads_fused
            .get(&a)
            .unwrap()
            .approx_eq(grads_composed.get(&a).unwrap(), 1e-5));
        assert!(grads_fused
            .get(&b)
            .unwrap()
            .approx_eq(grads_composed.get(&b).unwrap(), 1e-5));
    }

    #[test]
    fn transpose_matmul_gradients_match_composed() {
        let g = Graph::new();
        let a = g.parameter(mat(&[vec![1.0, -2.0], vec![0.3, 4.0], vec![2.0, 1.0]]));
        let b = g.parameter(mat(&[vec![2.0, 1.0], vec![-1.0, 0.5], vec![0.2, 0.8]]));
        let fused = a.transpose_matmul(&b).sum();
        let gf = g.backward(&fused);
        let composed = a.transpose().matmul(&b).sum();
        let gc = g.backward(&composed);
        assert!(gf.get(&a).unwrap().approx_eq(gc.get(&a).unwrap(), 1e-5));
        assert!(gf.get(&b).unwrap().approx_eq(gc.get(&b).unwrap(), 1e-5));
    }

    #[test]
    fn softmax_rows_gradient_sums_to_zero() {
        // Softmax is shift-invariant, so its Jacobian maps constants to zero: the gradient
        // of any loss w.r.t. the logits must sum to ~0 per row.
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![0.2, -1.0, 0.7], vec![3.0, 0.0, -2.0]]));
        let w = g.constant(mat(&[vec![1.0], vec![-2.0], vec![0.5]]));
        let y = x.softmax_rows().matmul(&w).sum();
        let grads = g.backward(&y);
        let dx = grads.get(&x).unwrap();
        for i in 0..dx.rows() {
            let row_sum: f32 = dx.row(i).iter().sum();
            assert!(row_sum.abs() < 1e-5, "row {i} grad sum {row_sum}");
        }
    }

    #[test]
    fn cross_entropy_gradient_is_probability_minus_onehot() {
        let g = Graph::new();
        let logits = g.parameter(mat(&[vec![2.0, 0.5, -1.0]]));
        let loss = logits.cross_entropy_with_logits(&[0]);
        let grads = g.backward(&loss);
        let dx = grads.get(&logits).unwrap();
        let p = logits.value().softmax_rows();
        assert!((dx.get(0, 0) - (p.get(0, 0) - 1.0)).abs() < 1e-5);
        assert!((dx.get(0, 1) - p.get(0, 1)).abs() < 1e-5);
        assert!((dx.get(0, 2) - p.get(0, 2)).abs() < 1e-5);
    }

    #[test]
    fn soft_cross_entropy_matches_hard_targets_when_onehot() {
        let g = Graph::new();
        let logits_value = mat(&[vec![1.0, -0.5, 0.25], vec![0.0, 2.0, -1.0]]);
        let hard = g.parameter(logits_value.clone());
        let soft = g.parameter(logits_value);
        let onehot = mat(&[vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0]]);
        let hard_loss = hard.cross_entropy_with_logits(&[2, 0]);
        let soft_loss = soft.soft_cross_entropy(&onehot);
        assert!((hard_loss.value().get(0, 0) - soft_loss.value().get(0, 0)).abs() < 1e-5);
        let gh = g.backward(&hard_loss);
        let gs = g.backward(&soft_loss);
        assert!(gh
            .get(&hard)
            .unwrap()
            .approx_eq(gs.get(&soft).unwrap(), 1e-5));
    }

    #[test]
    fn broadcast_div_col_gradients_flow_to_both_operands() {
        let g = Graph::new();
        let num = g.parameter(mat(&[vec![2.0, 4.0], vec![6.0, 8.0]]));
        let den = g.parameter(mat(&[vec![2.0], vec![4.0]]));
        let y = num.broadcast_div_col(&den).sum();
        let grads = g.backward(&y);
        let dnum = grads.get(&num).unwrap();
        let dden = grads.get(&den).unwrap();
        assert!(dnum.approx_eq(&mat(&[vec![0.5, 0.5], vec![0.25, 0.25]]), 1e-5));
        // d/dc (sum_j x_ij / c_i) = -sum_j x_ij / c_i^2
        assert!((dden.get(0, 0) - (-(2.0 + 4.0) / 4.0)).abs() < 1e-5);
        assert!((dden.get(1, 0) - (-(6.0 + 8.0) / 16.0)).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_output_is_normalised_and_params_get_grads() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![1.0, 2.0, 3.0, 4.0], vec![-1.0, 0.0, 1.0, 2.0]]));
        let gamma = g.parameter(Matrix::ones(1, 4));
        let beta = g.parameter(Matrix::zeros(1, 4));
        let y = x.layer_norm(&gamma, &beta, 1e-5);
        let v = y.value();
        for i in 0..v.rows() {
            let mean: f32 = v.row(i).iter().sum::<f32>() / 4.0;
            let var: f32 = v
                .row(i)
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
        let loss = y.hadamard(&y).sum();
        let grads = g.backward(&loss);
        assert!(grads.get(&x).is_some());
        assert!(grads.get(&gamma).is_some());
        assert!(grads.get(&beta).is_some());
    }

    #[test]
    fn relu_and_mask_zero_out_gradients() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![-1.0, 2.0, -3.0, 4.0]]));
        let y = x.relu().sum();
        let grads = g.backward(&y);
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&mat(&[vec![0.0, 1.0, 0.0, 1.0]]), 1e-6));

        let mask = mat(&[vec![1.0, 0.0, 1.0, 0.0]]);
        let y2 = x.apply_mask(&mask).sum();
        let grads2 = g.backward(&y2);
        assert!(grads2
            .get(&x)
            .unwrap()
            .approx_eq(&mat(&[vec![1.0, 0.0, 1.0, 0.0]]), 1e-6));
    }

    #[test]
    fn slice_and_concat_round_trip_gradients() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]]));
        let left = x.slice_cols(0, 2);
        let right = x.slice_cols(2, 4);
        let rebuilt = Var::concat_cols(&[left, right]);
        assert!(rebuilt.value().approx_eq(&x.value(), 0.0));
        let loss = rebuilt.scale(2.0).sum();
        let grads = g.backward(&loss);
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&Matrix::filled(2, 4, 2.0), 1e-6));
    }

    #[test]
    fn bias_and_row_broadcasts() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]));
        let b = g.parameter(mat(&[vec![0.5, -0.5]]));
        let y = x.add_bias(&b).sum();
        let grads = g.backward(&y);
        assert!(grads
            .get(&b)
            .unwrap()
            .approx_eq(&Matrix::filled(1, 2, 3.0), 1e-6));

        let centred = x.broadcast_sub_row(&x.col_mean());
        assert!(centred.value().col_mean().iter().all(|v| v.abs() < 1e-5));
        let loss = centred.hadamard(&centred).sum();
        let grads2 = g.backward(&loss);
        assert!(grads2.get(&x).is_some());

        let row = g.parameter(mat(&[vec![1.0, 2.0]]));
        let tiled = row.broadcast_row_to(4).sum();
        let grads3 = g.backward(&tiled);
        assert!(grads3
            .get(&row)
            .unwrap()
            .approx_eq(&Matrix::filled(1, 2, 4.0), 1e-6));
    }

    #[test]
    fn reductions_produce_expected_gradients() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let grads = g.backward(&x.mean_all());
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&Matrix::filled(2, 2, 0.25), 1e-6));
        let grads = g.backward(&x.col_sum().sum());
        assert!(grads.get(&x).unwrap().approx_eq(&Matrix::ones(2, 2), 1e-6));
        let grads = g.backward(&x.row_sum().sum());
        assert!(grads.get(&x).unwrap().approx_eq(&Matrix::ones(2, 2), 1e-6));
        let grads = g.backward(&x.col_mean().sum());
        assert!(grads
            .get(&x)
            .unwrap()
            .approx_eq(&Matrix::filled(2, 2, 0.5), 1e-6));
    }

    #[test]
    fn assign_updates_value_in_place() {
        let g = Graph::new();
        let p = g.parameter(Matrix::zeros(2, 2));
        p.assign(Matrix::ones(2, 2));
        assert_eq!(p.value().sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar_output() {
        let g = Graph::new();
        let x = g.parameter(Matrix::ones(2, 2));
        let _ = g.backward(&x);
    }

    #[test]
    fn gradients_accumulate_over_reused_variables() {
        let g = Graph::new();
        let x = g.parameter(mat(&[vec![2.0]]));
        // y = x*x + 3x  =>  dy/dx = 2x + 3 = 7
        let y = x.hadamard(&x).add(&x.scale(3.0)).sum();
        let grads = g.backward(&y);
        assert!((grads.get(&x).unwrap().get(0, 0) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn constants_do_not_receive_gradients() {
        let g = Graph::new();
        let c = g.constant(Matrix::ones(2, 2));
        let p = g.parameter(Matrix::ones(2, 2));
        let y = c.hadamard(&p).sum();
        let grads = g.backward(&y);
        assert!(grads.get(&c).is_none());
        assert!(grads.get(&p).is_some());
        assert_eq!(grads.len(), 1);
        assert!(!grads.is_empty());
        assert!(grads.global_norm() > 0.0);
    }

    #[test]
    fn gelu_matches_reference_values() {
        // Reference values from the tanh approximation itself at well-known points.
        assert!(gelu_scalar(0.0).abs() < 1e-6);
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.158_808).abs() < 1e-3);
        // Derivative at 0 is 0.5.
        assert!((gelu_grad_scalar(0.0) - 0.5).abs() < 1e-5);
    }
}
