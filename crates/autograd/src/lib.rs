//! Reverse-mode automatic differentiation over [`vitality_tensor::Matrix`] values.
//!
//! The ViTALiTy paper fine-tunes Vision Transformers with a *unified low-rank + sparse*
//! attention (the linear Taylor attention plus a Sanger-style sparse component used as a
//! training-time regulariser). Reproducing those accuracy experiments (Fig. 10, Fig. 13,
//! Fig. 14, Fig. 15 and Table IV) therefore needs a training stack. This crate provides
//! the differentiation engine: a dynamically-built tape ([`Graph`]) of matrix operations
//! with reverse-mode gradient propagation.
//!
//! The operator set is exactly what a ViT with softmax, Taylor, or sparse attention needs:
//! matrix products, broadcasts along rows/columns, row softmax, layer normalisation, GELU,
//! the Taylor-attention normalisation (`broadcast_div_col`), column sums (for the global
//! context matrix `G` and `k_sum`/`v_sum`), masking, cross-entropy and the KL-divergence
//! distillation loss.
//!
//! # Example
//!
//! ```
//! use vitality_autograd::Graph;
//! use vitality_tensor::Matrix;
//!
//! let graph = Graph::new();
//! let x = graph.constant(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap());
//! let w = graph.parameter(Matrix::identity(2));
//! let y = x.matmul(&w).gelu().sum();
//! let grads = graph.backward(&y);
//! assert_eq!(grads.get(&w).unwrap().shape(), (2, 2));
//! ```

#![deny(missing_docs)]

pub mod gradcheck;
pub mod graph;

pub use gradcheck::{check_gradients, numerical_gradient, GradCheckReport};
pub use graph::{Gradients, Graph, Var, VarId};
