//! Numerical gradient checking.
//!
//! Every analytic backward rule in [`crate::graph`] can be validated against a central
//! finite-difference estimate. The training experiments lean on these checks to make sure
//! the Taylor-attention and sparse-attention training graphs differentiate correctly.

use crate::graph::{Graph, Var};
use vitality_tensor::Matrix;

/// Outcome of a gradient check for a single parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numerical gradients.
    pub max_abs_error: f32,
    /// Largest relative difference (normalised by the larger magnitude, floored at 1).
    pub max_rel_error: f32,
    /// Number of elements compared.
    pub count: usize,
}

impl GradCheckReport {
    /// `true` when both error measures are below `tol`.
    pub fn passed(&self, tol: f32) -> bool {
        self.max_abs_error <= tol || self.max_rel_error <= tol
    }
}

/// Estimates `d loss / d parameter` by central finite differences.
///
/// `build` must construct the scalar loss from scratch on the supplied graph each time it
/// is called; the parameter of interest is passed in as the second argument.
pub fn numerical_gradient<F>(initial: &Matrix, epsilon: f32, mut build: F) -> Matrix
where
    F: FnMut(&Graph, &Var) -> Var,
{
    let mut grad = Matrix::zeros(initial.rows(), initial.cols());
    for i in 0..initial.rows() {
        for j in 0..initial.cols() {
            let mut plus = initial.clone();
            plus.set(i, j, plus.get(i, j) + epsilon);
            let mut minus = initial.clone();
            minus.set(i, j, minus.get(i, j) - epsilon);

            let g_plus = Graph::new();
            let p_plus = g_plus.parameter(plus);
            let loss_plus = build(&g_plus, &p_plus).value().get(0, 0);

            let g_minus = Graph::new();
            let p_minus = g_minus.parameter(minus);
            let loss_minus = build(&g_minus, &p_minus).value().get(0, 0);

            grad.set(i, j, (loss_plus - loss_minus) / (2.0 * epsilon));
        }
    }
    grad
}

/// Compares the analytic gradient of `build`'s scalar output against the finite-difference
/// estimate for a parameter initialised to `initial`.
pub fn check_gradients<F>(initial: &Matrix, epsilon: f32, mut build: F) -> GradCheckReport
where
    F: FnMut(&Graph, &Var) -> Var,
{
    let graph = Graph::new();
    let param = graph.parameter(initial.clone());
    let loss = build(&graph, &param);
    let analytic = graph
        .backward(&loss)
        .get(&param)
        .cloned()
        .unwrap_or_else(|| Matrix::zeros(initial.rows(), initial.cols()));
    let numerical = numerical_gradient(initial, epsilon, build);

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (a, n) in analytic.iter().zip(numerical.iter()) {
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_error: max_abs,
        max_rel_error: max_rel,
        count: analytic.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        init::normal(&mut StdRng::seed_from_u64(seed), rows, cols, 0.0, 0.5)
    }

    #[test]
    fn matmul_chain_gradcheck() {
        let w = random(3, 4, 1);
        let x = random(5, 3, 2);
        let report = check_gradients(&w, EPS, |g, p| {
            let xv = g.constant(x.clone());
            xv.matmul(p).sum()
        });
        assert!(report.passed(TOL), "{report:?}");
        assert_eq!(report.count, 12);
    }

    #[test]
    fn softmax_loss_gradcheck() {
        let logits = random(4, 5, 3);
        let weights = random(5, 1, 4);
        let report = check_gradients(&logits, EPS, |g, p| {
            let w = g.constant(weights.clone());
            p.softmax_rows().matmul(&w).sum()
        });
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn gelu_mlp_gradcheck() {
        let w = random(4, 4, 5);
        let x = random(3, 4, 6);
        let report = check_gradients(&w, EPS, |g, p| {
            let xv = g.constant(x.clone());
            xv.matmul(p).gelu().mean_all()
        });
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn layer_norm_gradcheck() {
        let x = random(3, 6, 7);
        let report = check_gradients(&x, EPS, |g, p| {
            let gamma = g.constant(Matrix::filled(1, 6, 1.2));
            let beta = g.constant(Matrix::filled(1, 6, -0.1));
            p.layer_norm(&gamma, &beta, 1e-5)
                .hadamard(&p.layer_norm(&gamma, &beta, 1e-5))
                .sum()
        });
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn taylor_attention_style_graph_gradcheck() {
        // The exact op mix of the ViTALiTy Taylor attention: mean-centre keys, compute the
        // global context matrix G = K^T V, then Q G with a row-wise normaliser.
        let q = random(5, 4, 8);
        let v = random(5, 4, 9);
        let k = random(5, 4, 10);
        let report = check_gradients(&k, EPS, |g, p| {
            let qv = g.constant(q.clone());
            let vv = g.constant(v.clone());
            let centred = p.broadcast_sub_row(&p.col_mean());
            let context = centred.transpose_matmul(&vv);
            let ksum = centred.col_sum();
            let denom = qv.matmul_transpose_b(&ksum).add_scalar(5.0 * 2.0);
            qv.matmul(&context).broadcast_div_col(&denom).mean_all()
        });
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = random(4, 3, 11);
        let report = check_gradients(&logits, EPS, |_, p| {
            p.cross_entropy_with_logits(&[0, 2, 1, 1])
        });
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn soft_cross_entropy_gradcheck() {
        let logits = random(3, 4, 12);
        let teacher = random(3, 4, 13).softmax_rows();
        let report = check_gradients(&logits, EPS, |_, p| p.soft_cross_entropy(&teacher));
        assert!(report.passed(TOL), "{report:?}");
    }

    #[test]
    fn numerical_gradient_of_quadratic_is_linear() {
        let x = Matrix::from_rows(&[vec![1.0, -2.0, 3.0]]).unwrap();
        let grad = numerical_gradient(&x, 1e-3, |_, p| p.hadamard(p).sum());
        assert!(grad.approx_eq(&x.scale(2.0), 1e-2));
    }

    #[test]
    fn report_passed_thresholds() {
        let report = GradCheckReport {
            max_abs_error: 1e-3,
            max_rel_error: 5e-1,
            count: 4,
        };
        assert!(report.passed(1e-2));
        assert!(!GradCheckReport {
            max_abs_error: 1.0,
            max_rel_error: 1.0,
            count: 1
        }
        .passed(1e-2));
    }
}
