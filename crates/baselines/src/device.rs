//! Analytical models of general-purpose platforms (CPU, GPUs, phone SoC).
//!
//! The paper profiles DeiT-Tiny's MHA on an RTX 2080Ti, a Jetson TX2 and a Pixel 3
//! (Fig. 1) and profiles the Taylor-attention steps on the TX2 (Table II). Those
//! measurements are the calibration targets of this module: each device is described by
//! effective throughputs per *operator class* — large dense GEMMs (the Q/K/V/MLP
//! projections), small per-head attention GEMMs, element-wise operations, divisions and
//! exponentials — plus a per-kernel launch overhead. The split reproduces the paper's key
//! observation that general-purpose platforms cannot exploit the Taylor attention's
//! theoretical savings: its light pre/post-processing steps are launch- and
//! bandwidth-bound.

use serde::{Deserialize, Serialize};

use vitality_vit::{AttentionStep, ModelWorkload};

/// Which attention algorithm the device is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// The vanilla quadratic softmax attention.
    VanillaSoftmax,
    /// The ViTALiTy linear Taylor attention (Algorithm 1), run step by step.
    Taylor,
}

/// Latency of one attention step (summed over all layers of the model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// Which step.
    pub step: AttentionStep,
    /// Latency in seconds.
    pub latency_s: f64,
}

/// Latency/energy report of one model on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device name.
    pub device: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Which attention algorithm was simulated.
    pub attention: AttentionKind,
    /// Latency of the Q/K/V projections (Step 1 of Fig. 1), all layers.
    pub projection_latency_s: f64,
    /// Per-step attention latencies (Steps 2–3 for vanilla, Algorithm 1 Steps 1–6 for Taylor).
    pub attention_steps: Vec<StepTiming>,
    /// Latency of the output projection, MLP and convolutional backbone.
    pub other_latency_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl DeviceReport {
    /// Attention-only latency (excluding the projections).
    pub fn attention_latency_s(&self) -> f64 {
        self.attention_steps.iter().map(|s| s.latency_s).sum()
    }

    /// Latency of the whole MHA module (projections + attention), the Fig. 1 quantity.
    pub fn mha_latency_s(&self) -> f64 {
        self.projection_latency_s + self.attention_latency_s()
    }

    /// End-to-end latency.
    pub fn total_latency_s(&self) -> f64 {
        self.mha_latency_s() + self.other_latency_s
    }
}

/// An analytical device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name as used in the paper.
    pub name: &'static str,
    /// Effective throughput of large dense GEMMs (projections, MLP) in FLOP/s.
    pub large_gemm_flops: f64,
    /// Effective throughput of small per-head attention GEMMs in FLOP/s.
    pub small_gemm_flops: f64,
    /// Effective throughput of skinny GEMMs whose output is only `d x d` (the Taylor
    /// attention's `G = K^T V` and `Q G` products), in FLOP/s. These launch as many tiny
    /// kernels and run far below the dense-GEMM rate, which is why the Taylor attention
    /// does not speed up on general-purpose platforms (Table II).
    pub skinny_gemm_flops: f64,
    /// Effective throughput of element-wise additions/subtractions in op/s.
    pub elementwise_ops: f64,
    /// Effective throughput of divisions in op/s.
    pub division_ops: f64,
    /// Effective throughput of exponentials in op/s.
    pub exponential_ops: f64,
    /// Fixed overhead per launched kernel (one kernel per step per layer), in seconds.
    pub kernel_overhead_s: f64,
    /// Average dynamic energy per scalar operation, in joules.
    pub energy_per_op_j: f64,
}

impl DeviceModel {
    /// NVIDIA RTX 2080Ti desktop GPU.
    pub fn rtx_2080ti() -> Self {
        Self {
            name: "RTX-2080Ti",
            skinny_gemm_flops: 150e9,
            large_gemm_flops: 2.0e12,
            small_gemm_flops: 400e9,
            elementwise_ops: 20e9,
            division_ops: 9e9,
            exponential_ops: 8e9,
            kernel_overhead_s: 4e-6,
            energy_per_op_j: 85e-12,
        }
    }

    /// NVIDIA Jetson TX2 edge GPU.
    pub fn jetson_tx2() -> Self {
        Self {
            name: "Jetson-TX2",
            skinny_gemm_flops: 17e9,
            large_gemm_flops: 110e9,
            small_gemm_flops: 50e9,
            elementwise_ops: 0.65e9,
            division_ops: 0.30e9,
            exponential_ops: 0.95e9,
            kernel_overhead_s: 20e-6,
            energy_per_op_j: 75e-12,
        }
    }

    /// Intel Xeon Gold 6230 server CPU.
    pub fn xeon_6230() -> Self {
        Self {
            name: "Xeon-6230",
            skinny_gemm_flops: 8e9,
            large_gemm_flops: 50e9,
            small_gemm_flops: 15e9,
            elementwise_ops: 1.5e9,
            division_ops: 0.8e9,
            exponential_ops: 0.6e9,
            kernel_overhead_s: 1e-6,
            energy_per_op_j: 130e-12,
        }
    }

    /// Google Pixel 3 phone SoC (used only for the Fig. 1 runtime breakdown).
    pub fn pixel3() -> Self {
        Self {
            name: "Pixel3",
            skinny_gemm_flops: 1.5e9,
            large_gemm_flops: 26e9,
            small_gemm_flops: 4.5e9,
            elementwise_ops: 0.12e9,
            division_ops: 0.05e9,
            exponential_ops: 0.095e9,
            kernel_overhead_s: 50e-6,
            energy_per_op_j: 50e-12,
        }
    }

    /// The three devices of Fig. 1.
    pub fn figure1_devices() -> Vec<DeviceModel> {
        vec![Self::rtx_2080ti(), Self::jetson_tx2(), Self::pixel3()]
    }

    /// Latency of one attention step aggregated over all layers of a stage.
    fn step_latency(
        &self,
        step: AttentionStep,
        ops: vitality_attention::OpCounts,
        layers: u64,
    ) -> f64 {
        let gemm_rate = match step {
            AttentionStep::QkvProjection => self.large_gemm_flops,
            AttentionStep::TaylorGlobalContext | AttentionStep::TaylorNumerator => {
                self.skinny_gemm_flops
            }
            _ => self.small_gemm_flops,
        };
        let mul_add = (ops.mul + ops.add) as f64;
        let compute = mul_add / gemm_rate
            + ops.div as f64 / self.division_ops
            + ops.exp as f64 / self.exponential_ops;
        // Pre/post-processing steps have no large GEMM; their additions are bandwidth
        // bound rather than GEMM bound.
        let compute = match step {
            AttentionStep::TaylorMeanCenter
            | AttentionStep::TaylorColumnSums
            | AttentionStep::TaylorDenominator
            | AttentionStep::TaylorScore => {
                (ops.mul + ops.add) as f64 / self.elementwise_ops
                    + ops.div as f64 / self.division_ops
                    + ops.exp as f64 / self.exponential_ops
            }
            _ => compute,
        };
        (compute + self.kernel_overhead_s) * layers as f64
    }

    /// Simulates one model with the chosen attention algorithm.
    pub fn simulate(&self, workload: &ModelWorkload, attention: AttentionKind) -> DeviceReport {
        let mut projection_latency = 0.0;
        let mut other_latency = 0.0;
        let mut step_totals: Vec<(AttentionStep, f64)> = match attention {
            AttentionKind::VanillaSoftmax => AttentionStep::vanilla_steps()
                .into_iter()
                .map(|s| (s, 0.0))
                .collect(),
            AttentionKind::Taylor => AttentionStep::taylor_steps()
                .into_iter()
                .map(|s| (s, 0.0))
                .collect(),
        };
        let mut total_ops = 0.0f64;

        for stage in &workload.stages {
            let layers = stage.stage.layers as u64;
            // Projections (Step 1 of Fig. 1) and the rest of the network.
            let proj_flops = 2.0 * stage.qkv_projection_macs as f64;
            projection_latency +=
                (proj_flops / self.large_gemm_flops + self.kernel_overhead_s) * layers as f64;
            let other_flops = 2.0 * (stage.output_projection_macs + stage.mlp_macs) as f64;
            other_latency += (other_flops / self.large_gemm_flops + 2.0 * self.kernel_overhead_s)
                * layers as f64;
            total_ops += (proj_flops + other_flops) * layers as f64;

            let steps = match attention {
                AttentionKind::VanillaSoftmax => &stage.vanilla_steps,
                AttentionKind::Taylor => &stage.taylor_steps,
            };
            for step_ops in steps {
                let latency = self.step_latency(step_ops.step, step_ops.ops, layers);
                if let Some(entry) = step_totals.iter_mut().find(|(s, _)| *s == step_ops.step) {
                    entry.1 += latency;
                }
                total_ops += step_ops.ops.total() as f64 * layers as f64;
            }
        }
        // Convolutional backbone.
        let backbone_flops = 2.0 * workload.backbone_macs as f64;
        other_latency += backbone_flops / self.large_gemm_flops;
        total_ops += backbone_flops;

        DeviceReport {
            device: self.name,
            model: workload.name,
            attention,
            projection_latency_s: projection_latency,
            attention_steps: step_totals
                .into_iter()
                .map(|(step, latency_s)| StepTiming { step, latency_s })
                .collect(),
            other_latency_s: other_latency,
            energy_j: total_ops * self.energy_per_op_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitality_vit::ModelConfig;

    fn deit_tiny() -> ModelWorkload {
        ModelWorkload::for_model(&ModelConfig::deit_tiny())
    }

    #[test]
    fn softmax_step_dominates_the_mha_runtime_on_every_device() {
        // Fig. 1: the softmax attention map (Step 2) takes 52-58% of the MHA runtime.
        for device in DeviceModel::figure1_devices() {
            let report = device.simulate(&deit_tiny(), AttentionKind::VanillaSoftmax);
            let softmax = report
                .attention_steps
                .iter()
                .find(|s| s.step == AttentionStep::SoftmaxAttentionMap)
                .unwrap()
                .latency_s;
            let share = softmax / report.mha_latency_s();
            assert!(
                (0.40..0.70).contains(&share),
                "{}: softmax share {share:.2}",
                device.name
            );
        }
    }

    #[test]
    fn softmax_share_grows_as_devices_get_weaker() {
        // Fig. 1's trend: 2080Ti 52% -> TX2 55% -> Pixel3 58%.
        let share = |device: DeviceModel| {
            let report = device.simulate(&deit_tiny(), AttentionKind::VanillaSoftmax);
            let softmax = report
                .attention_steps
                .iter()
                .find(|s| s.step == AttentionStep::SoftmaxAttentionMap)
                .unwrap()
                .latency_s;
            softmax / report.mha_latency_s()
        };
        let gpu = share(DeviceModel::rtx_2080ti());
        let edge = share(DeviceModel::jetson_tx2());
        let phone = share(DeviceModel::pixel3());
        assert!(gpu < edge && edge < phone, "{gpu:.2} {edge:.2} {phone:.2}");
    }

    #[test]
    fn taylor_attention_is_not_faster_on_the_edge_gpu() {
        // Table II: despite fewer operations, the Taylor attention's many light steps make
        // it *slower* than the vanilla attention on the TX2 (14.03 ms vs 11.65 ms for
        // DeiT-Tiny) — the motivation for a dedicated accelerator.
        let device = DeviceModel::jetson_tx2();
        let vanilla = device.simulate(&deit_tiny(), AttentionKind::VanillaSoftmax);
        let taylor = device.simulate(&deit_tiny(), AttentionKind::Taylor);
        assert!(
            taylor.attention_latency_s() > 0.7 * vanilla.attention_latency_s(),
            "taylor {:.2} ms vs vanilla {:.2} ms",
            taylor.attention_latency_s() * 1e3,
            vanilla.attention_latency_s() * 1e3
        );
    }

    #[test]
    fn edge_gpu_vanilla_attention_latency_matches_table2_scale() {
        // Table II reports 11.65 ms for DeiT-Tiny's vanilla attention on the TX2.
        let report =
            DeviceModel::jetson_tx2().simulate(&deit_tiny(), AttentionKind::VanillaSoftmax);
        let ms = report.attention_latency_s() * 1e3;
        assert!((6.0..20.0).contains(&ms), "attention latency {ms:.2} ms");
    }

    #[test]
    fn devices_are_ordered_by_capability() {
        let wl = deit_tiny();
        let gpu = DeviceModel::rtx_2080ti().simulate(&wl, AttentionKind::VanillaSoftmax);
        let edge = DeviceModel::jetson_tx2().simulate(&wl, AttentionKind::VanillaSoftmax);
        let cpu = DeviceModel::xeon_6230().simulate(&wl, AttentionKind::VanillaSoftmax);
        let phone = DeviceModel::pixel3().simulate(&wl, AttentionKind::VanillaSoftmax);
        assert!(gpu.total_latency_s() < edge.total_latency_s());
        assert!(edge.total_latency_s() < phone.total_latency_s());
        assert!(gpu.total_latency_s() < cpu.total_latency_s());
        assert!(cpu.energy_j > gpu.energy_j * 0.5);
    }

    #[test]
    fn report_totals_are_consistent() {
        let report = DeviceModel::xeon_6230().simulate(&deit_tiny(), AttentionKind::Taylor);
        assert_eq!(report.attention_steps.len(), 6);
        let sum: f64 = report.attention_steps.iter().map(|s| s.latency_s).sum();
        assert!((report.attention_latency_s() - sum).abs() < 1e-12);
        assert!(report.total_latency_s() >= report.mha_latency_s());
        assert!(report.energy_j > 0.0);
        assert_eq!(report.attention, AttentionKind::Taylor);
    }
}
