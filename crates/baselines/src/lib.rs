//! Baseline hardware models for the ViTALiTy evaluation.
//!
//! The paper compares its accelerator against four baselines:
//!
//! * general-purpose platforms — a server CPU (Xeon Gold 6230), a desktop GPU (RTX
//!   2080Ti), an edge GPU (Jetson TX2) and a phone SoC (Pixel 3) — modelled analytically
//!   in [`device`] with per-operator-class effective throughputs calibrated to the
//!   paper's own profiling (Fig. 1 and Table II);
//! * the Sanger sparse-attention accelerator (MICRO'21), modelled cycle-level in
//!   [`sanger`] with the quantized prediction pass, pack-and-split load balancing and a
//!   64×16 reconfigurable PE array;
//! * the SALO window-attention accelerator (DAC'22), modelled analytically in [`salo`]
//!   for the comparison sentence in Section V-C.

#![deny(missing_docs)]

pub mod device;
pub mod salo;
pub mod sanger;

pub use device::{AttentionKind, DeviceModel, DeviceReport, StepTiming};
pub use salo::SaloAccelerator;
pub use sanger::{SangerAccelerator, SangerConfig, SangerReport};
