//! Cycle-level model of the Sanger sparse-attention accelerator (MICRO'21), the paper's
//! main dedicated-accelerator baseline.

use serde::{Deserialize, Serialize};

use vitality_accel::{EnergyBreakdown, MemoryTraffic};
use vitality_vit::ModelWorkload;

/// Configuration of the Sanger accelerator (Table III, bottom half).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SangerConfig {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Rows of the reconfigurable PE array.
    pub repe_rows: usize,
    /// Columns of the reconfigurable PE array.
    pub repe_cols: usize,
    /// Attention density after thresholding (fraction of surviving entries). The Sanger
    /// paper reports roughly 20–40% density at its default threshold.
    pub attention_density: f64,
    /// Effective utilisation of the PE array on the irregular sparse workload after
    /// pack-and-split load balancing.
    pub sparse_efficiency: f64,
    /// Total synthesized power in watts (Table III reports 1450 mW).
    pub power_w: f64,
    /// Power of the quantized prediction pre-processor in watts.
    pub preprocessor_power_w: f64,
    /// Scale factor for peak-throughput matching (mirrors the ViTALiTy scaling knob).
    pub scale_factor: f64,
}

impl SangerConfig {
    /// The configuration the paper synthesizes for its comparison (Table III).
    pub fn paper() -> Self {
        Self {
            frequency_hz: 500e6,
            repe_rows: 64,
            repe_cols: 16,
            attention_density: 0.35,
            sparse_efficiency: 0.45,
            power_w: 1.45,
            preprocessor_power_w: 0.183,
            scale_factor: 1.0,
        }
    }

    /// Total area in mm² (Table III reports 5.194 mm²).
    pub fn total_area_mm2(&self) -> f64 {
        5.194
    }
}

impl Default for SangerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Simulation result of one model on the Sanger accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SangerReport {
    /// Model name.
    pub model: &'static str,
    /// Cycles spent in the sparse attention (prediction + pack-and-split + sparse compute).
    pub attention_cycles: u64,
    /// Cycles spent in projections, MLPs and the backbone on the PE array.
    pub linear_cycles: u64,
    /// Attention latency in seconds.
    pub attention_latency_s: f64,
    /// End-to-end latency in seconds.
    pub total_latency_s: f64,
    /// Attention energy in joules.
    pub attention_energy_j: f64,
    /// End-to-end energy in joules.
    pub total_energy_j: f64,
}

/// The Sanger accelerator simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SangerAccelerator {
    config: SangerConfig,
}

impl SangerAccelerator {
    /// Creates the simulator.
    pub fn new(config: SangerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> SangerConfig {
        self.config
    }

    fn pes(&self) -> f64 {
        (self.config.repe_rows * self.config.repe_cols) as f64 * self.config.scale_factor
    }

    /// Cycles of the sparse attention of one layer (all heads).
    fn attention_layer_cycles(&self, n: usize, d: usize, heads: usize) -> u64 {
        let pes = self.pes();
        let h = heads as f64;
        let n_f = n as f64;
        let d_f = d as f64;
        // 1) Quantized (4-bit) prediction of the full attention map: n^2 d MACs per head,
        //    executed on the prediction pre-processor at 4x packing density.
        let prediction = h * n_f * n_f * d_f / (pes * 4.0);
        // 2) Pack-and-split of the binary mask into load-balanced rows.
        let pack_split = h * n_f * (n_f / 64.0).ceil();
        // 3) Exact sparse attention: score + weighted sum over the surviving entries only,
        //    at the post-balancing efficiency.
        let nnz = self.config.attention_density * n_f * n_f;
        let sparse_compute = h * 2.0 * nnz * d_f / (pes * self.config.sparse_efficiency);
        // 4) Softmax over the surviving entries on the exponential unit (one lane per PE row).
        let softmax = h * nnz / self.config.repe_rows as f64 * 2.0;
        (prediction + pack_split + sparse_compute + softmax).ceil() as u64
    }

    /// Cycles of the dense linear layers (projections, MLP, backbone) on the PE array.
    fn linear_cycles(&self, workload: &ModelWorkload) -> u64 {
        let pes = self.pes();
        let dense_utilisation = 0.75;
        let macs = workload.non_attention_macs() as f64;
        (macs / (pes * dense_utilisation)).ceil() as u64
    }

    /// Simulates one model.
    pub fn simulate_model(&self, workload: &ModelWorkload) -> SangerReport {
        let mut attention_cycles = 0u64;
        for stage in &workload.stages {
            attention_cycles += self.attention_layer_cycles(
                stage.stage.tokens,
                stage.stage.head_dim,
                stage.stage.heads,
            ) * stage.stage.layers as u64;
        }
        let linear_cycles = self.linear_cycles(workload);
        let period = 1.0 / self.config.frequency_hz;
        let attention_latency_s = attention_cycles as f64 * period;
        let total_latency_s = (attention_cycles + linear_cycles) as f64 * period;
        // Energy: whole-accelerator power during busy time plus the prediction
        // pre-processor's share during the attention phase, plus one DRAM fetch of every
        // weight (the same accounting the ViTALiTy simulator uses for its linear layers).
        let attention_energy_j =
            (self.config.power_w + self.config.preprocessor_power_w) * attention_latency_s;
        let weight_dram_energy_j = workload.weight_parameter_words() as f64 * 320e-12;
        let total_energy_j = attention_energy_j
            + self.config.power_w * linear_cycles as f64 * period
            + weight_dram_energy_j;
        SangerReport {
            model: workload.name,
            attention_cycles,
            linear_cycles,
            attention_latency_s,
            total_latency_s,
            attention_energy_j,
            total_energy_j,
        }
    }

    /// Memory traffic of the sparse attention (used by energy sensitivity studies).
    pub fn attention_traffic(&self, n: usize, d: usize, heads: usize) -> MemoryTraffic {
        let h = heads as u64;
        let nnz = (self.config.attention_density * (n * n) as f64) as u64;
        MemoryTraffic {
            dram: 0,
            sram: h * (3 * (n * d) as u64 + 2 * nnz + (n * d) as u64),
            noc: h * (3 * (n * d) as u64 + 2 * nnz),
            reg: h * 2 * (2 * nnz * d as u64),
        }
    }

    /// Attention energy breakdown in the Table V shape (for cross-accelerator comparisons).
    pub fn attention_energy_breakdown(&self, workload: &ModelWorkload) -> EnergyBreakdown {
        let report = self.simulate_model(workload);
        // Split the busy energy into array vs pre-processing using the configured powers.
        let pre_share = self.config.preprocessor_power_w
            / (self.config.power_w + self.config.preprocessor_power_w);
        EnergyBreakdown {
            data_access_j: report.attention_energy_j * 0.05,
            other_processors_j: report.attention_energy_j * pre_share,
            systolic_array_j: report.attention_energy_j * (0.95 - pre_share),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitality_accel::{AcceleratorConfig, VitalityAccelerator};
    use vitality_vit::ModelConfig;

    fn deit_tiny() -> ModelWorkload {
        ModelWorkload::for_model(&ModelConfig::deit_tiny())
    }

    #[test]
    fn vitality_beats_sanger_on_attention_and_end_to_end() {
        // The headline claim: ~7x attention speedup and ~3x end-to-end speedup over Sanger
        // under comparable hardware budgets.
        let sanger = SangerAccelerator::new(SangerConfig::paper()).simulate_model(&deit_tiny());
        let vitality =
            VitalityAccelerator::new(AcceleratorConfig::paper()).simulate_model(&deit_tiny());
        let attention_speedup = sanger.attention_latency_s / vitality.attention_latency_s;
        let e2e_speedup = sanger.total_latency_s / vitality.total_latency_s;
        assert!(
            attention_speedup > 2.0 && attention_speedup < 20.0,
            "attention speedup {attention_speedup:.1}"
        );
        assert!(
            e2e_speedup > 1.5 && e2e_speedup < 8.0,
            "e2e speedup {e2e_speedup:.1}"
        );
        assert!(attention_speedup > e2e_speedup);
    }

    #[test]
    fn vitality_beats_sanger_on_energy() {
        let wl = deit_tiny();
        let sanger = SangerAccelerator::new(SangerConfig::paper()).simulate_model(&wl);
        let vitality = VitalityAccelerator::new(AcceleratorConfig::paper()).simulate_model(&wl);
        let ratio = sanger.total_energy_j / vitality.total_energy_j;
        assert!(ratio > 1.2 && ratio < 15.0, "energy ratio {ratio:.1}");
    }

    #[test]
    fn denser_attention_masks_cost_more() {
        let sparse = SangerAccelerator::new(SangerConfig {
            attention_density: 0.1,
            ..SangerConfig::paper()
        });
        let dense = SangerAccelerator::new(SangerConfig {
            attention_density: 0.9,
            ..SangerConfig::paper()
        });
        let wl = deit_tiny();
        assert!(
            dense.simulate_model(&wl).attention_cycles
                > sparse.simulate_model(&wl).attention_cycles
        );
    }

    #[test]
    fn report_components_are_consistent() {
        let accel = SangerAccelerator::new(SangerConfig::paper());
        assert_eq!(accel.config().repe_cols, 16);
        let report = accel.simulate_model(&deit_tiny());
        assert!(report.total_latency_s > report.attention_latency_s);
        assert!(report.total_energy_j > report.attention_energy_j);
        assert!(report.attention_cycles > 0 && report.linear_cycles > 0);
        let traffic = accel.attention_traffic(197, 64, 3);
        assert!(traffic.total() > 0);
        let breakdown = accel.attention_energy_breakdown(&deit_tiny());
        assert!(
            (breakdown.total_j() - report.attention_energy_j).abs() / report.attention_energy_j
                < 0.01
        );
        assert!((SangerConfig::paper().total_area_mm2() - 5.194).abs() < 1e-9);
    }

    #[test]
    fn scaling_up_reduces_latency() {
        let base = SangerAccelerator::new(SangerConfig::paper()).simulate_model(&deit_tiny());
        let scaled = SangerAccelerator::new(SangerConfig {
            scale_factor: 4.0,
            ..SangerConfig::paper()
        })
        .simulate_model(&deit_tiny());
        assert!(scaled.total_latency_s < base.total_latency_s);
    }
}
