//! Analytical model of the SALO hybrid window-attention accelerator (DAC'22).
//!
//! Section V-C of the paper compares the ViTALiTy accelerator against SALO, which
//! accelerates sliding-window, dilated-window and global attention patterns. Under the
//! same hardware budget the paper reports up to 4.7x / 5.0x attention speedups for
//! DeiT-Tiny / DeiT-Small. SALO's attention cost scales with `n x window x d` plus the
//! global tokens, which this model captures.

use serde::{Deserialize, Serialize};

use vitality_vit::ModelWorkload;

/// Analytical SALO model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaloAccelerator {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Number of processing elements (matched to the ViTALiTy hardware budget).
    pub pes: usize,
    /// Sliding-window size (keys attended per query).
    pub window: usize,
    /// Number of global tokens attended by every query.
    pub global_tokens: usize,
    /// Effective PE utilisation on the window pattern.
    pub utilisation: f64,
}

impl SaloAccelerator {
    /// SALO matched to the ViTALiTy hardware budget at 500 MHz.
    ///
    /// Under the same area budget SALO's PEs carry the softmax datapath (exponent and
    /// division logic), so fewer of them fit; and reaching ViT-comparable accuracy with a
    /// windowed pattern on image tokens needs a window of roughly half the sequence, where
    /// SALO's spatial dataflow (designed for long NLP sequences) runs at low utilisation.
    pub fn matched_budget() -> Self {
        Self {
            frequency_hz: 500e6,
            pes: 2048,
            window: 96,
            global_tokens: 4,
            utilisation: 0.2,
        }
    }

    /// Attention cycles for one model (all layers): each query attends to `window` local
    /// keys plus the global tokens, costing `2 d` MACs per attended key for the score and
    /// the weighted sum, plus an exponential per attended key handled by SALO's softmax
    /// path (folded into the utilisation factor).
    pub fn attention_cycles(&self, workload: &ModelWorkload) -> u64 {
        let mut cycles = 0.0f64;
        for stage in &workload.stages {
            let n = stage.stage.tokens as f64;
            let d = stage.stage.head_dim as f64;
            let h = stage.stage.heads as f64;
            let layers = stage.stage.layers as f64;
            let attended = (self.window as f64 + self.global_tokens as f64).min(n);
            let macs = h * n * attended * 2.0 * d;
            cycles += layers * macs / (self.pes as f64 * self.utilisation);
        }
        cycles.ceil() as u64
    }

    /// Attention latency in seconds.
    pub fn attention_latency_s(&self, workload: &ModelWorkload) -> f64 {
        self.attention_cycles(workload) as f64 / self.frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitality_accel::{AcceleratorConfig, VitalityAccelerator};
    use vitality_vit::ModelConfig;

    #[test]
    fn vitality_outperforms_salo_on_deit_attention() {
        // Section V-C: up to 4.7x (DeiT-Tiny) and 5.0x (DeiT-Small) attention speedup under
        // the same hardware budget.
        let salo = SaloAccelerator::matched_budget();
        let vitality = VitalityAccelerator::new(AcceleratorConfig::paper());
        for (cfg, max_expected) in [
            (ModelConfig::deit_tiny(), 8.0),
            (ModelConfig::deit_small(), 9.0),
        ] {
            let wl = vitality_vit::ModelWorkload::for_model(&cfg);
            let speedup =
                salo.attention_latency_s(&wl) / vitality.simulate_model(&wl).attention_latency_s;
            assert!(
                speedup > 1.5 && speedup < max_expected,
                "{}: speedup {speedup:.1}",
                cfg.name
            );
        }
    }

    #[test]
    fn wider_windows_cost_more() {
        let narrow = SaloAccelerator {
            window: 16,
            ..SaloAccelerator::matched_budget()
        };
        let wide = SaloAccelerator {
            window: 128,
            ..SaloAccelerator::matched_budget()
        };
        let wl = vitality_vit::ModelWorkload::for_model(&ModelConfig::deit_tiny());
        assert!(wide.attention_cycles(&wl) > narrow.attention_cycles(&wl));
    }

    #[test]
    fn window_is_clamped_to_the_token_count() {
        let huge_window = SaloAccelerator {
            window: 10_000,
            ..SaloAccelerator::matched_budget()
        };
        let wl = vitality_vit::ModelWorkload::for_model(&ModelConfig::levit_128());
        // Even with an absurd window the attended keys cannot exceed the token count, so
        // the cost stays finite and below the dense quadratic cost.
        let cycles = huge_window.attention_cycles(&wl);
        assert!(cycles > 0);
    }
}
