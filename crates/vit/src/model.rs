//! The trainable Vision Transformer used by the accuracy experiments.

use rand::Rng;
use rayon::prelude::*;

use crate::block::{AttentionVariant, TransformerBlock};
use crate::config::TrainConfig;
use vitality_attention::Int8Calibration;
use vitality_autograd::{Graph, Var};
use vitality_nn::registry::{NamedParameters, ParamRegistry};
use vitality_nn::{ClassificationHead, PatchEmbed};
use vitality_tensor::{with_thread_workspace, Matrix, Workspace};

/// Result of an inference pass: the logits plus the final token representations.
#[derive(Debug, Clone)]
pub struct VitOutput {
    /// `1 x classes` classification logits.
    pub logits: Matrix,
    /// `n x d` token representations after the final block (before the head's norm).
    pub tokens: Matrix,
}

/// A small but structurally complete Vision Transformer: patch embedding, a stack of
/// pre-norm Transformer blocks with a pluggable attention variant, and a mean-pooled
/// classification head.
///
/// The attention variant can be switched after training, which is exactly how ViTALiTy is
/// deployed: fine-tune with [`AttentionVariant::Unified`], then switch to
/// [`AttentionVariant::Taylor`] for inference and drop the sparse component.
#[derive(Debug, Clone)]
pub struct VisionTransformer {
    config: TrainConfig,
    embed: PatchEmbed,
    blocks: Vec<TransformerBlock>,
    head: ClassificationHead,
    variant: AttentionVariant,
}

impl VisionTransformer {
    /// Creates a model with randomly initialised weights and the given attention variant.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`TrainConfig::validate`].
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        config: TrainConfig,
        variant: AttentionVariant,
    ) -> Self {
        config.validate();
        let embed = PatchEmbed::new(rng, config.patch_size, config.tokens(), config.embed_dim);
        let blocks = (0..config.layers)
            .map(|_| {
                TransformerBlock::new(
                    rng,
                    config.embed_dim,
                    config.heads,
                    config.mlp_ratio,
                    variant,
                )
            })
            .collect();
        let head = ClassificationHead::new(rng, config.embed_dim, config.classes);
        Self {
            config,
            embed,
            blocks,
            head,
            variant,
        }
    }

    /// Compile-time proof that the model is `Send + Sync` — the property that lets the
    /// serving engine share one warm model (behind an `Arc`) across its registry,
    /// batcher and worker threads without cloning weights. Calling it is free; it
    /// exists so a change that introduces interior mutability or a non-`Send` member
    /// fails to build here, next to the model, instead of deep inside
    /// `vitality-serve`.
    pub fn assert_send_sync() {
        fn assert<T: Send + Sync>() {}
        assert::<Self>();
    }

    /// The training configuration.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// The currently active attention variant.
    pub fn variant(&self) -> AttentionVariant {
        self.variant
    }

    /// Switches the attention variant (e.g. from training-time Unified to inference-time
    /// Taylor) without touching the weights. Every block's attention kernel is rebuilt
    /// exactly once here — never on the inference path.
    pub fn set_variant(&mut self, variant: AttentionVariant) {
        self.variant = variant;
        for block in &mut self.blocks {
            block.set_variant(variant);
        }
    }

    /// Number of Transformer blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Training forward pass for one image, producing `1 x classes` logits on the tape.
    pub fn forward_train(&self, graph: &Graph, reg: &mut ParamRegistry, image: &Matrix) -> Var {
        let mut x = self.embed.forward(graph, reg, "embed", image);
        for (i, block) in self.blocks.iter().enumerate() {
            x = block.forward_train(graph, reg, &format!("block{i}"), &x);
        }
        self.head.forward(graph, reg, "head", &x)
    }

    /// Inference pass producing logits and the final token representations.
    ///
    /// Runs on the calling thread's persistent [`Workspace`], so repeated calls from
    /// the same thread (a serving worker) reuse warm scratch buffers.
    pub fn infer(&self, image: &Matrix) -> VitOutput {
        with_thread_workspace(|ws| self.infer_with(image, ws))
    }

    /// Inference pass drawing every intermediate from the caller's workspace.
    ///
    /// The returned [`VitOutput`] matrices are themselves workspace checkouts: recycle
    /// them back (as [`VisionTransformer::infer_batch_into`] does between rounds) and
    /// the steady state performs zero hot-path allocations.
    pub fn infer_with(&self, image: &Matrix, ws: &mut Workspace) -> VitOutput {
        let mut x = ws.take(self.config.tokens(), self.config.embed_dim);
        self.embed.infer_into(image, ws, &mut x);
        for block in &self.blocks {
            block.infer_inplace(&mut x, ws);
        }
        let mut logits = ws.take(1, self.config.classes);
        self.head.infer_into(&x, ws, &mut logits);
        VitOutput { logits, tokens: x }
    }

    /// Inference over a batch of images, one rayon work unit per image.
    ///
    /// The per-image token matrices are completely independent, so this is the
    /// model-level parallel axis; each worker thread runs on its own persistent
    /// workspace. Outputs come back in input order.
    pub fn infer_batch(&self, images: &[Matrix]) -> Vec<VitOutput> {
        images.par_iter().map(|image| self.infer(image)).collect()
    }

    /// Steady-state batched inference: refills `outputs` with one [`VitOutput`] per
    /// image, recycling the previous round's outputs into `ws` first.
    ///
    /// This is the allocation-free serving loop: after a warmup round every buffer —
    /// projections, attention scratch, token matrices, logits — is a workspace pool
    /// hit, which the counting-allocator regression test (`tests/alloc_regression.rs`)
    /// asserts is exactly zero heap traffic. Images are processed sequentially on the
    /// calling thread; use [`VisionTransformer::infer_batch`] when parallel fan-out
    /// matters more than allocation discipline.
    pub fn infer_batch_into(
        &self,
        images: &[Matrix],
        outputs: &mut Vec<VitOutput>,
        ws: &mut Workspace,
    ) {
        for output in outputs.drain(..) {
            ws.recycle(output.logits);
            ws.recycle(output.tokens);
        }
        outputs.reserve(images.len());
        for image in images {
            outputs.push(self.infer_with(image, ws));
        }
    }

    /// Predicted class index for one image.
    pub fn predict(&self, image: &Matrix) -> usize {
        let logits = self.infer(image).logits;
        let mut best = 0;
        for j in 1..logits.cols() {
            if logits.get(0, j) > logits.get(0, best) {
                best = j;
            }
        }
        best
    }

    /// Predicted class indices for a batch of images (parallel over images).
    pub fn predict_batch(&self, images: &[Matrix]) -> Vec<usize> {
        images.par_iter().map(|image| self.predict(image)).collect()
    }

    /// Top-1 accuracy over a labelled set of images (parallel over images).
    pub fn accuracy(&self, images: &[Matrix], labels: &[usize]) -> f32 {
        assert_eq!(
            images.len(),
            labels.len(),
            "one label per image is required"
        );
        if images.is_empty() {
            return 0.0;
        }
        let correct = self
            .predict_batch(images)
            .iter()
            .zip(labels.iter())
            .filter(|(predicted, label)| predicted == label)
            .count();
        correct as f32 / images.len() as f32
    }

    /// Calibrates fixed int8 quantization scales on sample images and switches the
    /// model to [`AttentionVariant::Int8Taylor`] with the measured ranges — the
    /// model-construction calibration hook of the quantized serving path.
    ///
    /// Each image is propagated through the model with the *current* variant while the
    /// per-head absmax of every block's `Q` / centred `K̂` / `V` activations is
    /// aggregated ([`MultiHeadAttention::qkv_absmax`]); the maxima over all blocks,
    /// heads and images become the frozen [`Int8Calibration::Fixed`] ranges, so every
    /// calibration-set activation is representable and anything beyond saturates at
    /// ±127 (the accelerator's behaviour). Returns the calibration for registering
    /// further models (e.g. an [`AttentionVariant::Int8Unified`] arm) on the same
    /// ranges.
    ///
    /// # Panics
    ///
    /// Panics when `images` is empty — a fixed calibration measured on nothing would
    /// silently zero every activation.
    pub fn calibrate_int8(&mut self, images: &[Matrix]) -> Int8Calibration {
        assert!(
            !images.is_empty(),
            "int8 calibration requires at least one sample image"
        );
        let (mut q_max, mut k_max, mut v_max) = (0.0f32, 0.0f32, 0.0f32);
        let mut ws = Workspace::new();
        for image in images {
            let mut x = self.embed.infer(image);
            for block in &self.blocks {
                let (q, k, v) = block.attention_qkv_absmax(&x, &mut ws);
                q_max = q_max.max(q);
                k_max = k_max.max(k);
                v_max = v_max.max(v);
                block.infer_inplace(&mut x, &mut ws);
            }
        }
        let calibration = Int8Calibration::Fixed {
            q_absmax: q_max,
            k_absmax: k_max,
            v_absmax: v_max,
        };
        self.set_variant(AttentionVariant::Int8Taylor { calibration });
        calibration
    }

    /// Mean sparse-component occupancy across blocks for one image (the Fig. 14 probe).
    pub fn sparse_occupancy(&self, image: &Matrix) -> f32 {
        let mut x = self.embed.infer(image);
        let mut ws = Workspace::new();
        let mut total = 0.0;
        for block in &self.blocks {
            total += block.attention().sparse_occupancy(&x);
            block.infer_inplace(&mut x, &mut ws);
        }
        total / self.blocks.len().max(1) as f32
    }

    /// Per-block, per-head attention logits (raw and mean-centred) for one image, consumed
    /// by the Fig. 3 distribution probe.
    pub fn collect_head_logits(&self, image: &Matrix) -> Vec<Vec<(Matrix, Matrix)>> {
        let mut x = self.embed.infer(image);
        let mut ws = Workspace::new();
        let mut out = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            out.push(block.attention().head_logits(&x));
            block.infer_inplace(&mut x, &mut ws);
        }
        out
    }
}

impl NamedParameters for VisionTransformer {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        let p = |leaf: &str| {
            if prefix.is_empty() {
                leaf.to_string()
            } else {
                format!("{prefix}.{leaf}")
            }
        };
        self.embed.visit_parameters(&p("embed"), visitor);
        for (i, block) in self.blocks.iter().enumerate() {
            block.visit_parameters(&p(&format!("block{i}")), visitor);
        }
        self.head.visit_parameters(&p("head"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        let p = |leaf: &str| {
            if prefix.is_empty() {
                leaf.to_string()
            } else {
                format!("{prefix}.{leaf}")
            }
        };
        self.embed.visit_parameters_mut(&p("embed"), visitor);
        for (i, block) in self.blocks.iter_mut().enumerate() {
            block.visit_parameters_mut(&p(&format!("block{i}")), visitor);
        }
        self.head.visit_parameters_mut(&p("head"), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
        init::uniform(
            &mut StdRng::seed_from_u64(seed),
            cfg.image_size,
            cfg.image_size,
            0.0,
            1.0,
        )
    }

    #[test]
    fn inference_produces_class_logits() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(200);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let out = model.infer(&image(&cfg, 1));
        assert_eq!(out.logits.shape(), (1, cfg.classes));
        assert_eq!(out.tokens.shape(), (cfg.tokens(), cfg.embed_dim));
        assert!(model.predict(&image(&cfg, 1)) < cfg.classes);
        assert_eq!(model.depth(), cfg.layers);
        assert_eq!(model.config(), cfg);
    }

    #[test]
    fn training_forward_matches_inference_values() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(201);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        let img = image(&cfg, 2);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let logits = model.forward_train(&graph, &mut reg, &img);
        assert!(logits.value().approx_eq(&model.infer(&img).logits, 1e-3));
        let grads = graph.backward(&logits.cross_entropy_with_logits(&[0]));
        // Every registered parameter should receive a gradient.
        assert!(reg.grad("embed.proj.weight", &grads).is_some());
        assert!(reg.grad("block0.attn.wq.weight", &grads).is_some());
        assert!(reg.grad("head.fc.weight", &grads).is_some());
    }

    #[test]
    fn infer_batch_matches_sequential_inference() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(210);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        let images: Vec<Matrix> = (0..3).map(|i| image(&cfg, 30 + i)).collect();
        let batched = model.infer_batch(&images);
        assert_eq!(batched.len(), images.len());
        for (out, img) in batched.iter().zip(images.iter()) {
            let single = model.infer(img);
            assert!(out.logits.approx_eq(&single.logits, 1e-6));
            assert!(out.tokens.approx_eq(&single.tokens, 1e-6));
        }
        let preds = model.predict_batch(&images);
        let sequential: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();
        assert_eq!(preds, sequential);
    }

    #[test]
    fn switching_variants_preserves_weights_but_changes_outputs() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(202);
        let mut model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let img = image(&cfg, 3);
        let softmax_logits = model.infer(&img).logits;
        model.set_variant(AttentionVariant::Taylor);
        assert_eq!(model.variant().label(), "taylor");
        let taylor_logits = model.infer(&img).logits;
        assert_eq!(softmax_logits.shape(), taylor_logits.shape());
        assert!(!softmax_logits.approx_eq(&taylor_logits, 1e-6));
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(203);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let images: Vec<Matrix> = (0..4).map(|i| image(&cfg, 10 + i)).collect();
        let predictions: Vec<usize> = images.iter().map(|img| model.predict(img)).collect();
        assert_eq!(model.accuracy(&images, &predictions), 1.0);
        let wrong: Vec<usize> = predictions.iter().map(|p| (p + 1) % cfg.classes).collect();
        assert_eq!(model.accuracy(&images, &wrong), 0.0);
        assert_eq!(model.accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn sparse_occupancy_probe_is_zero_for_dense_variants() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(204);
        let mut model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        let img = image(&cfg, 5);
        assert_eq!(model.sparse_occupancy(&img), 0.0);
        model.set_variant(AttentionVariant::Unified { threshold: 0.02 });
        let occupancy = model.sparse_occupancy(&img);
        assert!(occupancy > 0.0 && occupancy <= 1.0);
    }

    #[test]
    fn head_logit_probe_shapes() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(205);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let captured = model.collect_head_logits(&image(&cfg, 6));
        assert_eq!(captured.len(), cfg.layers);
        assert_eq!(captured[0].len(), cfg.heads);
        assert_eq!(captured[0][0].0.shape(), (cfg.tokens(), cfg.tokens()));
    }

    #[test]
    fn shared_models_serve_from_multiple_threads() {
        VisionTransformer::assert_send_sync();
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(220);
        let model = std::sync::Arc::new(VisionTransformer::new(
            &mut rng,
            cfg,
            AttentionVariant::Taylor,
        ));
        let img = image(&cfg, 40);
        let expected = model.infer(&img).logits;
        let outputs: Vec<Matrix> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let model = std::sync::Arc::clone(&model);
                    let img = img.clone();
                    scope.spawn(move || model.infer(&img).logits)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("inference thread panicked"))
                .collect()
        });
        for logits in outputs {
            assert_eq!(logits, expected, "shared inference must be deterministic");
        }
    }

    #[test]
    fn calibrate_int8_freezes_ranges_and_switches_the_variant() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(230);
        let mut model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        let samples: Vec<Matrix> = (0..3).map(|i| image(&cfg, 60 + i)).collect();
        let f32_predictions = model.predict_batch(&samples);
        let calibration = model.calibrate_int8(&samples);
        let Int8Calibration::Fixed {
            q_absmax,
            k_absmax,
            v_absmax,
        } = calibration
        else {
            panic!("calibration must freeze fixed ranges");
        };
        assert!(q_absmax > 0.0 && k_absmax > 0.0 && v_absmax > 0.0);
        assert_eq!(
            model.variant(),
            AttentionVariant::Int8Taylor { calibration }
        );
        assert_eq!(model.variant().label(), "int8");
        // Calibrated int8 inference stays usable: finite logits, overwhelmingly the
        // same top-1 decisions on the calibration set.
        let int8_predictions = model.predict_batch(&samples);
        let agreement = int8_predictions
            .iter()
            .zip(&f32_predictions)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agreement >= samples.len() - 1,
            "calibrated int8 flipped {} of {} predictions",
            samples.len() - agreement,
            samples.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample image")]
    fn calibrate_int8_rejects_an_empty_sample_set() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(231);
        let mut model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
        let _ = model.calibrate_int8(&[]);
    }

    #[test]
    fn parameter_names_are_unique() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(206);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let mut names = Vec::new();
        model.visit_parameters("", &mut |n, _| names.push(n.to_string()));
        let count = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), count, "duplicate parameter names");
        assert!(model.parameter_count() > 1000);
    }
}
