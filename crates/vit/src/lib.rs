//! Vision Transformer model substrate.
//!
//! Two different needs are served by this crate:
//!
//! 1. **Workload modelling** of the seven ViT models the paper evaluates (DeiT-Tiny /
//!    Small / Base, MobileViT-xxs / xs, LeViT-128s / 128): per-stage token counts, head
//!    counts and dimensions ([`config`]), and per-step operation counts for both the
//!    vanilla attention and the ViTALiTy Taylor attention ([`opcount`]). The accelerator
//!    simulator and the analytical device models consume these workloads to regenerate
//!    Fig. 1, Table I, Table II, Fig. 11 and Fig. 12.
//! 2. **A trainable ViT** ([`model`]) built on `vitality-nn` / `vitality-autograd` with a
//!    pluggable attention variant, used by the synthetic-data training experiments that
//!    reproduce the paper's accuracy results (Fig. 10, Fig. 13–15, Table IV).
//!
//! The [`probe`] module samples the distribution of attention logits before/after row-mean
//! centring (Fig. 3).

#![deny(missing_docs)]

pub mod block;
pub mod config;
pub mod model;
pub mod opcount;
pub mod probe;

pub use block::{AttentionVariant, MultiHeadAttention, TransformerBlock};
pub use config::{ModelConfig, ModelFamily, StageConfig, TrainConfig};
pub use model::{VisionTransformer, VitOutput};
pub use opcount::{attention_step_ops, AttentionStep, ModelWorkload, StageWorkload, StepOps};
pub use probe::{attention_logit_distribution, DistributionProbe};
pub use vitality_attention::Int8Calibration;
