//! Per-model, per-step operation-count workloads.
//!
//! The hardware experiments (Fig. 1, Table I, Table II, Fig. 11, Fig. 12) never execute
//! the ImageNet-scale models numerically; they consume *workload descriptions* — how many
//! multiplications / additions / divisions / exponentiations each computational step of
//! each layer performs — and feed them to the accelerator simulator and the analytical
//! device models. This module derives those workloads from a [`ModelConfig`].

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, StageConfig};
use vitality_attention::opcount::{taylor_attention_ops, vanilla_softmax_ops};
use vitality_attention::OpCounts;

/// One computational step of an attention block, following the step numbering of Fig. 2
/// (vanilla) and Algorithm 1 / Table II (Taylor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttentionStep {
    /// Vanilla/Taylor Step 1 of Fig. 2: the Q, K, V projections.
    QkvProjection,
    /// Vanilla Step 2: `S = softmax(Q K^T / sqrt(d))`.
    SoftmaxAttentionMap,
    /// Vanilla Step 3: `Z = S V`.
    AttentionScore,
    /// Taylor Step 1: mean-centring the keys (`\bar{K}`, `\hat{K}`).
    TaylorMeanCenter,
    /// Taylor Step 2: the global context matrix `G = \hat{K}^T V`.
    TaylorGlobalContext,
    /// Taylor Step 3: column sums `\hat{k}_{sum}` and `v_{sum}`.
    TaylorColumnSums,
    /// Taylor Step 4: the denominator `t_D`.
    TaylorDenominator,
    /// Taylor Step 5: the numerator `T_N`.
    TaylorNumerator,
    /// Taylor Step 6: the score `Z = diag^{-1}(t_D) T_N`.
    TaylorScore,
}

impl AttentionStep {
    /// The vanilla-attention steps in execution order (excluding the shared projections).
    pub fn vanilla_steps() -> [AttentionStep; 2] {
        [
            AttentionStep::SoftmaxAttentionMap,
            AttentionStep::AttentionScore,
        ]
    }

    /// The Taylor-attention steps in execution order (excluding the shared projections).
    pub fn taylor_steps() -> [AttentionStep; 6] {
        [
            AttentionStep::TaylorMeanCenter,
            AttentionStep::TaylorGlobalContext,
            AttentionStep::TaylorColumnSums,
            AttentionStep::TaylorDenominator,
            AttentionStep::TaylorNumerator,
            AttentionStep::TaylorScore,
        ]
    }

    /// Short label used in experiment output (matches Table II's row names).
    pub fn label(&self) -> &'static str {
        match self {
            AttentionStep::QkvProjection => "Q,K,V projection",
            AttentionStep::SoftmaxAttentionMap => "S = softmax(QK^T)",
            AttentionStep::AttentionScore => "Z = S V",
            AttentionStep::TaylorMeanCenter => "K_hat (mean-centre)",
            AttentionStep::TaylorGlobalContext => "G = K_hat^T V",
            AttentionStep::TaylorColumnSums => "k_sum, v_sum",
            AttentionStep::TaylorDenominator => "t_D",
            AttentionStep::TaylorNumerator => "T_N",
            AttentionStep::TaylorScore => "Z = diag^-1(t_D) T_N",
        }
    }
}

/// Operation counts of one step of one layer (aggregated over all heads of the stage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOps {
    /// Which step this is.
    pub step: AttentionStep,
    /// Scalar operation counts (all heads of one layer).
    pub ops: OpCounts,
}

/// Operation counts of one attention step for a single layer of a stage.
///
/// `n` is the token count, `d` the per-head dimension and `h` the head count.
pub fn attention_step_ops(step: AttentionStep, n: usize, d: usize, h: usize) -> OpCounts {
    let (nu, du, hu) = (n as u64, d as u64, h as u64);
    match step {
        // The projections are shared by both attentions; counted at the stage level using
        // the embedding dimension, so here we only account the per-head part.
        AttentionStep::QkvProjection => {
            OpCounts::new(3 * nu * du * du * hu, 3 * nu * du * du * hu, 0, 0)
        }
        AttentionStep::SoftmaxAttentionMap => {
            OpCounts::new(nu * nu * du, nu * nu * du + nu * nu, nu * nu, nu * nu).scaled(hu)
        }
        AttentionStep::AttentionScore => OpCounts::new(nu * nu * du, nu * nu * du, 0, 0).scaled(hu),
        AttentionStep::TaylorMeanCenter => OpCounts::new(0, 2 * nu * du, du, 0).scaled(hu),
        AttentionStep::TaylorGlobalContext => {
            OpCounts::new(nu * du * du, nu * du * du, 0, 0).scaled(hu)
        }
        AttentionStep::TaylorColumnSums => OpCounts::new(0, 2 * nu * du, 0, 0).scaled(hu),
        AttentionStep::TaylorDenominator => OpCounts::new(nu * du, nu * du + nu, 0, 0).scaled(hu),
        AttentionStep::TaylorNumerator => {
            OpCounts::new(nu * du * du + du, nu * du * du + nu * du, 0, 0).scaled(hu)
        }
        AttentionStep::TaylorScore => OpCounts::new(0, 0, nu * du, 0).scaled(hu),
    }
}

/// Workload of one stage: per-step counts for one layer plus layer/projection metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageWorkload {
    /// The stage configuration this workload was derived from.
    pub stage: StageConfig,
    /// Per-layer vanilla attention steps (softmax map + score).
    pub vanilla_steps: Vec<StepOps>,
    /// Per-layer Taylor attention steps (Algorithm 1, Steps 1–6).
    pub taylor_steps: Vec<StepOps>,
    /// Multiply–accumulates of the Q/K/V projections of one layer.
    pub qkv_projection_macs: u64,
    /// Multiply–accumulates of the output projection of one layer.
    pub output_projection_macs: u64,
    /// Multiply–accumulates of the MLP of one layer.
    pub mlp_macs: u64,
}

impl StageWorkload {
    fn from_stage(stage: StageConfig) -> Self {
        let n = stage.tokens;
        let d = stage.head_dim;
        let h = stage.heads;
        let vanilla_steps = AttentionStep::vanilla_steps()
            .into_iter()
            .map(|step| StepOps {
                step,
                ops: attention_step_ops(step, n, d, h),
            })
            .collect();
        let taylor_steps = AttentionStep::taylor_steps()
            .into_iter()
            .map(|step| StepOps {
                step,
                ops: attention_step_ops(step, n, d, h),
            })
            .collect();
        let attn_width = (h * d) as u64;
        let embed = stage.embed_dim as u64;
        let tokens = n as u64;
        let hidden = (stage.embed_dim as f32 * stage.mlp_ratio) as u64;
        Self {
            stage,
            vanilla_steps,
            taylor_steps,
            qkv_projection_macs: 3 * tokens * embed * attn_width,
            output_projection_macs: tokens * attn_width * embed,
            mlp_macs: 2 * tokens * embed * hidden,
        }
    }

    /// Vanilla attention (Steps 2–3) operation counts of the whole stage (all layers).
    pub fn vanilla_attention_ops(&self) -> OpCounts {
        self.vanilla_steps
            .iter()
            .map(|s| s.ops)
            .sum::<OpCounts>()
            .scaled(self.stage.layers as u64)
    }

    /// Taylor attention (Steps 1–6) operation counts of the whole stage (all layers).
    pub fn taylor_attention_ops(&self) -> OpCounts {
        self.taylor_steps
            .iter()
            .map(|s| s.ops)
            .sum::<OpCounts>()
            .scaled(self.stage.layers as u64)
    }

    /// Linear (projection + MLP) multiply–accumulates of the whole stage.
    pub fn linear_macs(&self) -> u64 {
        (self.qkv_projection_macs + self.output_projection_macs + self.mlp_macs)
            * self.stage.layers as u64
    }
}

/// The complete workload of a ViT model: every stage plus the convolutional backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWorkload {
    /// Model name (matches [`ModelConfig::name`]).
    pub name: &'static str,
    /// Per-stage workloads.
    pub stages: Vec<StageWorkload>,
    /// Non-Transformer backbone multiply–accumulates.
    pub backbone_macs: u64,
}

impl ModelWorkload {
    /// Derives the workload of a model configuration.
    pub fn for_model(config: &ModelConfig) -> Self {
        Self {
            name: config.name,
            stages: config
                .stages
                .iter()
                .copied()
                .map(StageWorkload::from_stage)
                .collect(),
            backbone_macs: config.backbone_macs,
        }
    }

    /// Total vanilla softmax attention operations across all stages and layers.
    pub fn vanilla_attention_ops(&self) -> OpCounts {
        self.stages
            .iter()
            .map(StageWorkload::vanilla_attention_ops)
            .sum()
    }

    /// Total Taylor attention operations across all stages and layers.
    pub fn taylor_attention_ops(&self) -> OpCounts {
        self.stages
            .iter()
            .map(StageWorkload::taylor_attention_ops)
            .sum()
    }

    /// Total linear (projection + MLP) multiply–accumulates across all stages.
    pub fn linear_macs(&self) -> u64 {
        self.stages.iter().map(StageWorkload::linear_macs).sum()
    }

    /// Total non-attention multiply–accumulates (linear layers plus backbone).
    pub fn non_attention_macs(&self) -> u64 {
        self.linear_macs() + self.backbone_macs
    }

    /// Number of 16-bit weight words of the non-attention layers (projections, MLPs and an
    /// approximation of the convolutional backbone), i.e. the per-inference DRAM traffic
    /// for weights that both accelerator simulators charge identically.
    pub fn weight_parameter_words(&self) -> u64 {
        let mut words = 0u64;
        for sw in &self.stages {
            let embed = sw.stage.embed_dim as u64;
            let attn_width = (sw.stage.heads * sw.stage.head_dim) as u64;
            let hidden = (sw.stage.embed_dim as f32 * sw.stage.mlp_ratio) as u64;
            words += (3 * embed * attn_width + attn_width * embed + 2 * embed * hidden)
                * sw.stage.layers as u64;
        }
        words + self.backbone_macs / 64
    }

    /// End-to-end operation total when the model uses the vanilla attention.
    pub fn end_to_end_vanilla_ops(&self) -> u64 {
        self.vanilla_attention_ops().total() + 2 * self.non_attention_macs()
    }

    /// End-to-end operation total when the model uses the Taylor attention.
    pub fn end_to_end_taylor_ops(&self) -> u64 {
        self.taylor_attention_ops().total() + 2 * self.non_attention_macs()
    }

    /// Closed-form totals from the paper's per-head formulas, used to cross-check the
    /// per-step accounting (they agree to within the pre/post-processing bookkeeping).
    pub fn closed_form_totals(&self) -> (OpCounts, OpCounts) {
        let mut vanilla = OpCounts::zero();
        let mut taylor = OpCounts::zero();
        for sw in &self.stages {
            let factor = (sw.stage.heads * sw.stage.layers) as u64;
            vanilla += vanilla_softmax_ops(sw.stage.tokens, sw.stage.head_dim).scaled(factor);
            taylor += taylor_attention_ops(sw.stage.tokens, sw.stage.head_dim).scaled(factor);
        }
        (vanilla, taylor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_tiny_matches_table1_within_tolerance() {
        // Table I reports (in millions): ViTALiTy 58.3 Mul / 61.0 Add / 0.5 Div,
        // BASELINE 178.8 Mul / 180.2 Add / 1.4 Exp / 1.4 Div.
        let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
        let vanilla = wl.vanilla_attention_ops();
        let taylor = wl.taylor_attention_ops();
        let close = |measured: u64, paper_millions: f64, tol: f64| {
            let measured = measured as f64 / 1e6;
            assert!(
                (measured - paper_millions).abs() / paper_millions < tol,
                "measured {measured:.1}M vs paper {paper_millions}M"
            );
        };
        close(vanilla.mul, 178.8, 0.05);
        close(vanilla.exp, 1.4, 0.1);
        close(vanilla.div, 1.4, 0.1);
        close(taylor.mul, 58.3, 0.05);
        close(taylor.add, 61.0, 0.10);
        close(taylor.div, 0.5, 0.25);
        assert_eq!(taylor.exp, 0);
    }

    #[test]
    fn mobilevit_xs_matches_table1_within_tolerance() {
        // Table I: ViTALiTy 4.8 M Mul, BASELINE 28.4 M Mul (5.9x).
        let wl = ModelWorkload::for_model(&ModelConfig::mobilevit_xs());
        let vanilla = wl.vanilla_attention_ops().mul as f64 / 1e6;
        let taylor = wl.taylor_attention_ops().mul as f64 / 1e6;
        assert!(
            (vanilla - 28.4).abs() / 28.4 < 0.10,
            "vanilla {vanilla:.1}M"
        );
        assert!((taylor - 4.8).abs() / 4.8 < 0.15, "taylor {taylor:.1}M");
        let ratio = vanilla / taylor;
        assert!(ratio > 4.5 && ratio < 7.5, "ratio {ratio:.1}");
    }

    #[test]
    fn levit_128_ratio_exceeds_the_other_models() {
        // The paper reports ratios ~3.1x (DeiT-Tiny), ~5.9x (MobileViT-xs), ~10.7x
        // (LeViT-128); the reproduction preserves the ordering.
        let ratio = |cfg: &ModelConfig| {
            let wl = ModelWorkload::for_model(cfg);
            wl.vanilla_attention_ops().mul as f64 / wl.taylor_attention_ops().mul as f64
        };
        let deit = ratio(&ModelConfig::deit_tiny());
        let mobile = ratio(&ModelConfig::mobilevit_xs());
        let levit = ratio(&ModelConfig::levit_128());
        assert!(
            deit < mobile && mobile < levit,
            "{deit:.1} {mobile:.1} {levit:.1}"
        );
        assert!(levit > 6.0, "LeViT ratio {levit:.1}");
    }

    #[test]
    fn per_step_totals_track_closed_form_totals() {
        for cfg in ModelConfig::all_models() {
            let wl = ModelWorkload::for_model(&cfg);
            let (vanilla_cf, taylor_cf) = wl.closed_form_totals();
            let vanilla = wl.vanilla_attention_ops();
            let taylor = wl.taylor_attention_ops();
            let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64).max(1.0);
            assert!(rel(vanilla.mul, vanilla_cf.mul) < 0.01, "{}", cfg.name);
            // The per-step Taylor accounting differs from the closed form only by small
            // bookkeeping terms in the pre/post-processing steps.
            assert!(rel(taylor.mul, taylor_cf.mul) < 0.05, "{}", cfg.name);
            assert!(rel(taylor.add, taylor_cf.add) < 0.30, "{}", cfg.name);
        }
    }

    #[test]
    fn taylor_steps_cover_algorithm_1_and_vanilla_covers_fig2() {
        let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
        assert_eq!(wl.stages[0].taylor_steps.len(), 6);
        assert_eq!(wl.stages[0].vanilla_steps.len(), 2);
        assert_eq!(AttentionStep::taylor_steps().len(), 6);
        assert_eq!(AttentionStep::vanilla_steps().len(), 2);
        for s in AttentionStep::taylor_steps() {
            assert!(!s.label().is_empty());
        }
        assert_eq!(AttentionStep::QkvProjection.label(), "Q,K,V projection");
    }

    #[test]
    fn end_to_end_totals_include_the_backbone() {
        let wl = ModelWorkload::for_model(&ModelConfig::mobilevit_xs());
        assert!(wl.non_attention_macs() > wl.linear_macs());
        assert!(wl.end_to_end_vanilla_ops() > wl.end_to_end_taylor_ops());
        let deit = ModelWorkload::for_model(&ModelConfig::deit_tiny());
        assert_eq!(deit.non_attention_macs(), deit.linear_macs());
    }

    #[test]
    fn softmax_step_dominates_vanilla_attention_ops() {
        // The motivation of Fig. 1: Step 2 is the bottleneck of the MHA module.
        let wl = ModelWorkload::for_model(&ModelConfig::deit_tiny());
        let stage = &wl.stages[0];
        let softmax = stage.vanilla_steps[0].ops.total();
        let score = stage.vanilla_steps[1].ops.total();
        assert!(softmax > score);
    }
}
