//! Model configurations for the seven ViT models evaluated in the paper.

use serde::{Deserialize, Serialize};

/// Which family a model belongs to (used for labelling experiment output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Vanilla (isotropic) ViTs: DeiT-Tiny/Small/Base.
    Deit,
    /// Lightweight hybrid CNN+ViT models: MobileViT-xxs/xs.
    MobileVit,
    /// Hybrid multi-stage models with attention downsampling: LeViT-128s/128.
    Levit,
}

/// One stage of a (possibly hierarchical) ViT: a run of identical Transformer layers over
/// a fixed token count.
///
/// Isotropic models such as DeiT have exactly one stage; MobileViT and LeViT have three
/// stages with decreasing token counts and increasing widths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageConfig {
    /// Number of tokens `n` entering the attention of this stage.
    pub tokens: usize,
    /// Embedding (model) dimension used by the projections and the MLP.
    pub embed_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Per-head feature dimension `d` used by the attention op-count model.
    pub head_dim: usize,
    /// Number of Transformer layers in the stage.
    pub layers: usize,
    /// MLP expansion ratio (hidden = embed_dim * mlp_ratio).
    pub mlp_ratio: f32,
}

impl StageConfig {
    /// Token-to-head-dimension ratio `n / d`, the quantity the paper's Eq. (1)–(3) show
    /// governs the theoretical speedup of the Taylor attention.
    pub fn n_over_d(&self) -> f64 {
        self.tokens as f64 / self.head_dim as f64
    }
}

/// Full workload description of one ViT model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name matching the paper's tables ("DeiT-Tiny", "LeViT-128", ...).
    pub name: &'static str,
    /// Model family.
    pub family: ModelFamily,
    /// Input resolution assumed by the workload model (pixels per side).
    pub resolution: usize,
    /// The attention stages.
    pub stages: Vec<StageConfig>,
    /// Multiply–accumulate count of the non-Transformer backbone (the convolutional stem
    /// and MobileNet-style blocks of MobileViT / LeViT). Zero for DeiT.
    pub backbone_macs: u64,
}

impl ModelConfig {
    /// DeiT-Tiny: 12 layers, 196 patches + class token, 192-dim embedding, 3 heads.
    pub fn deit_tiny() -> Self {
        Self {
            name: "DeiT-Tiny",
            family: ModelFamily::Deit,
            resolution: 224,
            stages: vec![StageConfig {
                tokens: 197,
                embed_dim: 192,
                heads: 3,
                head_dim: 64,
                layers: 12,
                mlp_ratio: 4.0,
            }],
            backbone_macs: 0,
        }
    }

    /// DeiT-Small: 12 layers, 384-dim embedding, 6 heads.
    pub fn deit_small() -> Self {
        Self {
            name: "DeiT-Small",
            family: ModelFamily::Deit,
            resolution: 224,
            stages: vec![StageConfig {
                tokens: 197,
                embed_dim: 384,
                heads: 6,
                head_dim: 64,
                layers: 12,
                mlp_ratio: 4.0,
            }],
            backbone_macs: 0,
        }
    }

    /// DeiT-Base: 12 layers, 768-dim embedding, 12 heads.
    pub fn deit_base() -> Self {
        Self {
            name: "DeiT-Base",
            family: ModelFamily::Deit,
            resolution: 224,
            stages: vec![StageConfig {
                tokens: 197,
                embed_dim: 768,
                heads: 12,
                head_dim: 64,
                layers: 12,
                mlp_ratio: 4.0,
            }],
            backbone_macs: 0,
        }
    }

    /// MobileViT-xxs: three transformer stages (64/80/96 wide) over 256/64/16 tokens.
    pub fn mobilevit_xxs() -> Self {
        Self {
            name: "MobileViT-xxs",
            family: ModelFamily::MobileVit,
            resolution: 256,
            stages: vec![
                StageConfig {
                    tokens: 256,
                    embed_dim: 64,
                    heads: 4,
                    head_dim: 16,
                    layers: 2,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 64,
                    embed_dim: 80,
                    heads: 4,
                    head_dim: 20,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 16,
                    embed_dim: 96,
                    heads: 4,
                    head_dim: 24,
                    layers: 3,
                    mlp_ratio: 2.0,
                },
            ],
            backbone_macs: 250_000_000,
        }
    }

    /// MobileViT-xs: three transformer stages (96/120/144 wide) over 256/64/16 tokens.
    ///
    /// With these dimensions the attention operation counts land within a few percent of
    /// the paper's Table I (28.4 M vanilla multiplications vs 4.8 M for ViTALiTy).
    pub fn mobilevit_xs() -> Self {
        Self {
            name: "MobileViT-xs",
            family: ModelFamily::MobileVit,
            resolution: 256,
            stages: vec![
                StageConfig {
                    tokens: 256,
                    embed_dim: 96,
                    heads: 4,
                    head_dim: 24,
                    layers: 2,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 64,
                    embed_dim: 120,
                    heads: 4,
                    head_dim: 30,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 16,
                    embed_dim: 144,
                    heads: 4,
                    head_dim: 36,
                    layers: 3,
                    mlp_ratio: 2.0,
                },
            ],
            backbone_macs: 600_000_000,
        }
    }

    /// LeViT-128s: three stages (128/256/384 wide), 2/3/4 layers, 16-dim attention keys.
    ///
    /// LeViT uses a 16-dimensional key space per head (the paper quotes the per-stage
    /// `n/d` ratios 12.25 / 3 / 1), so the op-count model uses `head_dim = 16`.
    pub fn levit_128s() -> Self {
        Self {
            name: "LeViT-128s",
            family: ModelFamily::Levit,
            resolution: 224,
            stages: vec![
                StageConfig {
                    tokens: 196,
                    embed_dim: 128,
                    heads: 4,
                    head_dim: 16,
                    layers: 2,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 49,
                    embed_dim: 256,
                    heads: 6,
                    head_dim: 16,
                    layers: 3,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 16,
                    embed_dim: 384,
                    heads: 8,
                    head_dim: 16,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
            ],
            backbone_macs: 200_000_000,
        }
    }

    /// LeViT-128: three stages (128/256/384 wide), 4/4/4 layers, 16-dim attention keys.
    pub fn levit_128() -> Self {
        Self {
            name: "LeViT-128",
            family: ModelFamily::Levit,
            resolution: 224,
            stages: vec![
                StageConfig {
                    tokens: 196,
                    embed_dim: 128,
                    heads: 4,
                    head_dim: 16,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 49,
                    embed_dim: 256,
                    heads: 8,
                    head_dim: 16,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
                StageConfig {
                    tokens: 16,
                    embed_dim: 384,
                    heads: 12,
                    head_dim: 16,
                    layers: 4,
                    mlp_ratio: 2.0,
                },
            ],
            backbone_macs: 300_000_000,
        }
    }

    /// Every model evaluated in the paper, in the order of Fig. 10 / Fig. 11 / Fig. 12.
    pub fn all_models() -> Vec<ModelConfig> {
        vec![
            Self::deit_tiny(),
            Self::deit_small(),
            Self::deit_base(),
            Self::mobilevit_xxs(),
            Self::mobilevit_xs(),
            Self::levit_128s(),
            Self::levit_128(),
        ]
    }

    /// The three models used in Table I / Table II.
    pub fn table1_models() -> Vec<ModelConfig> {
        vec![Self::deit_tiny(), Self::mobilevit_xs(), Self::levit_128()]
    }

    /// Total number of Transformer layers across all stages.
    pub fn total_layers(&self) -> usize {
        self.stages.iter().map(|s| s.layers).sum()
    }

    /// Largest token count of any stage (which dictates attention-buffer sizing).
    pub fn max_tokens(&self) -> usize {
        self.stages.iter().map(|s| s.tokens).max().unwrap_or(0)
    }
}

/// Configuration of the *trainable* ViT used by the synthetic-data accuracy experiments.
///
/// The full ImageNet-scale models cannot be trained inside this reproduction, so the
/// accuracy study trains a scaled-down ViT whose structure (patch embedding, pre-norm
/// Transformer blocks, pluggable attention, mean-pooled classification head) matches the
/// full models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Input image side length in pixels.
    pub image_size: usize,
    /// Patch side length in pixels.
    pub patch_size: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Number of Transformer layers.
    pub layers: usize,
    /// MLP expansion ratio.
    pub mlp_ratio: f32,
    /// Number of output classes.
    pub classes: usize,
}

impl TrainConfig {
    /// A small configuration that trains in seconds and still separates the attention
    /// variants clearly (used by unit/integration tests).
    pub fn tiny() -> Self {
        Self {
            image_size: 16,
            patch_size: 4,
            embed_dim: 16,
            heads: 2,
            layers: 2,
            mlp_ratio: 2.0,
            classes: 4,
        }
    }

    /// The configuration used by the accuracy experiments (Fig. 10 / 13 / 14 / 15).
    pub fn experiment() -> Self {
        Self {
            image_size: 24,
            patch_size: 4,
            embed_dim: 32,
            heads: 4,
            layers: 3,
            mlp_ratio: 2.0,
            classes: 6,
        }
    }

    /// Number of patch tokens.
    pub fn tokens(&self) -> usize {
        let per_side = self.image_size / self.patch_size;
        per_side * per_side
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        self.embed_dim / self.heads
    }

    /// Validates the configuration's divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics when the image is not divisible into patches or the embedding dimension is
    /// not divisible by the head count.
    pub fn validate(&self) {
        assert!(
            self.image_size.is_multiple_of(self.patch_size),
            "image size must be divisible by the patch size"
        );
        assert!(
            self.embed_dim.is_multiple_of(self.heads),
            "embedding dimension must be divisible by the head count"
        );
        assert!(
            self.layers > 0 && self.classes > 1,
            "degenerate training configuration"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_tiny_matches_paper_dimensions() {
        let cfg = ModelConfig::deit_tiny();
        assert_eq!(cfg.stages.len(), 1);
        let s = cfg.stages[0];
        assert_eq!(s.tokens, 197);
        assert_eq!(s.heads, 3);
        assert_eq!(s.head_dim, 64);
        assert_eq!(s.embed_dim, 192);
        assert_eq!(cfg.total_layers(), 12);
        assert_eq!(cfg.max_tokens(), 197);
        // n/d ≈ 3 as quoted in the paper.
        assert!((s.n_over_d() - 3.08).abs() < 0.05);
    }

    #[test]
    fn levit_stage_ratios_match_the_papers_quote() {
        // "12.25, 3, 1 for the three stages in LeViT-128/128s".
        let cfg = ModelConfig::levit_128();
        let ratios: Vec<f64> = cfg.stages.iter().map(StageConfig::n_over_d).collect();
        assert!((ratios[0] - 12.25).abs() < 1e-9);
        assert!((ratios[1] - 3.0625).abs() < 0.1);
        assert!((ratios[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_models_cover_the_papers_figure_order() {
        let names: Vec<&str> = ModelConfig::all_models().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "DeiT-Tiny",
                "DeiT-Small",
                "DeiT-Base",
                "MobileViT-xxs",
                "MobileViT-xs",
                "LeViT-128s",
                "LeViT-128"
            ]
        );
        assert_eq!(ModelConfig::table1_models().len(), 3);
    }

    #[test]
    fn hierarchical_models_shrink_tokens_and_grow_width() {
        for cfg in [ModelConfig::mobilevit_xs(), ModelConfig::levit_128()] {
            for pair in cfg.stages.windows(2) {
                assert!(
                    pair[0].tokens > pair[1].tokens,
                    "{}: tokens must shrink",
                    cfg.name
                );
                assert!(
                    pair[0].embed_dim <= pair[1].embed_dim,
                    "{}: width must not shrink",
                    cfg.name
                );
            }
            assert!(
                cfg.backbone_macs > 0,
                "{} has a convolutional backbone",
                cfg.name
            );
        }
    }

    #[test]
    fn deit_models_grow_monotonically() {
        let tiny = ModelConfig::deit_tiny().stages[0].embed_dim;
        let small = ModelConfig::deit_small().stages[0].embed_dim;
        let base = ModelConfig::deit_base().stages[0].embed_dim;
        assert!(tiny < small && small < base);
    }

    #[test]
    fn train_config_accessors_and_validation() {
        let cfg = TrainConfig::tiny();
        cfg.validate();
        assert_eq!(cfg.tokens(), 16);
        assert_eq!(cfg.head_dim(), 8);
        let exp = TrainConfig::experiment();
        exp.validate();
        assert_eq!(exp.tokens(), 36);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn train_config_rejects_bad_patching() {
        TrainConfig {
            image_size: 10,
            patch_size: 4,
            ..TrainConfig::tiny()
        }
        .validate();
    }
}
