//! Multi-head attention and the Transformer block with a pluggable attention variant.

use rand::Rng;
use rayon::prelude::*;

use vitality_attention::{
    mean_center_keys, AttentionMechanism, SangerSparseAttention, SoftmaxAttention, TaylorAttention,
    UnifiedLowRankSparseAttention,
};
use vitality_autograd::{Graph, Var};
use vitality_nn::registry::{NamedParameters, ParamRegistry};
use vitality_nn::{Activation, LayerNorm, Linear, Mlp};
use vitality_tensor::Matrix;

/// Which attention mechanism a model uses, covering every training scheme of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttentionVariant {
    /// Vanilla softmax attention (BASELINE).
    Softmax,
    /// ViTALiTy linear Taylor attention (LOWRANK / ViTALiTy inference).
    Taylor,
    /// Taylor attention without key mean-centring (ablation).
    TaylorNoCentering,
    /// Sanger-style sparse attention with the given threshold (SPARSE).
    Sparse {
        /// Sparsity threshold applied to the predicted attention.
        threshold: f32,
    },
    /// Unified low-rank + sparse attention with the given threshold (ViTALiTy training).
    Unified {
        /// Sparsity threshold of the sparse component.
        threshold: f32,
    },
}

impl AttentionVariant {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            AttentionVariant::Softmax => "softmax",
            AttentionVariant::Taylor => "taylor",
            AttentionVariant::TaylorNoCentering => "taylor-no-centering",
            AttentionVariant::Sparse { .. } => "sparse",
            AttentionVariant::Unified { .. } => "unified",
        }
    }

    /// Per-head inference computation.
    pub fn infer(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        match *self {
            AttentionVariant::Softmax => SoftmaxAttention::new().compute(q, k, v),
            AttentionVariant::Taylor => TaylorAttention::new().compute(q, k, v),
            AttentionVariant::TaylorNoCentering => {
                TaylorAttention::without_mean_centering().compute(q, k, v)
            }
            AttentionVariant::Sparse { threshold } => {
                SangerSparseAttention::new(threshold).compute(q, k, v)
            }
            AttentionVariant::Unified { threshold } => {
                UnifiedLowRankSparseAttention::new(threshold).compute(q, k, v)
            }
        }
    }

    /// Per-head training computation on the autograd tape.
    pub fn forward_train(&self, q: &Var, k: &Var, v: &Var) -> Var {
        match *self {
            AttentionVariant::Softmax => SoftmaxAttention::new().forward_train(q, k, v),
            AttentionVariant::Taylor => TaylorAttention::new().forward_train(q, k, v),
            AttentionVariant::TaylorNoCentering => {
                TaylorAttention::without_mean_centering().forward_train(q, k, v)
            }
            AttentionVariant::Sparse { threshold } => sparse_forward_train(threshold, q, k, v),
            AttentionVariant::Unified { threshold } => {
                UnifiedLowRankSparseAttention::new(threshold).forward_train(q, k, v)
            }
        }
    }

    /// Fraction of non-zero entries in the training-time sparse component (Fig. 14);
    /// zero for variants without a sparse component.
    pub fn sparse_occupancy(&self, q: &Matrix, k: &Matrix) -> f32 {
        match *self {
            AttentionVariant::Unified { threshold } => {
                UnifiedLowRankSparseAttention::new(threshold).sparse_occupancy(q, k)
            }
            AttentionVariant::Sparse { threshold } => SangerSparseAttention::new(threshold)
                .prediction_mask(q, &mean_center_keys(k))
                .sparsity()
                .mul_add(-1.0, 1.0),
            _ => 0.0,
        }
    }
}

/// Differentiable Sanger-style sparse attention: the mask comes from the quantized
/// prediction (treated as a constant), the surviving probabilities are renormalised per
/// row, gradients flow through the full-precision path only.
fn sparse_forward_train(threshold: f32, q: &Var, k: &Var, v: &Var) -> Var {
    let d = q.shape().1 as f32;
    let mask = SangerSparseAttention::new(threshold).prediction_mask(&q.value(), &k.value());
    let probs = q
        .matmul_transpose_b(k)
        .scale(1.0 / d.sqrt())
        .softmax_rows()
        .apply_mask(&mask);
    let renormalised = probs.broadcast_div_col(&probs.row_sum().add_scalar(1e-9));
    renormalised.matmul(v)
}

/// Multi-head attention module: Q/K/V projections, per-head attention, head merge and the
/// output projection.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
}

impl MultiHeadAttention {
    /// Creates a multi-head attention over `embed_dim` features with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics when `embed_dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, embed_dim: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && embed_dim.is_multiple_of(heads),
            "embed_dim must divide evenly into heads"
        );
        Self {
            wq: Linear::new(rng, embed_dim, embed_dim, true),
            wk: Linear::new(rng, embed_dim, embed_dim, true),
            wv: Linear::new(rng, embed_dim, embed_dim, true),
            wo: Linear::new(rng, embed_dim, embed_dim, true),
            heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        self.wq.out_features() / self.heads
    }

    /// Training forward pass with the given attention variant.
    pub fn forward_train(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        variant: AttentionVariant,
        x: &Var,
    ) -> Var {
        let q = self.wq.forward(graph, reg, &format!("{prefix}.wq"), x);
        let k = self.wk.forward(graph, reg, &format!("{prefix}.wk"), x);
        let v = self.wv.forward(graph, reg, &format!("{prefix}.wv"), x);
        let hd = self.head_dim();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            head_outputs.push(variant.forward_train(&qh, &kh, &vh));
        }
        let merged = Var::concat_cols(&head_outputs);
        self.wo
            .forward(graph, reg, &format!("{prefix}.wo"), &merged)
    }

    /// Inference forward pass with the given attention variant.
    ///
    /// Heads are data-independent, so the per-head attention computations fan out over
    /// rayon worker threads and the head outputs are merged back in column order.
    pub fn infer(&self, variant: AttentionVariant, x: &Matrix) -> Matrix {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let hd = self.head_dim();
        let head_outputs: Vec<Matrix> = (0..self.heads)
            .into_par_iter()
            .map(|h| {
                let (lo, hi) = (h * hd, (h + 1) * hd);
                variant.infer(
                    &q.slice_cols(lo, hi),
                    &k.slice_cols(lo, hi),
                    &v.slice_cols(lo, hi),
                )
            })
            .collect();
        let mut merged = Matrix::zeros(x.rows(), self.heads * hd);
        for (h, z) in head_outputs.iter().enumerate() {
            let lo = h * hd;
            for r in 0..z.rows() {
                merged.row_mut(r)[lo..lo + hd].copy_from_slice(z.row(r));
            }
        }
        self.wo.infer(&merged)
    }

    /// Per-head scaled attention logits (raw and mean-centred), used by the Fig. 3
    /// distribution probe.
    pub fn head_logits(&self, x: &Matrix) -> Vec<(Matrix, Matrix)> {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let hd = self.head_dim();
        (0..self.heads)
            .map(|h| {
                let (lo, hi) = (h * hd, (h + 1) * hd);
                let qh = q.slice_cols(lo, hi);
                let kh = k.slice_cols(lo, hi);
                let raw = vitality_attention::softmax::scaled_similarity(&qh, &kh);
                let centred =
                    vitality_attention::softmax::scaled_similarity(&qh, &mean_center_keys(&kh));
                (raw, centred)
            })
            .collect()
    }

    /// Mean sparse-component occupancy across heads (Fig. 14 probe).
    pub fn sparse_occupancy(&self, variant: AttentionVariant, x: &Matrix) -> f32 {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let hd = self.head_dim();
        let mut total = 0.0;
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            total += variant.sparse_occupancy(&q.slice_cols(lo, hi), &k.slice_cols(lo, hi));
        }
        total / self.heads as f32
    }
}

impl NamedParameters for MultiHeadAttention {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.wq.visit_parameters(&format!("{prefix}.wq"), visitor);
        self.wk.visit_parameters(&format!("{prefix}.wk"), visitor);
        self.wv.visit_parameters(&format!("{prefix}.wv"), visitor);
        self.wo.visit_parameters(&format!("{prefix}.wo"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.wq
            .visit_parameters_mut(&format!("{prefix}.wq"), visitor);
        self.wk
            .visit_parameters_mut(&format!("{prefix}.wk"), visitor);
        self.wv
            .visit_parameters_mut(&format!("{prefix}.wv"), visitor);
        self.wo
            .visit_parameters_mut(&format!("{prefix}.wo"), visitor);
    }
}

/// A pre-norm Transformer block: `x + MHA(LN(x))` followed by `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: LayerNorm,
    attn: MultiHeadAttention,
    norm2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block over `embed_dim` features with `heads` heads and the given MLP
    /// expansion ratio.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        embed_dim: usize,
        heads: usize,
        mlp_ratio: f32,
    ) -> Self {
        let hidden = ((embed_dim as f32) * mlp_ratio).round().max(1.0) as usize;
        Self {
            norm1: LayerNorm::new(embed_dim),
            attn: MultiHeadAttention::new(rng, embed_dim, heads),
            norm2: LayerNorm::new(embed_dim),
            mlp: Mlp::new(rng, embed_dim, hidden, Activation::Gelu),
        }
    }

    /// The block's attention module.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// Training forward pass.
    pub fn forward_train(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        variant: AttentionVariant,
        x: &Var,
    ) -> Var {
        let normed = self
            .norm1
            .forward(graph, reg, &format!("{prefix}.norm1"), x);
        let attended =
            self.attn
                .forward_train(graph, reg, &format!("{prefix}.attn"), variant, &normed);
        let x = x.add(&attended);
        let normed = self
            .norm2
            .forward(graph, reg, &format!("{prefix}.norm2"), &x);
        let expanded = self
            .mlp
            .forward(graph, reg, &format!("{prefix}.mlp"), &normed);
        x.add(&expanded)
    }

    /// Inference forward pass.
    pub fn infer(&self, variant: AttentionVariant, x: &Matrix) -> Matrix {
        let attended = self.attn.infer(variant, &self.norm1.infer(x));
        let x = x.try_add(&attended).expect("residual shapes");
        let expanded = self.mlp.infer(&self.norm2.infer(&x));
        x.try_add(&expanded).expect("residual shapes")
    }
}

impl NamedParameters for TransformerBlock {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.norm1
            .visit_parameters(&format!("{prefix}.norm1"), visitor);
        self.attn
            .visit_parameters(&format!("{prefix}.attn"), visitor);
        self.norm2
            .visit_parameters(&format!("{prefix}.norm2"), visitor);
        self.mlp.visit_parameters(&format!("{prefix}.mlp"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.norm1
            .visit_parameters_mut(&format!("{prefix}.norm1"), visitor);
        self.attn
            .visit_parameters_mut(&format!("{prefix}.attn"), visitor);
        self.norm2
            .visit_parameters_mut(&format!("{prefix}.norm2"), visitor);
        self.mlp
            .visit_parameters_mut(&format!("{prefix}.mlp"), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    fn tokens(n: usize, d: usize, seed: u64) -> Matrix {
        init::normal(&mut StdRng::seed_from_u64(seed), n, d, 0.0, 0.5)
    }

    #[test]
    fn mha_output_shape_and_parameters() {
        let mut rng = StdRng::seed_from_u64(100);
        let mha = MultiHeadAttention::new(&mut rng, 16, 4);
        assert_eq!(mha.heads(), 4);
        assert_eq!(mha.head_dim(), 4);
        assert_eq!(mha.parameter_count(), 4 * (16 * 16 + 16));
        let x = tokens(9, 16, 1);
        let y = mha.infer(AttentionVariant::Softmax, &x);
        assert_eq!(y.shape(), (9, 16));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn mha_rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(101);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3);
    }

    #[test]
    fn forward_train_matches_infer_for_every_variant() {
        let mut rng = StdRng::seed_from_u64(102);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = tokens(6, 8, 2);
        for variant in [
            AttentionVariant::Softmax,
            AttentionVariant::Taylor,
            AttentionVariant::TaylorNoCentering,
            AttentionVariant::Sparse { threshold: 0.05 },
            AttentionVariant::Unified { threshold: 0.1 },
        ] {
            let graph = Graph::new();
            let mut reg = ParamRegistry::new();
            let xv = graph.constant(x.clone());
            let trained = mha.forward_train(&graph, &mut reg, "attn", variant, &xv);
            let inferred = mha.infer(variant, &x);
            assert!(
                trained.value().approx_eq(&inferred, 2e-2),
                "variant {} diverges: {}",
                variant.label(),
                trained.value().max_abs_diff(&inferred)
            );
        }
    }

    #[test]
    fn gradients_flow_through_all_projections() {
        let mut rng = StdRng::seed_from_u64(103);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let x = graph.constant(tokens(5, 8, 3));
        let y = mha.forward_train(&graph, &mut reg, "attn", AttentionVariant::Taylor, &x);
        let grads = graph.backward(&y.mean_all());
        for name in [
            "attn.wq.weight",
            "attn.wk.weight",
            "attn.wv.weight",
            "attn.wo.weight",
        ] {
            assert!(reg.grad(name, &grads).is_some(), "missing {name}");
        }
    }

    #[test]
    fn head_logits_and_sparse_occupancy_probe() {
        let mut rng = StdRng::seed_from_u64(104);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = tokens(7, 8, 4);
        let logits = mha.head_logits(&x);
        assert_eq!(logits.len(), 2);
        assert_eq!(logits[0].0.shape(), (7, 7));
        assert_eq!(logits[0].1.shape(), (7, 7));
        let occupancy = mha.sparse_occupancy(AttentionVariant::Unified { threshold: 0.5 }, &x);
        assert!((0.0..=1.0).contains(&occupancy));
        assert_eq!(mha.sparse_occupancy(AttentionVariant::Taylor, &x), 0.0);
    }

    #[test]
    fn transformer_block_train_matches_infer() {
        let mut rng = StdRng::seed_from_u64(105);
        let block = TransformerBlock::new(&mut rng, 8, 2, 2.0);
        let x = tokens(6, 8, 5);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = block.forward_train(
            &graph,
            &mut reg,
            "block0",
            AttentionVariant::Softmax,
            &graph.constant(x.clone()),
        );
        assert!(y
            .value()
            .approx_eq(&block.infer(AttentionVariant::Softmax, &x), 1e-3));
        assert!(block.parameter_count() > 0);
        assert_eq!(block.attention().heads(), 2);
    }

    #[test]
    fn variant_labels_are_stable() {
        assert_eq!(AttentionVariant::Softmax.label(), "softmax");
        assert_eq!(AttentionVariant::Taylor.label(), "taylor");
        assert_eq!(
            AttentionVariant::Sparse { threshold: 0.1 }.label(),
            "sparse"
        );
        assert_eq!(
            AttentionVariant::Unified { threshold: 0.1 }.label(),
            "unified"
        );
        assert_eq!(
            AttentionVariant::TaylorNoCentering.label(),
            "taylor-no-centering"
        );
    }
}
