//! Multi-head attention and the Transformer block with a pluggable attention kernel.
//!
//! [`AttentionVariant`] is the *configuration* — a small copyable enum naming which
//! attention a model runs and its hyper-parameters. The *implementation* is an
//! [`AttentionKernel`] built **once** per model by [`AttentionVariant::kernel`] and held
//! behind an `Arc` inside every [`MultiHeadAttention`]; the inference hot path never
//! constructs an attention object, never matches on the variant, and draws every
//! intermediate (projections, per-head slices, head merges) from the caller's
//! [`Workspace`]. Adding a served variant therefore means implementing
//! `AttentionKernel` in `vitality-attention` and adding one arm to
//! [`AttentionVariant::kernel`] — nothing in this module's data flow changes.

use rand::Rng;
use std::sync::Arc;

use vitality_attention::{
    AttentionKernel, Int8Calibration, QuantizedTaylorKernel, QuantizedUnifiedKernel,
    SangerSparseAttention, SoftmaxAttention, TaylorAttention, UnifiedAttentionKernel,
};
use vitality_autograd::{Graph, Var};
use vitality_nn::registry::{NamedParameters, ParamRegistry};
use vitality_nn::{Activation, LayerNorm, Linear, Mlp};
use vitality_tensor::{Matrix, Workspace};

/// Which attention mechanism a model uses, covering every training scheme of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttentionVariant {
    /// Vanilla softmax attention (BASELINE).
    Softmax,
    /// ViTALiTy linear Taylor attention (LOWRANK / ViTALiTy inference).
    Taylor,
    /// Taylor attention without key mean-centring (ablation).
    TaylorNoCentering,
    /// Sanger-style sparse attention with the given threshold (SPARSE).
    Sparse {
        /// Sparsity threshold applied to the predicted attention.
        threshold: f32,
    },
    /// Unified low-rank + sparse attention with the given threshold (ViTALiTy training,
    /// served by the fused low-rank + SDDMM kernel).
    Unified {
        /// Sparsity threshold of the sparse component.
        threshold: f32,
    },
    /// Int8-quantized linear Taylor attention (the accelerator's integer inference
    /// path), served by `QuantizedTaylorKernel`. Build it with
    /// [`Int8Calibration::Dynamic`] or calibrate fixed scales on sample data with
    /// `VisionTransformer::calibrate_int8`.
    Int8Taylor {
        /// How the per-head quantization scales are derived.
        calibration: Int8Calibration,
    },
    /// Int8-quantized unified low-rank + sparse attention: the integer low-rank half
    /// plus the quantized-logit Sanger mask selecting the f32 strong residual.
    Int8Unified {
        /// Sparsity threshold of the sparse component.
        threshold: f32,
        /// How the per-head quantization scales are derived.
        calibration: Int8Calibration,
    },
}

impl AttentionVariant {
    /// Short label used in experiment output and as the `variant` half of serving
    /// registry keys; always equal to the built kernel's
    /// [`label`](AttentionKernel::label).
    pub fn label(&self) -> &'static str {
        match self {
            AttentionVariant::Softmax => "softmax",
            AttentionVariant::Taylor => "taylor",
            AttentionVariant::TaylorNoCentering => "taylor-no-centering",
            AttentionVariant::Sparse { .. } => "sparse",
            AttentionVariant::Unified { .. } => "unified",
            AttentionVariant::Int8Taylor { .. } => "int8",
            AttentionVariant::Int8Unified { .. } => "int8-unified",
        }
    }

    /// Builds the attention kernel this variant is served by.
    ///
    /// This is the single construction point: models call it once (at construction or
    /// on [`MultiHeadAttention::set_variant`]) and share the result across layers,
    /// heads, threads and requests.
    pub fn kernel(&self) -> Arc<dyn AttentionKernel> {
        match *self {
            AttentionVariant::Softmax => Arc::new(SoftmaxAttention::new()),
            AttentionVariant::Taylor => Arc::new(TaylorAttention::new()),
            AttentionVariant::TaylorNoCentering => {
                Arc::new(TaylorAttention::without_mean_centering())
            }
            AttentionVariant::Sparse { threshold } => {
                Arc::new(SangerSparseAttention::new(threshold))
            }
            AttentionVariant::Unified { threshold } => {
                Arc::new(UnifiedAttentionKernel::new(threshold))
            }
            AttentionVariant::Int8Taylor { calibration } => {
                Arc::new(QuantizedTaylorKernel::new(calibration))
            }
            AttentionVariant::Int8Unified {
                threshold,
                calibration,
            } => Arc::new(QuantizedUnifiedKernel::new(threshold, calibration)),
        }
    }

    /// One representative configuration of **every** variant arm, in declaration
    /// order — the iteration axis of the kernel conformance suite
    /// (`tests/kernel_conformance.rs`). A new variant arm must be added here; the
    /// suite's label-uniqueness check then covers it automatically, and forgetting the
    /// entry fails the `all_covers_every_arm` test below.
    pub fn all() -> Vec<AttentionVariant> {
        vec![
            AttentionVariant::Softmax,
            AttentionVariant::Taylor,
            AttentionVariant::TaylorNoCentering,
            AttentionVariant::Sparse { threshold: 0.02 },
            AttentionVariant::Unified { threshold: 0.1 },
            AttentionVariant::Int8Taylor {
                calibration: Int8Calibration::Dynamic,
            },
            AttentionVariant::Int8Unified {
                threshold: 0.1,
                calibration: Int8Calibration::Dynamic,
            },
        ]
    }
}

/// Multi-head attention module: Q/K/V projections, per-head attention through a kernel
/// built once from the configured [`AttentionVariant`], head merge and the output
/// projection.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    variant: AttentionVariant,
    kernel: Arc<dyn AttentionKernel>,
}

impl MultiHeadAttention {
    /// Creates a multi-head attention over `embed_dim` features with `heads` heads
    /// running the given attention variant.
    ///
    /// # Panics
    ///
    /// Panics when `embed_dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        embed_dim: usize,
        heads: usize,
        variant: AttentionVariant,
    ) -> Self {
        assert!(
            heads > 0 && embed_dim.is_multiple_of(heads),
            "embed_dim must divide evenly into heads"
        );
        Self {
            wq: Linear::new(rng, embed_dim, embed_dim, true),
            wk: Linear::new(rng, embed_dim, embed_dim, true),
            wv: Linear::new(rng, embed_dim, embed_dim, true),
            wo: Linear::new(rng, embed_dim, embed_dim, true),
            heads,
            variant,
            kernel: variant.kernel(),
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head feature dimension.
    pub fn head_dim(&self) -> usize {
        self.wq.out_features() / self.heads
    }

    /// The configured attention variant.
    pub fn variant(&self) -> AttentionVariant {
        self.variant
    }

    /// The kernel every head runs (shared, built once per variant switch).
    pub fn kernel(&self) -> &dyn AttentionKernel {
        self.kernel.as_ref()
    }

    /// Switches the attention variant, rebuilding the kernel exactly once.
    pub fn set_variant(&mut self, variant: AttentionVariant) {
        self.variant = variant;
        self.kernel = variant.kernel();
    }

    /// Training forward pass on the autograd tape (per-head kernel `forward_train`).
    pub fn forward_train(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        x: &Var,
    ) -> Var {
        let q = self.wq.forward(graph, reg, &format!("{prefix}.wq"), x);
        let k = self.wk.forward(graph, reg, &format!("{prefix}.wk"), x);
        let v = self.wv.forward(graph, reg, &format!("{prefix}.wv"), x);
        let hd = self.head_dim();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            head_outputs.push(self.kernel.forward_train(&qh, &kh, &vh));
        }
        let merged = Var::concat_cols(&head_outputs);
        self.wo
            .forward(graph, reg, &format!("{prefix}.wo"), &merged)
    }

    /// Inference forward pass (convenience wrapper over a throwaway workspace).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(x.rows(), self.wo.out_features());
        self.infer_into(x, &mut ws, &mut out);
        out
    }

    /// Allocation-free inference forward pass into `x.rows() x embed_dim` output
    /// storage.
    ///
    /// Projections, per-head slices, head outputs and the merge buffer all come from
    /// `ws`; heads run sequentially through the shared kernel (parallelism belongs to
    /// the per-image axis in `VisionTransformer::infer_batch`, which gives every worker
    /// thread its own workspace).
    ///
    /// # Panics
    ///
    /// Panics when the shapes are inconsistent.
    pub fn infer_into(&self, x: &Matrix, ws: &mut Workspace, out: &mut Matrix) {
        let n = x.rows();
        let e = self.wq.out_features();
        let hd = self.head_dim();
        let mut q = ws.take(n, e);
        let mut k = ws.take(n, e);
        let mut v = ws.take(n, e);
        self.wq.infer_into(x, &mut q);
        self.wk.infer_into(x, &mut k);
        self.wv.infer_into(x, &mut v);
        let mut merged = ws.take(n, e);
        let mut qh = ws.take(n, hd);
        let mut kh = ws.take(n, hd);
        let mut vh = ws.take(n, hd);
        let mut zh = ws.take(n, hd);
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            q.slice_cols_into(lo, hi, &mut qh);
            k.slice_cols_into(lo, hi, &mut kh);
            v.slice_cols_into(lo, hi, &mut vh);
            self.kernel.compute_into(&qh, &kh, &vh, ws, &mut zh);
            zh.place_cols_into(lo, &mut merged);
        }
        self.wo.infer_into(&merged, out);
        ws.recycle(q);
        ws.recycle(k);
        ws.recycle(v);
        ws.recycle(merged);
        ws.recycle(qh);
        ws.recycle(kh);
        ws.recycle(vh);
        ws.recycle(zh);
    }

    /// Per-head scaled attention logits (raw and mean-centred), used by the Fig. 3
    /// distribution probe.
    pub fn head_logits(&self, x: &Matrix) -> Vec<(Matrix, Matrix)> {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let hd = self.head_dim();
        (0..self.heads)
            .map(|h| {
                let (lo, hi) = (h * hd, (h + 1) * hd);
                let qh = q.slice_cols(lo, hi);
                let kh = k.slice_cols(lo, hi);
                let raw = vitality_attention::softmax::scaled_similarity(&qh, &kh);
                let centred = vitality_attention::softmax::scaled_similarity(
                    &qh,
                    &vitality_attention::mean_center_keys(&kh),
                );
                (raw, centred)
            })
            .collect()
    }

    /// Per-head absmax of the quantized int8 kernel's operands for one token matrix:
    /// the largest absolute query, *mean-centred* key and value activation across all
    /// heads. This is the measurement `VisionTransformer::calibrate_int8` aggregates
    /// into an [`Int8Calibration::Fixed`] range set.
    pub fn qkv_absmax(&self, x: &Matrix) -> (f32, f32, f32) {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let hd = self.head_dim();
        let absmax = |m: &Matrix| m.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
        let (mut q_max, mut k_max, mut v_max) = (0.0f32, 0.0f32, 0.0f32);
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            q_max = q_max.max(absmax(&q.slice_cols(lo, hi)));
            let kh = k.slice_cols(lo, hi);
            k_max = k_max.max(absmax(&vitality_attention::mean_center_keys(&kh)));
            v_max = v_max.max(absmax(&v.slice_cols(lo, hi)));
        }
        (q_max, k_max, v_max)
    }

    /// Mean sparse-component occupancy across heads (Fig. 14 probe); zero for kernels
    /// without a sparse component.
    pub fn sparse_occupancy(&self, x: &Matrix) -> f32 {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let hd = self.head_dim();
        let mut total = 0.0;
        for h in 0..self.heads {
            let (lo, hi) = (h * hd, (h + 1) * hd);
            total += self
                .kernel
                .sparse_occupancy(&q.slice_cols(lo, hi), &k.slice_cols(lo, hi));
        }
        total / self.heads as f32
    }
}

impl NamedParameters for MultiHeadAttention {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.wq.visit_parameters(&format!("{prefix}.wq"), visitor);
        self.wk.visit_parameters(&format!("{prefix}.wk"), visitor);
        self.wv.visit_parameters(&format!("{prefix}.wv"), visitor);
        self.wo.visit_parameters(&format!("{prefix}.wo"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.wq
            .visit_parameters_mut(&format!("{prefix}.wq"), visitor);
        self.wk
            .visit_parameters_mut(&format!("{prefix}.wk"), visitor);
        self.wv
            .visit_parameters_mut(&format!("{prefix}.wv"), visitor);
        self.wo
            .visit_parameters_mut(&format!("{prefix}.wo"), visitor);
    }
}

/// A pre-norm Transformer block: `x + MHA(LN(x))` followed by `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: LayerNorm,
    attn: MultiHeadAttention,
    norm2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block over `embed_dim` features with `heads` heads, the given MLP
    /// expansion ratio and attention variant.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        embed_dim: usize,
        heads: usize,
        mlp_ratio: f32,
        variant: AttentionVariant,
    ) -> Self {
        let hidden = ((embed_dim as f32) * mlp_ratio).round().max(1.0) as usize;
        Self {
            norm1: LayerNorm::new(embed_dim),
            attn: MultiHeadAttention::new(rng, embed_dim, heads, variant),
            norm2: LayerNorm::new(embed_dim),
            mlp: Mlp::new(rng, embed_dim, hidden, Activation::Gelu),
        }
    }

    /// The block's attention module.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// Per-head Q/K̂/V absmax of this block's attention *as it runs in the forward
    /// pass* — i.e. measured on the pre-norm output `LN(x)` the attention actually
    /// sees, which is what int8 calibration must observe.
    pub fn attention_qkv_absmax(&self, x: &Matrix, ws: &mut Workspace) -> (f32, f32, f32) {
        let mut normed = ws.take(x.rows(), x.cols());
        self.norm1.infer_into(x, &mut normed);
        let result = self.attn.qkv_absmax(&normed);
        ws.recycle(normed);
        result
    }

    /// Switches the attention variant (rebuilds the attention kernel once).
    pub fn set_variant(&mut self, variant: AttentionVariant) {
        self.attn.set_variant(variant);
    }

    /// Training forward pass.
    pub fn forward_train(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        x: &Var,
    ) -> Var {
        let normed = self
            .norm1
            .forward(graph, reg, &format!("{prefix}.norm1"), x);
        let attended = self
            .attn
            .forward_train(graph, reg, &format!("{prefix}.attn"), &normed);
        let x = x.add(&attended);
        let normed = self
            .norm2
            .forward(graph, reg, &format!("{prefix}.norm2"), &x);
        let expanded = self
            .mlp
            .forward(graph, reg, &format!("{prefix}.mlp"), &normed);
        x.add(&expanded)
    }

    /// Inference forward pass (convenience wrapper over a throwaway workspace).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        let mut ws = Workspace::new();
        self.infer_inplace(&mut out, &mut ws);
        out
    }

    /// Allocation-free inference forward pass, updating the token matrix in place.
    ///
    /// The two normalisation buffers and the residual-delta buffer come from `ws`; the
    /// attention sub-module draws its own intermediates from the same workspace.
    pub fn infer_inplace(&self, x: &mut Matrix, ws: &mut Workspace) {
        let (n, e) = x.shape();
        let mut normed = ws.take(n, e);
        let mut delta = ws.take(n, e);
        self.norm1.infer_into(x, &mut normed);
        self.attn.infer_into(&normed, ws, &mut delta);
        x.add_assign(&delta);
        self.norm2.infer_into(x, &mut normed);
        self.mlp.infer_into(&normed, ws, &mut delta);
        x.add_assign(&delta);
        ws.recycle(normed);
        ws.recycle(delta);
    }
}

impl NamedParameters for TransformerBlock {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.norm1
            .visit_parameters(&format!("{prefix}.norm1"), visitor);
        self.attn
            .visit_parameters(&format!("{prefix}.attn"), visitor);
        self.norm2
            .visit_parameters(&format!("{prefix}.norm2"), visitor);
        self.mlp.visit_parameters(&format!("{prefix}.mlp"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.norm1
            .visit_parameters_mut(&format!("{prefix}.norm1"), visitor);
        self.attn
            .visit_parameters_mut(&format!("{prefix}.attn"), visitor);
        self.norm2
            .visit_parameters_mut(&format!("{prefix}.norm2"), visitor);
        self.mlp
            .visit_parameters_mut(&format!("{prefix}.mlp"), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    fn tokens(n: usize, d: usize, seed: u64) -> Matrix {
        init::normal(&mut StdRng::seed_from_u64(seed), n, d, 0.0, 0.5)
    }

    #[test]
    fn mha_output_shape_and_parameters() {
        let mut rng = StdRng::seed_from_u64(100);
        let mha = MultiHeadAttention::new(&mut rng, 16, 4, AttentionVariant::Softmax);
        assert_eq!(mha.heads(), 4);
        assert_eq!(mha.head_dim(), 4);
        assert_eq!(mha.parameter_count(), 4 * (16 * 16 + 16));
        assert_eq!(mha.variant(), AttentionVariant::Softmax);
        assert_eq!(mha.kernel().label(), "softmax");
        let x = tokens(9, 16, 1);
        let y = mha.infer(&x);
        assert_eq!(y.shape(), (9, 16));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn mha_rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(101);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3, AttentionVariant::Softmax);
    }

    #[test]
    fn forward_train_matches_infer_for_every_variant() {
        let mut rng = StdRng::seed_from_u64(102);
        let mut mha = MultiHeadAttention::new(&mut rng, 8, 2, AttentionVariant::Softmax);
        let x = tokens(6, 8, 2);
        for variant in [
            AttentionVariant::Softmax,
            AttentionVariant::Taylor,
            AttentionVariant::TaylorNoCentering,
            AttentionVariant::Sparse { threshold: 0.05 },
            AttentionVariant::Unified { threshold: 0.1 },
        ] {
            mha.set_variant(variant);
            assert_eq!(mha.kernel().label(), variant.label());
            let graph = Graph::new();
            let mut reg = ParamRegistry::new();
            let xv = graph.constant(x.clone());
            let trained = mha.forward_train(&graph, &mut reg, "attn", &xv);
            let inferred = mha.infer(&x);
            assert!(
                trained.value().approx_eq(&inferred, 2e-2),
                "variant {} diverges: {}",
                variant.label(),
                trained.value().max_abs_diff(&inferred)
            );
        }
    }

    #[test]
    fn infer_into_reuses_a_warm_workspace_without_allocating() {
        let mut rng = StdRng::seed_from_u64(106);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2, AttentionVariant::Taylor);
        let x = tokens(6, 8, 6);
        let mut ws = Workspace::new();
        let mut out = Matrix::zeros(6, 8);
        mha.infer_into(&x, &mut ws, &mut out);
        let first = out.clone();
        let (checkouts, hits) = (ws.checkouts(), ws.pool_hits());
        mha.infer_into(&x, &mut ws, &mut out);
        assert_eq!(out, first, "workspace reuse must be bit-exact");
        assert_eq!(
            ws.checkouts() - checkouts,
            ws.pool_hits() - hits,
            "warm workspace must serve every checkout from the pool"
        );
    }

    #[test]
    fn gradients_flow_through_all_projections() {
        let mut rng = StdRng::seed_from_u64(103);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2, AttentionVariant::Taylor);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let x = graph.constant(tokens(5, 8, 3));
        let y = mha.forward_train(&graph, &mut reg, "attn", &x);
        let grads = graph.backward(&y.mean_all());
        for name in [
            "attn.wq.weight",
            "attn.wk.weight",
            "attn.wv.weight",
            "attn.wo.weight",
        ] {
            assert!(reg.grad(name, &grads).is_some(), "missing {name}");
        }
    }

    #[test]
    fn head_logits_and_sparse_occupancy_probe() {
        let mut rng = StdRng::seed_from_u64(104);
        let mut mha = MultiHeadAttention::new(&mut rng, 8, 2, AttentionVariant::Softmax);
        let x = tokens(7, 8, 4);
        let logits = mha.head_logits(&x);
        assert_eq!(logits.len(), 2);
        assert_eq!(logits[0].0.shape(), (7, 7));
        assert_eq!(logits[0].1.shape(), (7, 7));
        mha.set_variant(AttentionVariant::Unified { threshold: 0.5 });
        let occupancy = mha.sparse_occupancy(&x);
        assert!((0.0..=1.0).contains(&occupancy));
        mha.set_variant(AttentionVariant::Taylor);
        assert_eq!(mha.sparse_occupancy(&x), 0.0);
    }

    #[test]
    fn transformer_block_train_matches_infer() {
        let mut rng = StdRng::seed_from_u64(105);
        let block = TransformerBlock::new(&mut rng, 8, 2, 2.0, AttentionVariant::Softmax);
        let x = tokens(6, 8, 5);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = block.forward_train(&graph, &mut reg, "block0", &graph.constant(x.clone()));
        assert!(y.value().approx_eq(&block.infer(&x), 1e-3));
        assert!(block.parameter_count() > 0);
        assert_eq!(block.attention().heads(), 2);
    }

    #[test]
    fn variant_labels_match_their_kernels() {
        for variant in AttentionVariant::all() {
            assert_eq!(variant.kernel().label(), variant.label());
        }
        assert_eq!(AttentionVariant::Softmax.label(), "softmax");
        assert_eq!(AttentionVariant::Taylor.label(), "taylor");
        assert_eq!(
            AttentionVariant::TaylorNoCentering.label(),
            "taylor-no-centering"
        );
        assert_eq!(
            AttentionVariant::Int8Taylor {
                calibration: Int8Calibration::Dynamic
            }
            .label(),
            "int8"
        );
    }

    #[test]
    fn all_covers_every_arm() {
        // One entry per declared arm: a new variant must extend `all()` (and thereby
        // the conformance suite) before it can ship.
        let all = AttentionVariant::all();
        assert_eq!(all.len(), 7, "AttentionVariant::all() is missing an arm");
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "duplicate arm in all(): {a:?} / {b:?}"
                );
            }
        }
    }

    #[test]
    fn int8_variants_serve_through_the_mha_hot_path() {
        let mut rng = StdRng::seed_from_u64(107);
        let mut mha = MultiHeadAttention::new(&mut rng, 8, 2, AttentionVariant::Taylor);
        let x = tokens(6, 8, 7);
        let f32_out = mha.infer(&x);
        mha.set_variant(AttentionVariant::Int8Taylor {
            calibration: Int8Calibration::Dynamic,
        });
        assert_eq!(mha.kernel().label(), "int8");
        let int8_out = mha.infer(&x);
        assert_eq!(int8_out.shape(), f32_out.shape());
        assert!(int8_out.iter().all(|v| v.is_finite()));
        // Quantized but close: the projections dominate, attention differs at the
        // quantization step.
        assert!(f32_out.max_abs_diff(&int8_out) < 0.2);
        assert!(!f32_out.approx_eq(&int8_out, 1e-7), "int8 must quantize");
        let (q_max, k_max, v_max) = mha.qkv_absmax(&x);
        assert!(q_max > 0.0 && k_max > 0.0 && v_max > 0.0);
    }
}
