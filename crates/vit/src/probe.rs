//! Attention-distribution probing (the Fig. 3 study).
//!
//! The paper motivates the first-order Taylor expansion by showing that row-wise
//! mean-centring concentrates the attention logits in the interval `[-1, 1)`: up to 67%
//! of the entries fall inside it after centring versus 46% before. This module measures
//! the same statistic on a model and a batch of images.

use serde::{Deserialize, Serialize};

use crate::model::VisionTransformer;
use vitality_tensor::stats::{fraction_in_interval, Histogram};
use vitality_tensor::Matrix;

/// Distribution statistics of the attention logits of one Transformer layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionProbe {
    /// Layer index.
    pub layer: usize,
    /// Fraction of raw (un-centred) logits inside `[-1, 1)`.
    pub raw_in_unit_interval: f32,
    /// Fraction of mean-centred logits inside `[-1, 1)`.
    pub centered_in_unit_interval: f32,
    /// Normalised histogram densities of the raw logits over `[-4, 4)` (16 bins).
    pub raw_density: Vec<f32>,
    /// Normalised histogram densities of the centred logits over `[-4, 4)` (16 bins).
    pub centered_density: Vec<f32>,
}

const HIST_LO: f32 = -4.0;
const HIST_HI: f32 = 4.0;
const HIST_BINS: usize = 16;

/// Probes the attention-logit distribution of every layer of `model` over `images`.
///
/// Returns one [`DistributionProbe`] per Transformer layer, aggregating all heads and all
/// images of the batch.
pub fn attention_logit_distribution(
    model: &VisionTransformer,
    images: &[Matrix],
) -> Vec<DistributionProbe> {
    let layers = model.depth();
    let mut raw_hists: Vec<Histogram> = (0..layers)
        .map(|_| Histogram::new(HIST_LO, HIST_HI, HIST_BINS))
        .collect();
    let mut centered_hists: Vec<Histogram> = (0..layers)
        .map(|_| Histogram::new(HIST_LO, HIST_HI, HIST_BINS))
        .collect();
    let mut raw_frac = vec![(0.0f64, 0usize); layers];
    let mut centered_frac = vec![(0.0f64, 0usize); layers];

    for image in images {
        let per_layer = model.collect_head_logits(image);
        for (layer, heads) in per_layer.iter().enumerate() {
            for (raw, centered) in heads {
                raw_hists[layer].record_matrix(raw);
                centered_hists[layer].record_matrix(centered);
                raw_frac[layer].0 += fraction_in_interval(raw, -1.0, 1.0) as f64;
                raw_frac[layer].1 += 1;
                centered_frac[layer].0 += fraction_in_interval(centered, -1.0, 1.0) as f64;
                centered_frac[layer].1 += 1;
            }
        }
    }

    (0..layers)
        .map(|layer| {
            let mean = |acc: (f64, usize)| {
                if acc.1 == 0 {
                    0.0
                } else {
                    (acc.0 / acc.1 as f64) as f32
                }
            };
            DistributionProbe {
                layer,
                raw_in_unit_interval: mean(raw_frac[layer]),
                centered_in_unit_interval: mean(centered_frac[layer]),
                raw_density: raw_hists[layer].densities(),
                centered_density: centered_hists[layer].densities(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AttentionVariant;
    use crate::config::TrainConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    #[test]
    fn probe_reports_one_entry_per_layer() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(300);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let images: Vec<Matrix> = (0..2)
            .map(|_| init::uniform(&mut rng, cfg.image_size, cfg.image_size, 0.0, 1.0))
            .collect();
        let probes = attention_logit_distribution(&model, &images);
        assert_eq!(probes.len(), cfg.layers);
        for p in &probes {
            assert!(p.raw_in_unit_interval >= 0.0 && p.raw_in_unit_interval <= 1.0);
            assert!(p.centered_in_unit_interval >= 0.0 && p.centered_in_unit_interval <= 1.0);
            assert_eq!(p.raw_density.len(), HIST_BINS);
            assert_eq!(p.centered_density.len(), HIST_BINS);
        }
    }

    #[test]
    fn centering_does_not_reduce_unit_interval_occupancy() {
        // The Fig. 3 observation: centring moves mass toward [-1, 1). With randomly
        // initialised weights the shift can be small, but it must not go the wrong way by
        // more than a rounding error.
        let cfg = TrainConfig::experiment();
        let mut rng = StdRng::seed_from_u64(301);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let images: Vec<Matrix> = (0..2)
            .map(|_| init::uniform(&mut rng, cfg.image_size, cfg.image_size, 0.0, 1.0))
            .collect();
        let probes = attention_logit_distribution(&model, &images);
        let raw: f32 =
            probes.iter().map(|p| p.raw_in_unit_interval).sum::<f32>() / probes.len() as f32;
        let centered: f32 = probes
            .iter()
            .map(|p| p.centered_in_unit_interval)
            .sum::<f32>()
            / probes.len() as f32;
        assert!(centered >= raw - 0.02, "raw {raw} centred {centered}");
    }

    #[test]
    fn probe_handles_empty_image_batch() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(302);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let probes = attention_logit_distribution(&model, &[]);
        assert_eq!(probes.len(), cfg.layers);
        assert_eq!(probes[0].raw_in_unit_interval, 0.0);
    }
}
