//! Tier routing and response-cache semantics of the gateway over real sockets: the
//! `tier` protocol field observably lands on different attention variants, repeat
//! images are served from the cache with bit-identical replies, and routing-policy
//! misconfigurations surface as typed errors.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;
use vitality_gateway::{CacheConfig, Gateway, GatewayConfig, RoutingPolicy, TierRules};
use vitality_serve::{ClientError, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality_tensor::{init, Matrix};
use vitality_vit::{AttentionVariant, Int8Calibration, TrainConfig, VisionTransformer};

/// One engine serving the taylor, int8 and unified variants of the same weights —
/// the tier targets the default routing policy resolves to.
fn tiered_engine(base: &VisionTransformer) -> Server {
    let mut int8 = base.clone();
    int8.set_variant(AttentionVariant::Int8Taylor {
        calibration: Int8Calibration::Dynamic,
    });
    let mut unified = base.clone();
    unified.set_variant(AttentionVariant::Unified { threshold: 0.5 });
    let mut registry = ModelRegistry::new();
    registry.register("vit", base.clone()).expect("taylor");
    registry.register("vit", int8).expect("int8");
    registry.register("vit", unified).expect("unified");
    Server::start(
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
    init::uniform(
        &mut StdRng::seed_from_u64(seed),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    )
}

#[test]
fn tiers_land_on_different_variants_and_are_observable() {
    let cfg = TrainConfig::tiny();
    let base = VisionTransformer::new(
        &mut StdRng::seed_from_u64(11),
        cfg,
        AttentionVariant::Taylor,
    );
    let engines = [tiered_engine(&base), tiered_engine(&base)];
    let addrs: Vec<_> = engines.iter().map(Server::local_addr).collect();
    let gateway = Gateway::start(GatewayConfig::default(), &addrs).expect("boot gateway");
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");

    let mut int8_direct = base.clone();
    int8_direct.set_variant(AttentionVariant::Int8Taylor {
        calibration: Int8Calibration::Dynamic,
    });
    let mut unified_direct = base.clone();
    unified_direct.set_variant(AttentionVariant::Unified { threshold: 0.5 });

    for seed in 0..4u64 {
        let img = image(&cfg, 500 + seed);
        // tier: latency rewrites the variant half to int8.
        let latency = client
            .infer_with_tier("vit:taylor", &img, Some("latency"))
            .expect("latency tier");
        assert_eq!(latency.model, "vit:int8", "latency tier lands on int8");
        assert_eq!(latency.prediction, int8_direct.predict(&img));
        // tier: accuracy rewrites it to unified.
        let accuracy = client
            .infer_with_tier("vit:taylor", &img, Some("accuracy"))
            .expect("accuracy tier");
        assert_eq!(
            accuracy.model, "vit:unified",
            "accuracy tier lands on unified"
        );
        assert_eq!(accuracy.prediction, unified_direct.predict(&img));
        // No tier: the requested key passes through untouched.
        let plain = client.infer("vit:taylor", &img).expect("no tier");
        assert_eq!(plain.model, "vit:taylor");
        assert_eq!(plain.prediction, base.predict(&img));
    }

    // The split is observable on the gateway's /metrics without any client state.
    let (status, metrics) = client.get("/metrics").expect("metrics");
    assert_eq!(status, 200);
    let routed = metrics.get("routed").expect("routed block");
    assert_eq!(routed.get("int8").and_then(JsonValue::as_usize), Some(4));
    assert_eq!(routed.get("unified").and_then(JsonValue::as_usize), Some(4));
    assert_eq!(routed.get("taylor").and_then(JsonValue::as_usize), Some(4));

    // An unknown tier is a typed 400; a tier resolving to an unserved variant is a
    // typed 404 — neither reaches an engine.
    let img = image(&cfg, 900);
    match client.infer_with_tier("vit:taylor", &img, Some("bulk")) {
        Err(ClientError::Server { status, code, .. }) => {
            assert_eq!(status, 400);
            assert_eq!(code, "bad_request");
        }
        other => panic!("expected 400 for an unknown tier, got {other:?}"),
    }

    drop(client);
    gateway.shutdown();
    for engine in engines {
        engine.shutdown();
    }
}

#[test]
fn repeat_images_hit_the_cache_with_identical_replies() {
    let cfg = TrainConfig::tiny();
    let base = VisionTransformer::new(
        &mut StdRng::seed_from_u64(21),
        cfg,
        AttentionVariant::Taylor,
    );
    let engine = tiered_engine(&base);
    let gateway = Gateway::start(
        GatewayConfig {
            cache: CacheConfig {
                capacity: 64,
                ttl: Duration::from_secs(60),
                shards: 4,
            },
            ..GatewayConfig::default()
        },
        &[engine.local_addr()],
    )
    .expect("boot gateway");
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");

    let img = image(&cfg, 1234);
    let first = client.infer("vit:taylor", &img).expect("miss path");
    let second = client.infer("vit:taylor", &img).expect("hit path");
    assert_eq!(first.prediction, second.prediction);
    assert_eq!(first.logits, second.logits, "cache hits are bit-identical");

    // The enriched healthz surfaces operational state alongside routing facts:
    // admission pressure, ejections, brownout posture and cache occupancy.
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(health.get("healthy").and_then(JsonValue::as_usize), Some(1));
    assert_eq!(health.get("ejected").and_then(JsonValue::as_usize), Some(0));
    assert_eq!(
        health.get("ejections_total").and_then(JsonValue::as_usize),
        Some(0)
    );
    assert_eq!(
        health
            .get("in_flight_requests")
            .and_then(JsonValue::as_usize),
        Some(0),
        "no request is in flight while healthz is being answered"
    );
    let brownout = health.get("brownout").expect("brownout block");
    assert_eq!(
        brownout.get("engaged").and_then(JsonValue::as_bool),
        Some(false),
        "an idle cluster is never browned out"
    );
    assert_eq!(
        brownout.get("entries").and_then(JsonValue::as_usize),
        Some(0)
    );
    let cache_health = health.get("cache").expect("cache block");
    assert_eq!(
        cache_health.get("entries").and_then(JsonValue::as_usize),
        Some(1),
        "one cached response so far"
    );
    assert_eq!(
        cache_health.get("capacity").and_then(JsonValue::as_usize),
        Some(64)
    );

    // The same image under a different tier is a distinct cache entry.
    let tiered = client
        .infer_with_tier("vit:taylor", &img, Some("latency"))
        .expect("tiered miss");
    assert_eq!(tiered.model, "vit:int8");

    let metrics = gateway.metrics_json();
    let cache = metrics.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(JsonValue::as_usize), Some(1));
    assert_eq!(cache.get("misses").and_then(JsonValue::as_usize), Some(2));
    assert_eq!(cache.get("entries").and_then(JsonValue::as_usize), Some(2));
    // The hit never touched an engine: backend requests stay at the two misses.
    let backend_requests: usize = metrics
        .get("backends")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|b| b.get("requests").and_then(JsonValue::as_usize).unwrap())
        .sum();
    assert_eq!(backend_requests, 2);

    drop(client);
    gateway.shutdown();
    engine.shutdown();
}

#[test]
fn deadlines_ride_the_protocol_end_to_end() {
    let cfg = TrainConfig::tiny();
    let base = VisionTransformer::new(
        &mut StdRng::seed_from_u64(41),
        cfg,
        AttentionVariant::Taylor,
    );
    let engine = tiered_engine(&base);
    let gateway = Gateway::start(
        GatewayConfig {
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        &[engine.local_addr()],
    )
    .expect("boot gateway");
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let img = image(&cfg, 77);

    // A generous budget is forwarded and the request completes normally.
    let reply = client
        .infer_with_options("vit:taylor", &img, None, Some(10_000))
        .expect("live budget");
    assert_eq!(reply.prediction, base.predict(&img));

    // A zero budget is shed at the gateway as a typed 504 with no Retry-After.
    match client.infer_with_options("vit:taylor", &img, None, Some(0)) {
        Err(err) => {
            assert_eq!(err.retry_after_secs(), None, "504s carry no Retry-After");
            match err {
                ClientError::Server { status, code, .. } => {
                    assert_eq!(status, 504);
                    assert_eq!(code, "deadline_exceeded");
                }
                other => panic!("expected a typed 504, got {other:?}"),
            }
        }
        Ok(_) => panic!("a zero budget must never be served"),
    }
    // The connection survives the 504 (keep-alive framing intact).
    let reply = client
        .infer_with_options("vit:taylor", &img, None, Some(10_000))
        .expect("same connection serves");
    assert_eq!(reply.prediction, base.predict(&img));

    let metrics = gateway.metrics_json();
    assert_eq!(
        metrics
            .get("deadline_expired")
            .and_then(JsonValue::as_usize),
        Some(1)
    );
    drop(client);
    gateway.shutdown();
    engine.shutdown();
}

#[test]
fn misrouted_models_surface_typed_errors_not_retry_storms() {
    let cfg = TrainConfig::tiny();
    let base = VisionTransformer::new(
        &mut StdRng::seed_from_u64(31),
        cfg,
        AttentionVariant::Taylor,
    );
    let engine = tiered_engine(&base);
    // A routing policy pointing the latency tier at a variant nobody serves.
    let gateway = Gateway::start(
        GatewayConfig {
            routing: RoutingPolicy {
                default_rules: TierRules {
                    latency: "performer".to_string(),
                    accuracy: "unified".to_string(),
                },
                model_rules: vec![],
            },
            ..GatewayConfig::default()
        },
        &[engine.local_addr()],
    )
    .expect("boot gateway");
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let img = image(&cfg, 55);
    match client.infer_with_tier("vit:taylor", &img, Some("latency")) {
        Err(ClientError::Server {
            status,
            code,
            message,
            ..
        }) => {
            assert_eq!(status, 404);
            assert_eq!(code, "model_not_found");
            assert!(
                message.contains("vit:performer"),
                "the error names the *resolved* key: {message}"
            );
        }
        other => panic!("expected 404 for an unserved resolved key, got {other:?}"),
    }
    // An entirely unknown model 404s the same way, and the connection survives.
    match client.infer("ghost:taylor", &img) {
        Err(ClientError::Server { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    assert_eq!(client.get("/healthz").expect("alive").0, 200);
    let metrics = gateway.metrics_json();
    assert_eq!(
        metrics.get("retries").and_then(JsonValue::as_usize),
        Some(0)
    );
    drop(client);
    gateway.shutdown();
    engine.shutdown();
}
