//! Prometheus exposition conformance, scraped live: boots a real engine and a real
//! gateway in front of it, drives traffic through the stack, then fetches
//! `GET /metrics?format=prometheus` from **both** processes' listeners and runs the
//! full-text validator over each body — `# TYPE` before samples, no duplicate
//! series, escaped labels, cumulative buckets ending in `+Inf` with `_count` and
//! `_sum` agreement, trailing newline. The JSON `/metrics` shape must stay
//! byte-compatible at the key level (every pre-existing key still present; the
//! event-loop block is additive), and `/debug/traces?limit=N` must cap and annotate
//! the returned ring.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;
use vitality_gateway::{Gateway, GatewayConfig};
use vitality_serve::{validate_exposition, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality_tensor::{init, Matrix};
use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};

fn engine(model: &VisionTransformer) -> Server {
    let mut registry = ModelRegistry::new();
    registry.register("vit", model.clone()).expect("valid name");
    Server::start(
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
    init::uniform(
        &mut StdRng::seed_from_u64(seed),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    )
}

/// A raw one-shot HTTP GET returning `(status, content_type, body)` as text —
/// `ServeClient::get` insists on JSON bodies, and the point here is to see the
/// Prometheus text exactly as a scraper would.
fn get_text(addr: std::net::SocketAddr, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect for raw GET");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("header/body separator present");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_type = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.trim().to_string())
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

#[test]
fn live_scrapes_from_engine_and_gateway_pass_exposition_conformance() {
    let cfg = TrainConfig::tiny();
    let model = VisionTransformer::new(
        &mut StdRng::seed_from_u64(21),
        cfg,
        AttentionVariant::Taylor,
    );
    let eng = engine(&model);
    let gw = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(50),
            retry_budget: 2,
            ..GatewayConfig::default()
        },
        &[eng.local_addr()],
    )
    .expect("boot gateway");

    // Traffic through the whole stack so counters, histograms and per-variant
    // blocks are all non-empty: distinct images (backend misses) plus one repeat
    // (a cache hit).
    let mut client = ServeClient::connect(gw.local_addr()).expect("connect");
    for seed in [31u64, 32, 33, 31] {
        client
            .infer("vit:taylor", &image(&cfg, seed))
            .expect("infer through gateway");
    }

    for (who, addr, prefix) in [
        ("engine", eng.local_addr(), "vitality_serve"),
        ("gateway", gw.local_addr(), "vitality_gateway"),
    ] {
        let (status, content_type, body) = get_text(addr, "/metrics?format=prometheus");
        assert_eq!(status, 200, "{who} prometheus scrape status");
        assert_eq!(
            content_type, "text/plain; version=0.0.4",
            "{who} scrape content type"
        );
        let series = validate_exposition(&body)
            .unwrap_or_else(|err| panic!("{who} exposition invalid: {err}\n{body}"));
        assert!(
            series > 10,
            "{who} scrape suspiciously small: {series} series"
        );
        assert!(
            body.contains(&format!("{prefix}_event_loop_wakeups_total")),
            "{who} scrape must carry the event-loop block"
        );
        // Hardware-counter series are present exactly when the host grants
        // perf_event_open — and entirely absent (not zero-valued) otherwise.
        if who == "engine" {
            assert_eq!(
                body.contains("_perf_regions_total"),
                perf::supported(),
                "{who} perf series presence must match host support"
            );
        }
    }

    // Engine Prometheus body carries the per-variant series the JSON block has.
    let (_, _, engine_text) = get_text(eng.local_addr(), "/metrics?format=prometheus");
    for series in [
        "vitality_serve_requests_completed_total",
        "vitality_serve_latency_us_bucket",
        "vitality_serve_variant_requests_total{variant=\"taylor\"}",
        "vitality_serve_variant_stage_us_bucket",
    ] {
        assert!(
            engine_text.contains(series),
            "engine scrape missing {series}"
        );
    }
    let (_, _, gateway_text) = get_text(gw.local_addr(), "/metrics?format=prometheus");
    for series in [
        "vitality_gateway_requests_total",
        "vitality_gateway_cache_hits_total",
        "vitality_gateway_routed_total{variant=\"taylor\"}",
        "vitality_gateway_backend_healthy",
        "vitality_gateway_dispatch_queue_depth",
        "vitality_gateway_hit_latency_us_bucket",
    ] {
        assert!(
            gateway_text.contains(series),
            "gateway scrape missing {series}"
        );
    }

    // The JSON `/metrics` shape is unchanged for existing consumers: every key the
    // pre-Prometheus snapshot exported is still present, and the event-loop block
    // rides alongside as a pure addition.
    let (status, engine_json) = client_json(eng.local_addr(), "/metrics");
    assert_eq!(status, 200);
    for key in [
        "uptime_s",
        "compute",
        "submitted",
        "completed",
        "shed",
        "expired",
        "worker_panics",
        "failed",
        "throughput_rps",
        "latency",
        "queue_wait",
        "batching",
        "variants",
    ] {
        assert!(
            engine_json.get(key).is_some(),
            "engine JSON /metrics lost key {key}"
        );
    }
    assert!(
        engine_json
            .get("event_loop")
            .and_then(|l| l.get("mode"))
            .and_then(JsonValue::as_str)
            .is_some(),
        "engine JSON /metrics gains the event_loop block"
    );
    let (status, gateway_json) = client_json(gw.local_addr(), "/metrics");
    assert_eq!(status, 200);
    for key in [
        "uptime_s",
        "requests",
        "completed",
        "failed",
        "retries",
        "failovers",
        "degraded",
        "admission_shed",
        "deadline_expired",
        "cache",
        "hit_latency",
        "miss_latency",
        "stages",
        "routed",
        "backends",
        "healthy_backends",
    ] {
        assert!(
            gateway_json.get(key).is_some(),
            "gateway JSON /metrics lost key {key}"
        );
    }
    assert!(
        gateway_json.get("event_loop").is_some()
            && gateway_json.get("dispatch_queue_depth").is_some(),
        "gateway JSON /metrics gains event_loop + dispatch depth"
    );
    // Both `/healthz` bodies surface the loop health inline.
    for addr in [eng.local_addr(), gw.local_addr()] {
        let (status, health) = client_json(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(
            health
                .get("event_loop")
                .and_then(|l| l.get("mode"))
                .is_some(),
            "/healthz must carry the event-loop block"
        );
    }

    drop(client);
    gw.shutdown();
    eng.shutdown();
}

fn client_json(addr: std::net::SocketAddr, path: &str) -> (u16, JsonValue) {
    let mut client = ServeClient::connect(addr).expect("connect for JSON GET");
    client.get(path).expect("JSON GET")
}

#[test]
fn debug_traces_limit_caps_and_annotates_the_ring() {
    let cfg = TrainConfig::tiny();
    let model = VisionTransformer::new(
        &mut StdRng::seed_from_u64(22),
        cfg,
        AttentionVariant::Taylor,
    );
    let eng = engine(&model);
    let gw = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(50),
            retry_budget: 2,
            trace: trace::TraceConfig {
                sample: Some(1.0),
                ring_capacity: 64,
            },
            ..GatewayConfig::default()
        },
        &[eng.local_addr()],
    )
    .expect("boot gateway");

    let mut client = ServeClient::connect(gw.local_addr()).expect("connect");
    for seed in 0..6u64 {
        client
            .infer("vit:taylor", &image(&cfg, 600 + seed))
            .expect("infer through gateway");
    }

    let (status, body) = client.get("/debug/traces?limit=2").expect("limited traces");
    assert_eq!(status, 200);
    let traces = body
        .get("traces")
        .and_then(JsonValue::as_array)
        .expect("traces array");
    assert_eq!(traces.len(), 2, "limit=2 returns exactly the newest two");
    assert_eq!(body.get("returned").and_then(JsonValue::as_usize), Some(2));
    let retained = body
        .get("retained")
        .and_then(JsonValue::as_usize)
        .expect("retained count");
    assert!(retained >= 6, "all sampled traces retained, got {retained}");
    for trace in traces {
        assert!(
            trace.get("age_s").and_then(JsonValue::as_f64).is_some(),
            "each trace reports its age"
        );
        assert!(
            trace
                .get("total_us")
                .and_then(JsonValue::as_usize)
                .is_some(),
            "each trace reports its total duration"
        );
    }

    // The unlimited endpoint still answers, capped at its own default.
    let (status, body) = client.get("/debug/traces").expect("default traces");
    assert_eq!(status, 200);
    let default_len = body
        .get("traces")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::len)
        .expect("traces array");
    assert!((2..=trace::DEFAULT_JSON_TRACES).contains(&default_len));

    drop(client);
    gw.shutdown();
    eng.shutdown();
}
