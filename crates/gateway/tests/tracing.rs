//! End-to-end tracing acceptance tests: a sampled request's `/debug/traces` entry
//! must show the complete gateway → engine span tree with per-stage latency
//! attribution, a cache hit must show the backend call *absent*, and a client's
//! `"trace": true` flag must return the spans in-band even with sampling off.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;
use vitality_gateway::{Gateway, GatewayConfig};
use vitality_serve::{InferOptions, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality_tensor::{init, Matrix};
use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};

fn engine(model: &VisionTransformer) -> Server {
    let mut registry = ModelRegistry::new();
    registry.register("vit", model.clone()).expect("valid name");
    Server::start(
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn gateway(addrs: &[std::net::SocketAddr], sample: f64) -> Gateway {
    Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(50),
            retry_budget: 2,
            trace: trace::TraceConfig {
                sample: Some(sample),
                ring_capacity: 64,
            },
            ..GatewayConfig::default()
        },
        addrs,
    )
    .expect("boot gateway")
}

fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
    init::uniform(
        &mut StdRng::seed_from_u64(seed),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    )
}

/// The `/debug/traces` entry with the given request id, if retained.
fn find_trace(client: &mut ServeClient, id: &str) -> Option<JsonValue> {
    let (status, body) = client.get("/debug/traces").expect("debug traces");
    assert_eq!(status, 200);
    body.get("traces")
        .and_then(JsonValue::as_array)?
        .iter()
        .find(|t| t.get("id").and_then(JsonValue::as_str) == Some(id))
        .cloned()
}

/// Flattens a span tree into `(depth, name, detail, dur_us)` rows.
fn flatten(trace: &JsonValue) -> Vec<(usize, String, String, u64)> {
    fn walk(nodes: &[JsonValue], depth: usize, out: &mut Vec<(usize, String, String, u64)>) {
        for node in nodes {
            out.push((
                depth,
                node.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                node.get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                node.get("dur_us")
                    .and_then(JsonValue::as_usize)
                    .unwrap_or(0) as u64,
            ));
            if let Some(children) = node.get("children").and_then(JsonValue::as_array) {
                walk(children, depth + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    if let Some(roots) = trace.get("spans").and_then(JsonValue::as_array) {
        walk(roots, 0, &mut out);
    }
    out
}

#[test]
fn a_sampled_request_records_a_complete_gateway_to_engine_span_tree() {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(9), cfg, AttentionVariant::Taylor);
    let eng = engine(&model);
    let gw = gateway(&[eng.local_addr()], 1.0);

    let mut client = ServeClient::connect(gw.local_addr()).expect("connect");
    let img = image(&cfg, 11);
    let response = client
        .infer_detailed(
            "vit:taylor",
            &img,
            &InferOptions {
                request_id: Some("accept-1"),
                ..InferOptions::default()
            },
        )
        .expect("infer through gateway");
    assert_eq!(
        response.request_id.as_deref(),
        Some("accept-1"),
        "the gateway echoes the client's request id"
    );

    let entry = find_trace(&mut client, "accept-1").expect("sampled trace retained");
    assert_eq!(entry.get("status").and_then(JsonValue::as_usize), Some(200));
    let total_us = entry
        .get("total_us")
        .and_then(JsonValue::as_usize)
        .expect("total_us") as u64;

    let rows = flatten(&entry);
    let has = |name: &str| rows.iter().any(|(_, n, _, _)| n == name);
    // Gateway-side stages, in the tree's top level.
    for name in [
        "parse",
        "admission",
        "cache_probe",
        "pick",
        "backend_attempt",
        "serialize",
        "write",
    ] {
        assert!(has(name), "span {name} missing from {rows:?}");
    }
    // Engine-side stages, grafted under the backend attempt.
    for name in ["queue_wait", "batch_assembly", "compute"] {
        let (depth, ..) = rows
            .iter()
            .find(|(_, n, _, _)| n == name)
            .unwrap_or_else(|| panic!("engine span {name} missing from {rows:?}"));
        assert!(*depth > 0, "engine span {name} must nest under the attempt");
    }
    let (_, _, compute_detail, _) = rows
        .iter()
        .find(|(_, n, _, _)| n == "compute")
        .expect("compute span");
    assert!(
        compute_detail.contains("taylor"),
        "compute span is labeled with the attention variant, got {compute_detail:?}"
    );

    // Per-stage attribution must account for the request: the top-level span sum
    // sits within 15% of the measured end-to-end latency.
    let top_sum: u64 = rows
        .iter()
        .filter(|(depth, ..)| *depth == 0)
        .map(|(_, _, _, dur)| dur)
        .sum();
    assert!(
        top_sum * 100 >= total_us * 85 && top_sum * 100 <= total_us * 115,
        "top-level span sum {top_sum}us must be within 15% of total {total_us}us"
    );

    drop(client);
    gw.shutdown();
    eng.shutdown();
}

#[test]
fn a_cache_hit_trace_shows_the_backend_call_absent() {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(9), cfg, AttentionVariant::Taylor);
    let eng = engine(&model);
    let gw = gateway(&[eng.local_addr()], 1.0);

    let mut client = ServeClient::connect(gw.local_addr()).expect("connect");
    let img = image(&cfg, 12);
    for id in ["hit-warm", "hit-probe"] {
        client
            .infer_detailed(
                "vit:taylor",
                &img,
                &InferOptions {
                    request_id: Some(id),
                    ..InferOptions::default()
                },
            )
            .expect("infer through gateway");
    }

    let entry = find_trace(&mut client, "hit-probe").expect("cache-hit trace retained");
    let rows = flatten(&entry);
    let probe = rows
        .iter()
        .find(|(_, n, _, _)| n == "cache_probe")
        .expect("cache_probe span");
    assert_eq!(probe.2, "hit", "second identical request hits the cache");
    assert!(
        !rows.iter().any(|(_, n, _, _)| n == "backend_attempt"),
        "a cache hit makes no backend call, so no attempt span: {rows:?}"
    );
    // The warming request did go to the backend.
    let warm = find_trace(&mut client, "hit-warm").expect("warming trace retained");
    assert!(flatten(&warm)
        .iter()
        .any(|(_, n, _, _)| n == "backend_attempt"));

    drop(client);
    gw.shutdown();
    eng.shutdown();
}

#[test]
fn the_client_trace_flag_returns_spans_in_band_even_with_sampling_off() {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(9), cfg, AttentionVariant::Taylor);
    let eng = engine(&model);
    let gw = gateway(&[eng.local_addr()], 0.0);

    let mut client = ServeClient::connect(gw.local_addr()).expect("connect");
    let img = image(&cfg, 13);
    let response = client
        .infer_detailed(
            "vit:taylor",
            &img,
            &InferOptions {
                request_id: Some("forced-1"),
                trace: true,
                ..InferOptions::default()
            },
        )
        .expect("infer through gateway");
    let spans = response.trace.expect("forced trace embedded in the reply");
    assert!(
        spans.iter().any(|s| s.name == "backend_attempt"),
        "in-band spans include the backend attempt: {spans:?}"
    );

    // Sampling is off and the request succeeded, so the ring retains nothing.
    let (status, body) = client.get("/debug/traces").expect("debug traces");
    assert_eq!(status, 200);
    assert_eq!(
        body.get("enabled").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(
        body.get("traces")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::len),
        Some(0)
    );

    drop(client);
    gw.shutdown();
    eng.shutdown();
}
