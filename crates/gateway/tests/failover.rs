//! Failover guarantees of the cluster gateway over real sockets: an engine killed
//! under concurrent load loses zero admitted requests and produces zero incorrect
//! replies, the dead backend is ejected from routing, and restarting an engine on the
//! same address re-admits it.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;
use vitality_gateway::{CacheConfig, Gateway, GatewayConfig};
use vitality_serve::{ModelRegistry, ServeClient, Server, ServerConfig};
use vitality_tensor::{init, Matrix};
use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};

fn engine(model: &VisionTransformer, addr: &str) -> Server {
    let mut registry = ModelRegistry::new();
    registry.register("vit", model.clone()).expect("valid name");
    Server::start(
        ServerConfig {
            addr: addr.to_string(),
            workers: 2,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
    init::uniform(
        &mut StdRng::seed_from_u64(seed),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    )
}

fn backend_health(gateway: &Gateway, addr: SocketAddr) -> bool {
    gateway
        .metrics_json()
        .get("backends")
        .and_then(JsonValue::as_array)
        .expect("backends block")
        .iter()
        .find(|b| b.get("addr").and_then(JsonValue::as_str) == Some(&addr.to_string()))
        .expect("backend listed")
        .get("healthy")
        .and_then(JsonValue::as_bool)
        .expect("healthy flag")
}

#[test]
fn engine_kill_under_load_loses_nothing_and_restart_readmits() {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    let engine_b = engine(&model, "127.0.0.1:0");
    let b_addr = engine_b.local_addr();
    let addrs = [engine_a.local_addr(), b_addr];
    let gateway = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(500),
            retry_budget: 4,
            max_backoff: Duration::from_millis(100),
            // Unique images per request below; disable caching so every request
            // actually exercises an engine (and the kill window).
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        &addrs,
    )
    .expect("boot gateway");
    assert_eq!(
        gateway.healthy_backends(),
        2,
        "the synchronous boot probe admits both engines"
    );
    let gw_addr = gateway.local_addr();

    // Concurrent load across the kill: every request must be answered correctly —
    // an in-flight failure on the dying engine has to fail over, not surface.
    let threads = 4usize;
    let per_thread = 12usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let model = &model;
                let cfg = &cfg;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(gw_addr).expect("connect gateway");
                    for i in 0..per_thread {
                        let img = image(cfg, 10_000 + (t * per_thread + i) as u64);
                        let reply = client
                            .infer("vit:taylor", &img)
                            .expect("an admitted request must never be lost to an engine kill");
                        assert_eq!(reply.model, "vit:taylor");
                        assert_eq!(
                            reply.prediction,
                            model.predict(&img),
                            "failover must not change answers"
                        );
                        // Stretch the load window so the kill lands mid-traffic.
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        engine_b.shutdown(); // the mid-run kill
        for handle in handles {
            handle.join().expect("client thread");
        }
    });

    // The dead backend is ejected (by a failed request or the prober).
    let deadline = Instant::now() + Duration::from_secs(5);
    while backend_health(&gateway, b_addr) {
        assert!(
            Instant::now() < deadline,
            "dead backend was never ejected from routing"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The gateway still answers from the surviving engine.
    let mut client = ServeClient::connect(gw_addr).expect("connect gateway");
    let img = image(&cfg, 77);
    assert_eq!(
        client
            .infer("vit:taylor", &img)
            .expect("survivor serves")
            .prediction,
        model.predict(&img)
    );

    // Restart an engine on the dead backend's address: the prober re-admits it.
    let engine_b2 = engine(&model, &b_addr.to_string());
    let deadline = Instant::now() + Duration::from_secs(5);
    while !backend_health(&gateway, b_addr) {
        assert!(
            Instant::now() < deadline,
            "restarted backend was never re-admitted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(gateway.healthy_backends(), 2);

    // And it serves traffic again (drive enough requests that least-loaded routing
    // reaches both backends).
    for i in 0..8 {
        let img = image(&cfg, 200 + i);
        assert_eq!(
            client
                .infer("vit:taylor", &img)
                .expect("post-heal")
                .prediction,
            model.predict(&img)
        );
    }

    let metrics = gateway.metrics_json();
    assert_eq!(
        metrics.get("failed").and_then(JsonValue::as_usize),
        Some(0),
        "zero client-visible failures through the kill"
    );
    assert!(
        metrics
            .get("backends")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .any(|b| b.get("ejections").and_then(JsonValue::as_usize) == Some(1)),
        "the kill shows up as exactly one ejection"
    );

    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b2.shutdown();
}

#[test]
fn a_cluster_with_no_admitted_backend_answers_typed_503() {
    // Nothing listens on these ports (bind-then-drop reserves then frees them).
    let dead: Vec<SocketAddr> = (0..2)
        .map(|_| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        })
        .collect();
    let gateway = Gateway::start(
        GatewayConfig {
            probe_timeout: Duration::from_millis(200),
            ..GatewayConfig::default()
        },
        &dead,
    )
    .expect("gateway boots with an unreachable pool");
    assert_eq!(gateway.healthy_backends(), 0);

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(
        health.get("status").and_then(JsonValue::as_str),
        Some("unavailable")
    );

    // A total outage is a *retryable* condition: the request answers a typed 503
    // with a Retry-After hint, never a permanent-looking 404 (the gateway cannot
    // know whether the key exists while zero backends are admitted) and never a
    // hang.
    let img = image(&TrainConfig::tiny(), 1);
    match client.infer("vit:taylor", &img) {
        Err(err) => {
            assert_eq!(
                err.retry_after_secs(),
                Some(1),
                "503s carry a back-off hint"
            );
            match err {
                vitality_serve::ClientError::Server { status, code, .. } => {
                    assert_eq!(status, 503);
                    assert_eq!(code, "no_backend");
                }
                other => panic!("expected a typed server error, got {other:?}"),
            }
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    drop(client);
    gateway.shutdown();
}
