//! Fault-injection suite: the gateway's robustness contract under injected chaos.
//!
//! Every scenario drives real sockets against real engines with one fault injected
//! through the `failpoint` registry, and asserts the same invariant from the
//! gateway's clients' point of view: **no admitted request is lost or answered
//! incorrectly** — each is either answered with the exact model output or refused
//! with a typed, machine-readable error.
//!
//! Compiled (and run in CI's `chaos` step) only under `--cfg failpoints`; the
//! default build compiles every injection site to an inline no-op.
#![cfg(failpoints)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::JsonValue;
use vitality_gateway::{AdmissionConfig, CacheConfig, Gateway, GatewayConfig};
use vitality_serve::{ClientError, ModelRegistry, ServeClient, Server, ServerConfig};
use vitality_tensor::{init, Matrix};
use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};

/// The failpoint registry is process-global; scenarios take this lock so one
/// test's faults can never leak into another's cluster.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    failpoint::set_seed(0x0DD5EED);
    guard
}

fn engine(model: &VisionTransformer, addr: &str) -> Server {
    let mut registry = ModelRegistry::new();
    registry.register("vit", model.clone()).expect("valid name");
    Server::start(
        ServerConfig {
            addr: addr.to_string(),
            workers: 2,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine")
}

fn image(cfg: &TrainConfig, seed: u64) -> Matrix {
    init::uniform(
        &mut StdRng::seed_from_u64(seed),
        cfg.image_size,
        cfg.image_size,
        0.0,
        1.0,
    )
}

/// A gateway whose prober is effectively frozen after the boot round, so a fault
/// scoped to an engine's connection threads can only be consumed by request
/// traffic, never by a racing health probe.
fn quiet_gateway(addrs: &[std::net::SocketAddr]) -> Gateway {
    Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_secs(600),
            probe_timeout: Duration::from_millis(500),
            retry_budget: 4,
            backend_timeout: Duration::from_millis(300),
            max_backoff: Duration::from_millis(100),
            // Unique images per request; caching off so every request exercises
            // an engine (and therefore the injected fault).
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        addrs,
    )
    .expect("boot gateway")
}

fn metric(gateway: &Gateway, key: &str) -> u64 {
    gateway
        .metrics_json()
        .get(key)
        .and_then(JsonValue::as_usize)
        .unwrap_or_else(|| panic!("metric {key} missing")) as u64
}

fn engine_metric(addr: std::net::SocketAddr, key: &str) -> u64 {
    let mut client = ServeClient::connect(addr).expect("connect engine");
    let (status, body) = client.get("/metrics").expect("engine metrics");
    assert_eq!(status, 200);
    body.get(key)
        .and_then(JsonValue::as_usize)
        .unwrap_or_else(|| panic!("engine metric {key} missing")) as u64
}

fn backend_healthy(gateway: &Gateway, addr: std::net::SocketAddr) -> bool {
    gateway
        .metrics_json()
        .get("backends")
        .and_then(JsonValue::as_array)
        .expect("backends block")
        .iter()
        .find(|b| b.get("addr").and_then(JsonValue::as_str) == Some(&addr.to_string()))
        .expect("backend listed")
        .get("healthy")
        .and_then(JsonValue::as_bool)
        .expect("healthy flag")
}

/// Shared body of the slow-read and slow-write scenarios: engine B works fine but
/// one side of its socket I/O stalls past the gateway's 300 ms read timeout.
fn slow_backend_is_cooled_down(site: &str) {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    let engine_b = engine(&model, "127.0.0.1:0");
    let b_addr = engine_b.local_addr();
    let gateway = quiet_gateway(&[engine_a.local_addr(), b_addr]);

    failpoint::cfg(site, &format!("sleep(800)@serve-conn-{}", b_addr.port())).expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    for i in 0..8u64 {
        let img = image(&cfg, 500 + i);
        let reply = client
            .infer("vit:taylor", &img)
            .expect("a slow backend must cost latency, never a lost request");
        assert_eq!(reply.prediction, model.predict(&img), "answers stay exact");
    }

    assert_eq!(metric(&gateway, "failed"), 0);
    assert!(
        metric(&gateway, "retries") >= 1,
        "rotation must have routed at least one request into the stall"
    );
    assert_eq!(
        metric(&gateway, "failovers"),
        0,
        "a read timeout is slow-not-dead: no transport ejection"
    );
    assert!(
        backend_healthy(&gateway, b_addr),
        "the slow backend is cooled down, not ejected"
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b.shutdown();
}

#[test]
fn a_backend_with_stalled_response_writes_is_cooled_down_not_ejected() {
    let _chaos = chaos_guard();
    slow_backend_is_cooled_down("serve-write-stall");
}

#[test]
fn a_backend_with_stalled_request_reads_is_cooled_down_not_ejected() {
    let _chaos = chaos_guard();
    slow_backend_is_cooled_down("serve-read-stall");
}

/// Shared body of the corrupt-response and partial-write scenarios: one response
/// from engine B is damaged on the wire; the gateway must detect it, never forward
/// it, eject the backend it watched lie, and answer from the survivor.
fn wire_damage_fails_over(site: &str) {
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    let engine_b = engine(&model, "127.0.0.1:0");
    let b_addr = engine_b.local_addr();
    let gateway = quiet_gateway(&[engine_a.local_addr(), b_addr]);

    failpoint::cfg(site, &format!("1*return@serve-conn-{}", b_addr.port())).expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut i = 0u64;
    // Drive until rotation lands a request on B and trips the single-shot fault.
    while metric(&gateway, "failovers") == 0 {
        assert!(
            Instant::now() < deadline,
            "the fault was never consumed by request traffic"
        );
        let img = image(&cfg, 900 + i);
        let reply = client
            .infer("vit:taylor", &img)
            .expect("a damaged response must fail over, not surface");
        assert_eq!(
            reply.prediction,
            model.predict(&img),
            "a damaged response must never be forwarded as an answer"
        );
        i += 1;
    }
    assert_eq!(metric(&gateway, "failed"), 0);
    assert!(
        !backend_healthy(&gateway, b_addr),
        "a backend caught damaging responses is ejected"
    );
    // The survivor keeps serving.
    let img = image(&cfg, 2_000);
    assert_eq!(
        client
            .infer("vit:taylor", &img)
            .expect("survivor")
            .prediction,
        model.predict(&img)
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b.shutdown();
}

#[test]
fn a_corrupted_response_body_is_never_forwarded() {
    let _chaos = chaos_guard();
    wire_damage_fails_over("serve-write-corrupt");
}

#[test]
fn a_partial_response_write_is_treated_as_lost_not_short() {
    let _chaos = chaos_guard();
    wire_damage_fails_over("serve-write-partial");
}

#[test]
fn a_worker_panic_mid_batch_is_absorbed_and_retried_elsewhere() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    let engine_b = engine(&model, "127.0.0.1:0");
    let b_addr = engine_b.local_addr();
    let gateway = quiet_gateway(&[engine_a.local_addr(), b_addr]);

    // One of engine B's workers dies mid-batch — after assembly, before any reply.
    failpoint::cfg(
        "serve-worker-batch",
        &format!("1*panic@serve-worker-{}", b_addr.port()),
    )
    .expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut i = 0u64;
    while engine_metric(b_addr, "worker_panics") == 0 {
        assert!(
            Instant::now() < deadline,
            "no request ever reached the doomed worker"
        );
        let img = image(&cfg, 3_000 + i);
        let reply = client
            .infer("vit:taylor", &img)
            .expect("requests riding a panicked batch are answered elsewhere");
        assert_eq!(reply.prediction, model.predict(&img));
        i += 1;
    }
    assert_eq!(metric(&gateway, "failed"), 0);
    assert!(
        backend_healthy(&gateway, b_addr),
        "one dead worker is an engine-internal wound, not an engine death"
    );
    // The engine's pool survived the panic: it still answers directly.
    let img = image(&cfg, 4_000);
    let mut direct = ServeClient::connect(b_addr).expect("connect engine");
    assert_eq!(
        direct
            .infer("vit:taylor", &img)
            .expect("engine serves")
            .prediction,
        model.predict(&img)
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b.shutdown();
}

#[test]
fn probe_flaps_eject_then_recovery_readmits() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let eng = engine(&model, "127.0.0.1:0");
    let gateway = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_millis(40),
            probe_timeout: Duration::from_millis(500),
            eject_after_probe_failures: 2,
            ..GatewayConfig::default()
        },
        &[eng.local_addr()],
    )
    .expect("boot gateway");
    assert_eq!(
        gateway.healthy_backends(),
        1,
        "boot probe admits the engine"
    );

    // The next eight prober rounds report the (perfectly healthy) engine as down;
    // scoping to the prober thread leaves request traffic untouched.
    failpoint::cfg("gateway-probe-flap", "8*return@gateway-probe").expect("valid spec");

    let deadline = Instant::now() + Duration::from_secs(5);
    while gateway.healthy_backends() != 0 {
        assert!(Instant::now() < deadline, "flapping probes never ejected");
        std::thread::sleep(Duration::from_millis(10));
    }
    // While ejected, requests answer a typed 503 — not a hang, not a 404.
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let img = image(&cfg, 5_000);
    match client.infer("vit:taylor", &img) {
        Err(ClientError::Server { status, code, .. }) => {
            assert_eq!(status, 503);
            assert_eq!(code, "no_backend");
        }
        other => panic!("expected a typed 503 during the flap window, got {other:?}"),
    }
    // The flap budget runs out; honest probes re-admit the engine.
    let deadline = Instant::now() + Duration::from_secs(5);
    while gateway.healthy_backends() != 1 {
        assert!(
            Instant::now() < deadline,
            "recovered engine never re-admitted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let reply = client.infer("vit:taylor", &img).expect("post-recovery");
    assert_eq!(reply.prediction, model.predict(&img));

    // The episode is visible on the enriched healthz.
    let (status, health) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("ejected").and_then(JsonValue::as_usize), Some(0));
    assert_eq!(
        health.get("ejections_total").and_then(JsonValue::as_usize),
        Some(1)
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    eng.shutdown();
}

#[test]
fn an_expired_deadline_is_a_typed_504_and_costs_no_inference() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let eng = engine(&model, "127.0.0.1:0");
    let gateway = quiet_gateway(&[eng.local_addr()]);
    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let img = image(&cfg, 6_000);

    let completed_before = engine_metric(eng.local_addr(), "completed");
    match client.infer_with_options("vit:taylor", &img, None, Some(0)) {
        Err(ClientError::Server { status, code, .. }) => {
            assert_eq!(status, 504);
            assert_eq!(code, "deadline_exceeded");
        }
        other => panic!("expected a typed 504, got {other:?}"),
    }
    assert_eq!(
        engine_metric(eng.local_addr(), "completed"),
        completed_before,
        "an already-expired request must never reach inference"
    );
    assert_eq!(metric(&gateway, "deadline_expired"), 1);

    // A live budget rides through normally.
    let reply = client
        .infer_with_options("vit:taylor", &img, None, Some(5_000))
        .expect("live deadline");
    assert_eq!(reply.prediction, model.predict(&img));

    drop(client);
    gateway.shutdown();
    eng.shutdown();
}

#[test]
fn a_deadline_beats_a_stalled_backend_with_a_prompt_504() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let eng = engine(&model, "127.0.0.1:0");
    let addr = eng.local_addr();
    let gateway = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_secs(600),
            probe_timeout: Duration::from_millis(500),
            // Deliberately generous: the *deadline*, not this, must bound the wait.
            backend_timeout: Duration::from_secs(30),
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        &[addr],
    )
    .expect("boot gateway");

    failpoint::cfg(
        "serve-write-stall",
        &format!("sleep(1500)@serve-conn-{}", addr.port()),
    )
    .expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("client timeout");
    let img = image(&cfg, 7_000);
    let started = Instant::now();
    match client.infer_with_options("vit:taylor", &img, None, Some(300)) {
        Err(ClientError::Server { status, code, .. }) => {
            assert_eq!(status, 504);
            assert_eq!(code, "deadline_exceeded");
        }
        other => panic!("expected a typed 504, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(1_200),
        "the 504 must arrive on the deadline's clock, not the 30 s socket timeout \
         (took {:?})",
        started.elapsed()
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    eng.shutdown();
}

#[test]
fn admission_control_refuses_overflow_with_a_derived_retry_after() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let eng = engine(&model, "127.0.0.1:0");
    let addr = eng.local_addr();
    let gateway = Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_secs(600),
            probe_timeout: Duration::from_millis(500),
            admission: AdmissionConfig {
                max_concurrent: 1,
                ..AdmissionConfig::default()
            },
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        &[addr],
    )
    .expect("boot gateway");
    let gw_addr = gateway.local_addr();

    // The first request stalls inside the engine long enough for the second to
    // arrive while the gateway's single admission slot is taken.
    failpoint::cfg(
        "serve-write-stall",
        &format!("1*sleep(700)@serve-conn-{}", addr.port()),
    )
    .expect("valid spec");

    std::thread::scope(|scope| {
        let slow = {
            let model = &model;
            let cfg = &cfg;
            scope.spawn(move || {
                let mut client = ServeClient::connect(gw_addr).expect("connect");
                let img = image(cfg, 8_000);
                let reply = client.infer("vit:taylor", &img).expect("slow but admitted");
                assert_eq!(reply.prediction, model.predict(&img));
            })
        };
        std::thread::sleep(Duration::from_millis(200));
        let mut client = ServeClient::connect(gw_addr).expect("connect");
        let img = image(&cfg, 8_001);
        match client.infer("vit:taylor", &img) {
            Err(err) => {
                assert!(
                    err.retry_after_secs()
                        .is_some_and(|s| (1..=10).contains(&s)),
                    "admission 503s carry a bounded, derived Retry-After"
                );
                match err {
                    ClientError::Server { status, code, .. } => {
                        assert_eq!(status, 503);
                        assert_eq!(code, "admission_full");
                    }
                    other => panic!("expected a typed 503, got {other:?}"),
                }
            }
            Ok(_) => panic!("the second concurrent request must be refused at admission"),
        }
        slow.join().expect("admitted request thread");
    });
    assert_eq!(metric(&gateway, "admission_shed"), 1);

    // With the slot free again, requests flow.
    let mut client = ServeClient::connect(gw_addr).expect("connect");
    let img = image(&cfg, 8_002);
    assert_eq!(
        client
            .infer("vit:taylor", &img)
            .expect("slot free")
            .prediction,
        model.predict(&img)
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    eng.shutdown();
}

/// A head-sampling rate low enough that retention is effectively tail-only
/// (recording stays on for every request, so failures can be flagged), without
/// head-sampled noise polluting the ring during a driven loop.
const TAIL_ONLY: f64 = 1e-6;

/// Like [`quiet_gateway`], but with (effectively tail-only) tracing enabled.
fn traced_quiet_gateway(addrs: &[std::net::SocketAddr]) -> Gateway {
    Gateway::start(
        GatewayConfig {
            probe_interval: Duration::from_secs(600),
            probe_timeout: Duration::from_millis(500),
            retry_budget: 4,
            backend_timeout: Duration::from_millis(300),
            max_backoff: Duration::from_millis(100),
            cache: CacheConfig {
                capacity: 0,
                ..CacheConfig::default()
            },
            trace: trace::TraceConfig {
                sample: Some(TAIL_ONLY),
                ring_capacity: 64,
            },
            ..GatewayConfig::default()
        },
        addrs,
    )
    .expect("boot gateway")
}

/// The `/debug/traces` entry at `addr` with the given request id, if retained.
fn find_trace(addr: std::net::SocketAddr, id: &str) -> Option<JsonValue> {
    let mut client = ServeClient::connect(addr).expect("connect for traces");
    let (status, body) = client.get("/debug/traces").expect("debug traces");
    assert_eq!(status, 200);
    body.get("traces")
        .and_then(JsonValue::as_array)?
        .iter()
        .find(|t| t.get("id").and_then(JsonValue::as_str) == Some(id))
        .cloned()
}

/// Collects `(name, detail)` pairs from a `/debug/traces` span tree.
fn span_rows(entry: &JsonValue) -> Vec<(String, String)> {
    fn walk(nodes: &[JsonValue], out: &mut Vec<(String, String)>) {
        for node in nodes {
            out.push((
                node.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                node.get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
            ));
            if let Some(children) = node.get("children").and_then(JsonValue::as_array) {
                walk(children, out);
            }
        }
    }
    let mut out = Vec::new();
    if let Some(roots) = entry.get("spans").and_then(JsonValue::as_array) {
        walk(roots, &mut out);
    }
    out
}

#[test]
fn a_failed_over_request_is_tail_sampled_with_both_attempts_and_its_id() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    let engine_b = engine(&model, "127.0.0.1:0");
    let b_addr = engine_b.local_addr();
    let gateway = traced_quiet_gateway(&[engine_a.local_addr(), b_addr]);

    // One of engine B's responses is corrupted on the wire; the gateway must fail
    // the attempt over — and precisely that request must land in the tail ring.
    failpoint::cfg(
        "serve-write-corrupt",
        &format!("1*return@serve-conn-{}", b_addr.port()),
    )
    .expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut i = 0u64;
    while metric(&gateway, "failovers") == 0 {
        assert!(
            Instant::now() < deadline,
            "the fault was never consumed by request traffic"
        );
        let id = format!("tail-{i}");
        let response = client
            .infer_detailed(
                "vit:taylor",
                &image(&cfg, 9_000 + i),
                &vitality_serve::InferOptions {
                    request_id: Some(&id),
                    ..vitality_serve::InferOptions::default()
                },
            )
            .expect("a damaged response must fail over, not surface");
        assert_eq!(
            response.request_id.as_deref(),
            Some(id.as_str()),
            "every reply echoes the id the client sent, failover or not"
        );
        i += 1;
    }

    // The request that rode the corrupted response answered 200 after failover,
    // yet its flagged trace is retained — with both attempts visible.
    let tripped = format!("tail-{}", i - 1);
    let entry = find_trace(gateway.local_addr(), &tripped)
        .expect("the failed-over request is tail-sampled");
    assert_eq!(entry.get("status").and_then(JsonValue::as_usize), Some(200));
    let rows = span_rows(&entry);
    let attempts: Vec<&(String, String)> = rows
        .iter()
        .filter(|(n, _)| n == "backend_attempt")
        .collect();
    assert!(
        attempts.len() >= 2,
        "both the failed and the successful attempt are recorded: {rows:?}"
    );
    assert!(
        attempts.iter().any(|(_, d)| d.contains("error")),
        "the failed attempt is labeled: {attempts:?}"
    );
    assert!(
        attempts.iter().any(|(_, d)| d.contains("ok")),
        "the successful attempt is labeled: {attempts:?}"
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b.shutdown();
}

#[test]
fn a_worker_panic_lands_in_the_engines_tail_ring_under_the_clients_id() {
    let _chaos = chaos_guard();
    let cfg = TrainConfig::tiny();
    let model =
        VisionTransformer::new(&mut StdRng::seed_from_u64(3), cfg, AttentionVariant::Taylor);
    let engine_a = engine(&model, "127.0.0.1:0");
    // Engine B records (tail-only) traces of its own, so its internal 500 — which
    // the gateway masks by retrying elsewhere — stays diagnosable on B itself.
    let mut registry = ModelRegistry::new();
    registry.register("vit", model.clone()).expect("valid name");
    let engine_b = Server::start(
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(10),
            trace: trace::TraceConfig {
                sample: Some(TAIL_ONLY),
                ring_capacity: 64,
            },
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("boot engine");
    let b_addr = engine_b.local_addr();
    let gateway = traced_quiet_gateway(&[engine_a.local_addr(), b_addr]);

    failpoint::cfg(
        "serve-worker-batch",
        &format!("1*panic@serve-worker-{}", b_addr.port()),
    )
    .expect("valid spec");

    let mut client = ServeClient::connect(gateway.local_addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut i = 0u64;
    while engine_metric(b_addr, "worker_panics") == 0 {
        assert!(
            Instant::now() < deadline,
            "no request ever reached the doomed worker"
        );
        let id = format!("panic-{i}");
        client
            .infer_detailed(
                "vit:taylor",
                &image(&cfg, 10_000 + i),
                &vitality_serve::InferOptions {
                    request_id: Some(&id),
                    ..vitality_serve::InferOptions::default()
                },
            )
            .expect("requests riding a panicked batch are answered elsewhere");
        i += 1;
    }

    // The gateway forwarded the *same* id to the engine on every attempt, so the
    // engine's own tail ring names the request the client knows.
    let tripped = format!("panic-{}", i - 1);
    let entry = find_trace(b_addr, &tripped)
        .expect("the 500 the panic caused is tail-sampled on the engine");
    assert_eq!(entry.get("status").and_then(JsonValue::as_usize), Some(500));
    assert!(
        span_rows(&entry).iter().any(|(n, _)| n == "parse"),
        "the engine attributed at least its parse stage before the batch died"
    );

    failpoint::clear();
    drop(client);
    gateway.shutdown();
    engine_a.shutdown();
    engine_b.shutdown();
}
