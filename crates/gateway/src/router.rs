//! The routing-policy layer: static per-model rules plus the per-request
//! `tier` protocol field, rewriting the *variant* half of a `name:variant` model key.
//!
//! ViTALiTy's premise is that the cheap linear Taylor path and the accurate
//! unified/f32 path are tiers of one system: the same weights answer both
//! latency-sensitive and accuracy-sensitive traffic, just through different attention
//! kernels. The router is where that premise meets the wire — a request may name a
//! concrete `name:variant` key (served as-is) or name a model plus
//! `tier: "latency" | "accuracy"`, which the policy resolves to that model's
//! latency-tier or accuracy-tier variant (by default `int8` and `unified`).

use crate::error::GatewayError;

/// A request's routing tier, parsed from the protocol's `tier` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Route to the model's cheap, latency-optimised variant (default `int8`).
    Latency,
    /// Route to the model's accurate variant (default `unified`).
    Accuracy,
}

impl Tier {
    /// Parses the wire value; anything but `"latency"` / `"accuracy"` is a typed 400.
    pub fn parse(value: &str) -> Result<Tier, GatewayError> {
        match value {
            "latency" => Ok(Tier::Latency),
            "accuracy" => Ok(Tier::Accuracy),
            other => Err(GatewayError::BadRequest(format!(
                "unknown tier {other:?} (expected \"latency\" or \"accuracy\")"
            ))),
        }
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Latency => "latency",
            Tier::Accuracy => "accuracy",
        }
    }
}

/// The variant each tier resolves to for one model (or as the cluster default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierRules {
    /// Variant label serving `tier: "latency"` requests.
    pub latency: String,
    /// Variant label serving `tier: "accuracy"` requests.
    pub accuracy: String,
}

impl Default for TierRules {
    fn default() -> Self {
        Self {
            latency: "int8".to_string(),
            accuracy: "unified".to_string(),
        }
    }
}

/// Static routing rules: a cluster-wide default plus per-model overrides.
#[derive(Debug, Clone, Default)]
pub struct RoutingPolicy {
    /// Rules applied when a model has no override.
    pub default_rules: TierRules,
    /// Per-model-name overrides (the name half of the key, no variant).
    pub model_rules: Vec<(String, TierRules)>,
}

impl RoutingPolicy {
    /// Resolves the model key one request is actually served under.
    ///
    /// Without a tier the requested key passes through untouched. With one, the
    /// variant half is rewritten by the model's rules (the name half — everything
    /// before the first `:`, or the whole key if it has none — always survives).
    pub fn resolve(&self, model_key: &str, tier: Option<Tier>) -> String {
        let Some(tier) = tier else {
            return model_key.to_string();
        };
        let name = model_key
            .split_once(':')
            .map_or(model_key, |(name, _)| name);
        let rules = self
            .model_rules
            .iter()
            .find(|(model, _)| model == name)
            .map_or(&self.default_rules, |(_, rules)| rules);
        let variant = match tier {
            Tier::Latency => &rules.latency,
            Tier::Accuracy => &rules.accuracy,
        };
        format!("{name}:{variant}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_parse_strictly() {
        assert_eq!(Tier::parse("latency").unwrap(), Tier::Latency);
        assert_eq!(Tier::parse("accuracy").unwrap(), Tier::Accuracy);
        assert_eq!(Tier::Latency.as_str(), "latency");
        assert_eq!(Tier::Accuracy.as_str(), "accuracy");
        match Tier::parse("bulk") {
            Err(GatewayError::BadRequest(msg)) => assert!(msg.contains("bulk")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn untired_keys_pass_through_and_tiers_rewrite_the_variant_half() {
        let policy = RoutingPolicy::default();
        assert_eq!(policy.resolve("vit:taylor", None), "vit:taylor");
        assert_eq!(
            policy.resolve("vit:taylor", Some(Tier::Latency)),
            "vit:int8"
        );
        assert_eq!(
            policy.resolve("vit:taylor", Some(Tier::Accuracy)),
            "vit:unified"
        );
        // A bare name (no variant half) still routes by tier.
        assert_eq!(policy.resolve("vit", Some(Tier::Latency)), "vit:int8");
    }

    #[test]
    fn per_model_rules_override_the_default() {
        let policy = RoutingPolicy {
            default_rules: TierRules::default(),
            model_rules: vec![(
                "deit".to_string(),
                TierRules {
                    latency: "taylor".to_string(),
                    accuracy: "softmax".to_string(),
                },
            )],
        };
        assert_eq!(
            policy.resolve("deit:unified", Some(Tier::Latency)),
            "deit:taylor"
        );
        assert_eq!(
            policy.resolve("deit:unified", Some(Tier::Accuracy)),
            "deit:softmax"
        );
        // Other models keep the cluster default.
        assert_eq!(
            policy.resolve("vit:taylor", Some(Tier::Latency)),
            "vit:int8"
        );
    }
}
