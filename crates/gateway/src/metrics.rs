//! Gateway-level metrics: request/retry/failover counters, hit- vs miss-path latency
//! histograms, per-resolved-variant routing counts, and the aggregated per-backend +
//! cache blocks exported on the gateway's `GET /metrics`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::json::JsonValue;
use vitality_serve::LatencyHistogram;

use crate::cache::ResponseCache;
use crate::pool::BackendPool;

/// All counters one gateway instance maintains (the cache and the backends keep
/// their own, merged into the snapshot here).
#[derive(Debug)]
pub struct GatewayMetrics {
    /// Inference requests that reached routing (cache hits included).
    pub requests: AtomicU64,
    /// Requests answered 200 (from cache or a backend).
    pub completed: AtomicU64,
    /// Requests answered with any error status.
    pub failed: AtomicU64,
    /// Backend attempts beyond each request's first (the retry budget in action).
    pub retries: AtomicU64,
    /// Retries caused by a transport-level backend failure (the crash/failover path,
    /// as opposed to backpressure 503s).
    pub failovers: AtomicU64,
    /// Accuracy-tier requests downgraded to the latency variant by brownout.
    pub degraded: AtomicU64,
    /// Requests refused 503 by gateway-side admission control (never reached a
    /// backend).
    pub admission_shed: AtomicU64,
    /// Requests answered 504 because their `deadline_ms` budget expired at the
    /// gateway (shed pre-admission or mid-retry; engine-side expiries are counted by
    /// the engines' own `expired` counters).
    pub deadline_expired: AtomicU64,
    /// End-to-end latency of cache-hit responses.
    pub hit_latency: LatencyHistogram,
    /// End-to-end latency of responses that went to a backend.
    pub miss_latency: LatencyHistogram,
    /// Stage breakdown: individual backend call attempts (every attempt, including
    /// the failed ones a retry follows).
    pub backend_attempt: LatencyHistogram,
    /// Stage breakdown: response serialize + socket write back to the client.
    pub write: LatencyHistogram,
    /// Requests answered per resolved variant label (how tier routing is observed).
    routed: Mutex<BTreeMap<String, u64>>,
    started: Instant,
}

impl GatewayMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            admission_shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            hit_latency: LatencyHistogram::new(),
            miss_latency: LatencyHistogram::new(),
            backend_attempt: LatencyHistogram::new(),
            write: LatencyHistogram::new(),
            routed: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
        }
    }

    /// Counts one answered request against its resolved variant label.
    pub fn record_routed(&self, resolved_key: &str) {
        let variant = resolved_key
            .split_once(':')
            .map_or(resolved_key, |(_, variant)| variant);
        *self
            .routed
            .lock()
            .expect("routed counters poisoned")
            .entry(variant.to_string())
            .or_insert(0) += 1;
    }

    /// Requests answered for the given variant label so far.
    pub fn routed_count(&self, variant: &str) -> u64 {
        self.routed
            .lock()
            .expect("routed counters poisoned")
            .get(variant)
            .copied()
            .unwrap_or(0)
    }

    /// Registers the gateway's series into a Prometheus scrape under the
    /// `vitality_gateway_` prefix — the body of `GET /metrics?format=prometheus`.
    /// Mirrors [`GatewayMetrics::snapshot_json`]: request/retry/failover counters,
    /// hit- vs miss-path and stage histograms, per-variant routing counts, cache
    /// hit/miss counters, and per-backend health gauges.
    pub fn register_prometheus(
        &self,
        reg: &mut vitality_serve::MetricsRegistry,
        cache: &ResponseCache,
        pool: &BackendPool,
    ) {
        let none: &[(&str, &str)] = &[];
        reg.gauge(
            "vitality_gateway_uptime_seconds",
            "Seconds since this gateway started",
            none,
            self.started.elapsed().as_secs_f64(),
        );
        for (name, help, value) in [
            (
                "vitality_gateway_requests_total",
                "Inference requests that reached routing (cache hits included)",
                &self.requests,
            ),
            (
                "vitality_gateway_requests_completed_total",
                "Requests answered 200 (from cache or a backend)",
                &self.completed,
            ),
            (
                "vitality_gateway_requests_failed_total",
                "Requests answered with any error status",
                &self.failed,
            ),
            (
                "vitality_gateway_retries_total",
                "Backend attempts beyond each request's first",
                &self.retries,
            ),
            (
                "vitality_gateway_failovers_total",
                "Retries caused by a transport-level backend failure",
                &self.failovers,
            ),
            (
                "vitality_gateway_degraded_total",
                "Accuracy-tier requests downgraded by brownout",
                &self.degraded,
            ),
            (
                "vitality_gateway_admission_shed_total",
                "Requests refused 503 by gateway-side admission control",
                &self.admission_shed,
            ),
            (
                "vitality_gateway_deadline_expired_total",
                "Requests answered 504 because their deadline expired at the gateway",
                &self.deadline_expired,
            ),
        ] {
            reg.counter(name, help, none, value.load(Ordering::Relaxed) as f64);
        }
        reg.histogram_us(
            "vitality_gateway_hit_latency_us",
            "End-to-end latency of cache-hit responses, microseconds",
            none,
            &self.hit_latency,
        );
        reg.histogram_us(
            "vitality_gateway_miss_latency_us",
            "End-to-end latency of responses that went to a backend, microseconds",
            none,
            &self.miss_latency,
        );
        reg.histogram_us(
            "vitality_gateway_stage_us",
            "Per-stage gateway latency, microseconds",
            &[("stage", "backend_attempt")],
            &self.backend_attempt,
        );
        reg.histogram_us(
            "vitality_gateway_stage_us",
            "Per-stage gateway latency, microseconds",
            &[("stage", "write")],
            &self.write,
        );
        for (variant, count) in self.routed.lock().expect("routed counters poisoned").iter() {
            reg.counter(
                "vitality_gateway_routed_total",
                "Requests answered per resolved variant label",
                &[("variant", variant)],
                *count as f64,
            );
        }
        reg.counter(
            "vitality_gateway_cache_hits_total",
            "Response-cache hits",
            none,
            cache.hits() as f64,
        );
        reg.counter(
            "vitality_gateway_cache_misses_total",
            "Response-cache misses",
            none,
            cache.misses() as f64,
        );
        reg.gauge(
            "vitality_gateway_healthy_backends",
            "Backends currently considered healthy",
            none,
            pool.healthy_count() as f64,
        );
        for backend in pool.backends() {
            let addr = backend.addr().to_string();
            reg.gauge(
                "vitality_gateway_backend_healthy",
                "Per-backend health (1 healthy, 0 ejected)",
                &[("backend", addr.as_str())],
                f64::from(u8::from(backend.healthy())),
            );
        }
    }

    /// The gateway's `GET /metrics` body: own counters plus the cache block and one
    /// block per backend.
    pub fn snapshot_json(&self, cache: &ResponseCache, pool: &BackendPool) -> JsonValue {
        let latency_block = |hist: &LatencyHistogram| {
            let mut block = JsonValue::object();
            block
                .set("count", hist.count())
                .set("mean_us", hist.mean_us())
                .set("p50_us", hist.quantile_us(0.50))
                .set("p95_us", hist.quantile_us(0.95))
                .set("p99_us", hist.quantile_us(0.99));
            block
        };
        let mut routed = JsonValue::object();
        for (variant, count) in self.routed.lock().expect("routed counters poisoned").iter() {
            routed.set(variant, *count);
        }
        let backends: Vec<JsonValue> = pool.backends().iter().map(|b| b.snapshot_json()).collect();
        let mut root = JsonValue::object();
        root.set("uptime_s", self.started.elapsed().as_secs_f64())
            .set("requests", self.requests.load(Ordering::Relaxed))
            .set("completed", self.completed.load(Ordering::Relaxed))
            .set("failed", self.failed.load(Ordering::Relaxed))
            .set("retries", self.retries.load(Ordering::Relaxed))
            .set("failovers", self.failovers.load(Ordering::Relaxed))
            .set("degraded", self.degraded.load(Ordering::Relaxed))
            .set(
                "admission_shed",
                self.admission_shed.load(Ordering::Relaxed),
            )
            .set(
                "deadline_expired",
                self.deadline_expired.load(Ordering::Relaxed),
            )
            .set("cache", cache.snapshot_json())
            .set("hit_latency", latency_block(&self.hit_latency))
            .set("miss_latency", latency_block(&self.miss_latency))
            .set("stages", {
                let mut stages = JsonValue::object();
                stages
                    .set("backend_attempt", latency_block(&self.backend_attempt))
                    .set("write", latency_block(&self.write));
                stages
            })
            .set("routed", routed)
            .set("backends", backends)
            .set("healthy_backends", pool.healthy_count());
        root
    }
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn routed_counts_key_on_the_variant_half() {
        let metrics = GatewayMetrics::new();
        metrics.record_routed("vit:int8");
        metrics.record_routed("vit:int8");
        metrics.record_routed("vit:unified");
        metrics.record_routed("bare"); // no variant half: counted verbatim
        assert_eq!(metrics.routed_count("int8"), 2);
        assert_eq!(metrics.routed_count("unified"), 1);
        assert_eq!(metrics.routed_count("bare"), 1);
        assert_eq!(metrics.routed_count("taylor"), 0);
    }

    #[test]
    fn snapshots_merge_cache_and_backend_blocks() {
        let metrics = GatewayMetrics::new();
        metrics.requests.fetch_add(3, Ordering::Relaxed);
        metrics.hit_latency.record_us(50);
        metrics.miss_latency.record_us(900);
        metrics.record_routed("m:taylor");
        let cache = ResponseCache::new(4, Duration::from_secs(1), 1);
        let pool = BackendPool::new(&["127.0.0.1:40100".parse().unwrap()]);
        let snap = metrics.snapshot_json(&cache, &pool);
        assert_eq!(snap.get("requests").and_then(JsonValue::as_usize), Some(3));
        assert_eq!(
            snap.get("healthy_backends").and_then(JsonValue::as_usize),
            Some(0)
        );
        assert_eq!(
            snap.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(JsonValue::as_usize),
            Some(0)
        );
        assert_eq!(
            snap.get("routed")
                .and_then(|r| r.get("taylor"))
                .and_then(JsonValue::as_usize),
            Some(1)
        );
        assert_eq!(
            snap.get("backends")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(1)
        );
        assert!(
            snap.get("hit_latency")
                .and_then(|l| l.get("p50_us"))
                .and_then(JsonValue::as_usize)
                .unwrap()
                <= snap
                    .get("miss_latency")
                    .and_then(|l| l.get("p50_us"))
                    .and_then(JsonValue::as_usize)
                    .unwrap()
        );
    }
}
