//! The gateway front-end: the epoll connection front, the infer dispatch pool,
//! the health prober thread and the cache → route → retry request pipeline,
//! assembled behind [`Gateway::start`] / [`Gateway::shutdown`].

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::json::JsonValue;
use vitality_serve::http::{RouteResponse, WriteReport};
use vitality_serve::{
    protocol, ClientError, Completion, EventFront, FrontConfig, FrontRequest, InferReply, LoopStats,
};
use vitality_tensor::Matrix;

use crate::brownout::BrownoutController;
use crate::cache::{image_hash, ResponseCache};
use crate::config::GatewayConfig;
use crate::error::GatewayError;
use crate::metrics::GatewayMetrics;
use crate::pool::{BackendPool, InFlightGuard, Pick};
use crate::router::Tier;

struct Shared {
    config: GatewayConfig,
    pool: BackendPool,
    cache: ResponseCache,
    metrics: GatewayMetrics,
    brownout: BrownoutController,
    tracer: Arc<trace::Tracer>,
    /// Inference requests currently inside the gateway (admission-control bound).
    in_flight_requests: AtomicU64,
    /// Infer work handed to the dispatch pool but not yet picked up by a
    /// dispatcher thread — the queue between the event loop and the blocking
    /// pipeline. A persistently nonzero depth means the dispatch pool, not the
    /// loop, is the bottleneck.
    dispatch_depth: AtomicU64,
    /// The connection front's loop-health counters. Set once right after the
    /// front starts; a request racing that window reads default (unstarted)
    /// stats, never panics.
    loop_stats: OnceLock<Arc<LoopStats>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn loop_stats(&self) -> Arc<LoopStats> {
        self.loop_stats.get().cloned().unwrap_or_default()
    }
}

/// RAII window of one admitted request against the gateway-wide concurrency bound.
struct AdmissionGuard<'a>(&'a Shared);

impl<'a> AdmissionGuard<'a> {
    /// Admits the request, or refuses it 503 with a queue-derived `Retry-After`.
    fn admit(shared: &'a Shared) -> Result<Self, GatewayError> {
        let limit = shared.config.admission.max_concurrent as u64;
        let in_flight = shared.in_flight_requests.fetch_add(1, Ordering::SeqCst) + 1;
        if limit > 0 && in_flight > limit {
            shared.in_flight_requests.fetch_sub(1, Ordering::SeqCst);
            shared
                .metrics
                .admission_shed
                .fetch_add(1, Ordering::Relaxed);
            return Err(GatewayError::AdmissionFull {
                in_flight,
                limit,
                retry_after: derived_retry_after(shared),
            });
        }
        Ok(Self(shared))
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight_requests.fetch_sub(1, Ordering::SeqCst);
    }
}

/// `Retry-After` seconds for an admission-full 503, derived from how long the probed
/// backlog would actually take to drain — probed queue pressure × the observed
/// miss-path p95 — instead of a constant. Clamped to [1, 10] s so a cold histogram
/// or a momentary spike cannot produce silly hints.
fn derived_retry_after(shared: &Shared) -> u64 {
    let pressure = shared.pool.mean_pressure();
    let p95_s = shared.metrics.miss_latency.quantile_us(0.95) as f64 / 1e6;
    (pressure * p95_s).ceil().clamp(1.0, 10.0) as u64
}

/// One infer request in flight between the connection front and the dispatch
/// pool: the owned request bytes (the front's parse buffer is only borrowed for
/// the duration of a dispatch call) and the completion that answers it.
struct InferWork {
    body: Vec<u8>,
    content_type: Option<String>,
    completion: Completion,
}

/// A running cluster gateway.
///
/// ```text
/// clients ──► event-loop front ──► dispatch pool ──► cache ──► router ──► retry loop
///               (epoll, one       (gateway-conn-<i>,  hit│                 │ pick / call
///                thread)           blocking pipeline)    ▼                 ▼
///                   ▲ completions                  cached reply    BackendPool ──► engines
///                                     prober thread ─ /healthz probes ──┘
/// ```
///
/// GETs (`/healthz`, `/metrics`, `/debug/traces`) answer inline on the event loop;
/// `POST /v1/infer` crosses to the dispatch pool, whose size bounds concurrent
/// pipeline executions (admission control still bounds accepted requests).
///
/// Start with [`Gateway::start`]; stop with [`Gateway::shutdown`]. The gateway holds
/// no request state of its own — shutting it down answers in-flight requests and
/// leaves the engines running.
pub struct Gateway {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    front: Option<EventFront>,
    prober_handle: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds the listener, runs one synchronous probe round (so reachable backends
    /// are admitted before the first request), and spawns the prober and accept
    /// loops.
    ///
    /// # Errors
    ///
    /// Returns any bind error. Unreachable backends are accepted — they stay
    /// unadmitted until a probe succeeds, which is exactly the re-admission path.
    pub fn start(config: GatewayConfig, backends: &[SocketAddr]) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let pool = BackendPool::new(backends);
        pool.set_in_flight_limit(config.admission.max_per_backend_in_flight);
        pool.probe_all(config.probe_timeout, config.eject_after_probe_failures);
        let shared = Arc::new(Shared {
            cache: ResponseCache::new(config.cache.capacity, config.cache.ttl, config.cache.shards),
            metrics: GatewayMetrics::new(),
            brownout: BrownoutController::new(config.brownout.clone()),
            tracer: Arc::new(trace::Tracer::new(&config.trace)),
            in_flight_requests: AtomicU64::new(0),
            dispatch_depth: AtomicU64::new(0),
            loop_stats: OnceLock::new(),
            pool,
            shutdown: AtomicBool::new(false),
            config,
        });
        // The boot probe round's pressure reading seeds the brownout controller, so
        // a gateway started into an already-hot cluster engages on request one.
        shared.brownout.observe(
            shared.pool.mean_pressure(),
            shared.metrics.miss_latency.quantile_us(0.95),
        );

        let prober_shared = Arc::clone(&shared);
        let prober_handle = std::thread::Builder::new()
            .name("gateway-probe".to_string())
            .spawn(move || {
                // Sleep in short slices so shutdown is prompt even with a long
                // probe interval.
                let slice = Duration::from_millis(10);
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < prober_shared.config.probe_interval {
                        if prober_shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    prober_shared.pool.probe_all(
                        prober_shared.config.probe_timeout,
                        prober_shared.config.eject_after_probe_failures,
                    );
                    // Every probe round doubles as a brownout-control tick: the
                    // freshly probed queue depths are exactly its pressure signal.
                    prober_shared.brownout.observe(
                        prober_shared.pool.mean_pressure(),
                        prober_shared.metrics.miss_latency.quantile_us(0.95),
                    );
                }
            })
            .expect("spawn gateway prober");

        // The infer dispatch pool: the blocking cache → route → retry pipeline
        // runs here, handed work by the (non-blocking) connection front. At
        // least 2 threads, so one stalled backend call can never serialize the
        // whole gateway. Thread names keep the `gateway-conn` prefix the
        // per-connection threads used to carry, so existing failpoint
        // thread-scoping specs keep targeting the request path.
        let (work_tx, work_rx) = mpsc::channel::<InferWork>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let dispatchers = (0..shared.config.dispatch_threads.max(2))
            .map(|i| {
                let work_rx = Arc::clone(&work_rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gateway-conn-{i}"))
                    .spawn(move || loop {
                        // Take one work item, then release the lock before the
                        // (potentially long) pipeline run.
                        let work = work_rx
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .recv();
                        match work {
                            Ok(work) => {
                                shared.dispatch_depth.fetch_sub(1, Ordering::Relaxed);
                                let response =
                                    handle_infer(&work.body, work.content_type.as_deref(), &shared);
                                work.completion.complete(response);
                            }
                            // Channel closed: the front is gone, drain is done.
                            Err(_) => return,
                        }
                    })
                    .expect("spawn gateway dispatcher")
            })
            .collect();

        let dispatch_shared = Arc::clone(&shared);
        let front = EventFront::start(
            listener,
            FrontConfig {
                poll_interval: shared.config.poll_interval,
                max_body_bytes: shared.config.max_body_bytes,
                max_pipeline: 64,
                thread_name: "gateway-conn".to_string(),
            },
            move |request: &FrontRequest<'_>, completion: Completion| {
                route(request, completion, &dispatch_shared, &work_tx)
            },
        )?;
        let _ = shared.loop_stats.set(front.stats());

        Ok(Gateway {
            local_addr,
            shared,
            front: Some(front),
            prober_handle: Some(prober_handle),
            dispatchers,
        })
    }

    /// The bound address (resolves the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of currently admitted backends (probe-refreshed).
    pub fn healthy_backends(&self) -> usize {
        self.shared.pool.healthy_count()
    }

    /// A point-in-time snapshot of the gateway's `/metrics` body.
    pub fn metrics_json(&self) -> JsonValue {
        self.shared
            .metrics
            .snapshot_json(&self.shared.cache, &self.shared.pool)
    }

    /// The gateway's request tracer (ring buffer behind `GET /debug/traces`).
    pub fn tracer(&self) -> Arc<trace::Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// Graceful shutdown: stop accepting and parsing, flush every in-flight
    /// response, then join the dispatch pool and the prober. Engines are not
    /// touched.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(front) = &self.front {
            front.stop();
        }
        // The front drains: every dispatched request is still answered (the
        // dispatch pool keeps running until the front — and with it the work
        // channel's sender — is gone).
        if let Some(mut front) = self.front.take() {
            front.join();
        }
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober_handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("local_addr", &self.local_addr)
            .field(
                "backends",
                &self
                    .shared
                    .pool
                    .backends()
                    .iter()
                    .map(|b| b.addr())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Whether a raw query string selects the Prometheus text exposition
/// (`?format=prometheus` as an exact key/value pair, position-independent).
fn wants_prometheus(query: &str) -> bool {
    query.split('&').any(|pair| pair == "format=prometheus")
}

/// Parses `limit=N` out of a raw query string (`None` when absent or malformed).
fn query_limit(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("limit="))
        .and_then(|raw| raw.parse().ok())
}

/// `Content-Type` of the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn route(
    request: &FrontRequest<'_>,
    completion: Completion,
    shared: &Arc<Shared>,
    work_tx: &mpsc::Sender<InferWork>,
) {
    let Ok((method, target)) = request.request_parts() else {
        return completion.complete(error_response(&GatewayError::BadRequest(
            "malformed request line".into(),
        )));
    };
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match (method, path) {
        ("GET", "/healthz") => {
            let healthy = shared.pool.healthy_count();
            let total = shared.pool.backends().len();
            let status = if healthy == total {
                "ok"
            } else if healthy > 0 {
                "degraded"
            } else {
                "unavailable"
            };
            let mut cache = JsonValue::object();
            cache
                .set("entries", shared.cache.len())
                .set("capacity", shared.config.cache.capacity);
            let mut body = JsonValue::object();
            body.set("status", status)
                .set("backends", total)
                .set("healthy", healthy)
                .set("ejected", total - healthy)
                .set("ejections_total", shared.pool.ejection_total())
                .set(
                    "in_flight_requests",
                    shared.in_flight_requests.load(Ordering::Relaxed),
                )
                .set("brownout", shared.brownout.snapshot_json())
                .set("cache", cache)
                .set("models", shared.pool.model_union())
                // Request encodings this gateway accepts; callers switch to the
                // binary image encoding only after seeing it advertised here.
                .set("encodings", vec!["json".to_string(), "binary".to_string()])
                // Loop-front health plus the dispatch hand-off queue: whether
                // the loop thread or the dispatch pool is the next bottleneck.
                .set("event_loop", shared.loop_stats().json())
                .set(
                    "dispatch_queue_depth",
                    shared.dispatch_depth.load(Ordering::Relaxed),
                );
            completion.complete(RouteResponse::new(200, body));
        }
        ("GET", "/metrics") => {
            if wants_prometheus(query) {
                let mut reg = vitality_serve::MetricsRegistry::new();
                shared
                    .metrics
                    .register_prometheus(&mut reg, &shared.cache, &shared.pool);
                shared.loop_stats().register(&mut reg, "vitality_gateway");
                reg.gauge(
                    "vitality_gateway_dispatch_queue_depth",
                    "Infer work queued between the event loop and the dispatch pool",
                    &[],
                    shared.dispatch_depth.load(Ordering::Relaxed) as f64,
                );
                return completion.complete(RouteResponse::text(
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    reg.encode(),
                ));
            }
            let mut body = shared.metrics.snapshot_json(&shared.cache, &shared.pool);
            body.set("event_loop", shared.loop_stats().json()).set(
                "dispatch_queue_depth",
                shared.dispatch_depth.load(Ordering::Relaxed),
            );
            completion.complete(RouteResponse::new(200, body));
        }
        ("GET", "/debug/traces") => {
            let body = match query_limit(query) {
                Some(limit) => shared.tracer.recent_json_limited(limit),
                None => shared.tracer.recent_json(),
            };
            completion.complete(RouteResponse::new(200, body));
        }
        ("POST", "/v1/infer") => {
            // The blocking pipeline must not run on the event loop: hand the
            // owned bytes to the dispatch pool. A send can only fail during
            // shutdown teardown; the completion's drop guard answers 500 then.
            shared.dispatch_depth.fetch_add(1, Ordering::Relaxed);
            let sent = work_tx.send(InferWork {
                body: request.body.to_vec(),
                content_type: request.header("content-type").map(str::to_string),
                completion,
            });
            if sent.is_err() {
                shared.dispatch_depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
        ("POST" | "GET", _) => completion.complete(RouteResponse::new(
            404,
            protocol::error_body("not_found", &format!("no route for {method} {path}")),
        )),
        _ => completion.complete(RouteResponse::new(
            405,
            protocol::error_body(
                "method_not_allowed",
                &format!("unsupported method {method}"),
            ),
        )),
    }
}

fn error_response(error: &GatewayError) -> RouteResponse {
    RouteResponse::new(
        error.http_status(),
        protocol::error_body(error.code(), &error.to_string()),
    )
    .with_retry_after(error.retry_after_secs())
}

/// The post-write completion hook: records the gateway-side serialize/write spans,
/// feeds the write-stage histogram, and hands the finished trace to the tracer's
/// retention policy.
fn finish_hook(
    shared: Arc<Shared>,
    handle: trace::TraceHandle,
    status: u16,
) -> impl FnOnce(WriteReport) + Send + 'static {
    move |report: WriteReport| {
        if let Some(t) = &handle {
            t.record(
                "serialize",
                String::new(),
                report.serialize_start,
                report.write_start,
            );
            t.record("write", String::new(), report.write_start, report.done);
        }
        shared
            .metrics
            .write
            .record_us(report.serialize_us() + report.write_us());
        shared.tracer.finish(handle, status);
    }
}

/// Builds the error response for an infer request, echoing `request_id` on the
/// typed error body and closing the request's trace (when one is recording).
fn infer_error(
    shared: &Arc<Shared>,
    error: &GatewayError,
    request_id: &str,
    handle: trace::TraceHandle,
) -> RouteResponse {
    shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
    let mut response = error_response(error);
    response.body.set("request_id", request_id);
    if handle.is_some() {
        let status = response.status;
        response = response.with_on_written(finish_hook(Arc::clone(shared), handle, status));
    }
    response
}

/// One request's deadline at the gateway: the budget the client sent (re-derived
/// for the wire as *remaining* budget per backend attempt) and its absolute expiry,
/// anchored when the request was parsed.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    budget_ms: u64,
    expires: Instant,
}

impl Deadline {
    /// Milliseconds still available at `now` (None once expired).
    fn remaining_ms(&self, now: Instant) -> Option<u64> {
        let left = self.expires.saturating_duration_since(now);
        if left.is_zero() {
            None
        } else {
            Some(left.as_millis().max(1) as u64)
        }
    }

    fn error(&self) -> GatewayError {
        GatewayError::DeadlineExceeded {
            budget_ms: self.budget_ms,
        }
    }
}

/// Decodes the request body by its negotiated encoding: the JSON shape, or the
/// binary image encoding (selected by `Content-Type`, see
/// [`protocol::BINARY_CONTENT_TYPE`]). Returns the metadata object the field
/// parsers read, plus the already-decoded image on the binary path.
fn decode_infer_body(
    body: &[u8],
    content_type: Option<&str>,
) -> Result<(JsonValue, Option<Matrix>), GatewayError> {
    if content_type
        .and_then(|t| t.split(';').next())
        .is_some_and(|t| t.trim().eq_ignore_ascii_case(protocol::BINARY_CONTENT_TYPE))
    {
        let (meta, image) = protocol::decode_binary_infer(body)
            .map_err(|e| GatewayError::BadRequest(e.to_string()))?;
        return Ok((meta, Some(image)));
    }
    let parsed = std::str::from_utf8(body)
        .map_err(|_| GatewayError::BadRequest("body is not UTF-8".into()))
        .and_then(|text| {
            serde::json::parse(text)
                .map_err(|e| GatewayError::BadRequest(format!("invalid JSON: {e}")))
        })?;
    Ok((parsed, None))
}

/// The request pipeline entry point (run on a dispatch-pool thread): parse enough
/// of the body to learn (or mint) the request id, open the trace, then run the
/// admit → route → retry core.
///
/// The body is parsed *before* admission control on purpose: an admission-shed 503
/// must still echo the client's `request_id`, and the parse cost is bounded by
/// `max_body_bytes` either way.
fn handle_infer(body: &[u8], content_type: Option<&str>, shared: &Arc<Shared>) -> RouteResponse {
    // The origin for every span offset: work before the body parses (UTF-8 check,
    // JSON or binary decode) is attributed to the `parse` span retroactively.
    let started = Instant::now();
    let (parsed, binary_image) = match decode_infer_body(body, content_type) {
        Ok(decoded) => decoded,
        // No usable body, so no client id: generate one so even this failure is
        // quotable from the error body.
        Err(err) => return infer_error(shared, &err, &trace::new_request_id(), None),
    };
    let request_id = match protocol::parse_infer_request_id(&parsed) {
        Ok(id) => id.unwrap_or_else(trace::new_request_id),
        Err(err) => {
            return infer_error(
                shared,
                &GatewayError::BadRequest(err.to_string()),
                &trace::new_request_id(),
                None,
            )
        }
    };
    let _log_scope = trace::request_scope(&request_id);
    let want_trace = match protocol::parse_infer_trace_flag(&parsed) {
        Ok(flag) => flag,
        Err(err) => {
            return infer_error(
                shared,
                &GatewayError::BadRequest(err.to_string()),
                &request_id,
                None,
            )
        }
    };
    // `"trace": true` forces span recording even when sampling is off, and the
    // recorded gateway+engine span tree is embedded in the reply.
    let handle = shared.tracer.begin(&request_id, started, want_trace);
    match infer_core(&parsed, binary_image, shared, started, &request_id, &handle) {
        Ok(mut body) => {
            body.set("request_id", request_id.as_str());
            if want_trace {
                // Embed what has been recorded so far (parse through the backend
                // attempts, engine spans grafted); the gateway's own serialize/write
                // spans land after this snapshot and stay gateway-local.
                if let Some(t) = &handle {
                    body.set("trace", trace::spans_json(&t.snapshot()));
                }
            }
            let hook = finish_hook(Arc::clone(shared), handle, 200);
            RouteResponse::new(200, body).with_on_written(hook)
        }
        Err(err) => infer_error(shared, &err, &request_id, handle),
    }
}

/// The admit → resolve tier routing (brownout may downgrade it) → cache lookup →
/// deadline-budgeted retry loop core. Returns the response body to send with
/// status 200 (before the `request_id` / `trace` fields are stamped on).
fn infer_core(
    parsed: &JsonValue,
    binary_image: Option<Matrix>,
    shared: &Arc<Shared>,
    started: Instant,
    request_id: &str,
    handle: &trace::TraceHandle,
) -> Result<JsonValue, GatewayError> {
    let (model_key, image) = match binary_image {
        // Binary path: the image arrived outside the metadata object.
        Some(image) => {
            let model = parsed
                .get("model")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| GatewayError::BadRequest("missing string field \"model\"".into()))?
                .to_string();
            (model, image)
        }
        None => protocol::parse_infer_request(parsed)
            .map_err(|e| GatewayError::BadRequest(e.to_string()))?,
    };
    let tier = protocol::parse_infer_tier(parsed)
        .map_err(|e| GatewayError::BadRequest(e.to_string()))?
        .map(|t| Tier::parse(&t))
        .transpose()?;
    let deadline = protocol::parse_infer_deadline_ms(parsed)
        .map_err(|e| GatewayError::BadRequest(e.to_string()))?
        .map(|budget_ms| Deadline {
            budget_ms,
            expires: started + Duration::from_millis(budget_ms),
        });
    let parse_done = Instant::now();
    if let Some(t) = handle {
        t.record("parse", String::new(), started, parse_done);
    }
    let _admitted = AdmissionGuard::admit(shared)?;
    if let Some(t) = handle {
        t.record("admission", String::new(), parse_done, Instant::now());
    }
    shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
    // A zero (or already-elapsed) budget is shed before routing: the typed 504
    // costs no inference anywhere.
    if let Some(d) = deadline {
        if d.remaining_ms(Instant::now()).is_none() {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return Err(d.error());
        }
    }

    // Brownout: under pressure, accuracy-tier requests ride the latency tier
    // (ViTALiTy's cheap linear path) instead of queueing or being shed. Only
    // tier-routed requests are eligible — an explicit model key is a contract —
    // and only when the cluster actually serves the downgraded key.
    let rewrite_start = Instant::now();
    let mut resolved = shared.config.routing.resolve(&model_key, tier);
    let mut degraded = false;
    if tier == Some(Tier::Accuracy) && shared.brownout.engaged() {
        let downgraded = shared
            .config
            .routing
            .resolve(&model_key, Some(Tier::Latency));
        if downgraded != resolved && shared.pool.serves(&downgraded) {
            resolved = downgraded;
            degraded = true;
            shared.metrics.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }
    if degraded {
        if let Some(t) = handle {
            t.record(
                "brownout_rewrite",
                format!("-> {resolved}"),
                rewrite_start,
                Instant::now(),
            );
        }
    }

    // Tier-routed keys must resolve to something the cluster actually serves —
    // answering 404 *here* (rather than per-backend) makes a routing-policy typo a
    // deterministic client-visible error instead of a retry storm. But 404 only
    // when the key is genuinely unknown to a partly-healthy cluster: a key some
    // (currently ejected) backend is known to serve, or any key during a total
    // outage, is a *transient* condition and stays a retryable 503.
    if !shared.pool.serves(&resolved) {
        if shared.pool.healthy_count() == 0 || shared.pool.known(&resolved) {
            return Err(GatewayError::NoBackend {
                healthy: shared.pool.healthy_count(),
                total: shared.pool.backends().len(),
                last_error: format!("no admitted backend serves {resolved}"),
            });
        }
        return Err(GatewayError::ModelNotFound(resolved));
    }

    let probe_start = Instant::now();
    let hash = image_hash(&image);
    let cached = shared.cache.get(&resolved, hash);
    if let Some(t) = handle {
        t.record(
            "cache_probe",
            if cached.is_some() { "hit" } else { "miss" }.to_string(),
            probe_start,
            Instant::now(),
        );
    }
    if let Some(reply) = cached {
        shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
        shared.metrics.record_routed(&resolved);
        shared
            .metrics
            .hit_latency
            .record_us(started.elapsed().as_micros() as u64);
        let mut body = protocol::infer_reply_json(&reply);
        body.set("cached", true);
        if degraded {
            body.set("degraded", true);
        }
        return Ok(body);
    }

    let reply = call_with_retries(shared, &resolved, &image, deadline, request_id, handle)?;
    shared.cache.put(&resolved, hash, reply.clone());
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    shared.metrics.record_routed(&resolved);
    shared
        .metrics
        .miss_latency
        .record_us(started.elapsed().as_micros() as u64);
    let mut body = protocol::infer_reply_json(&reply);
    body.set("cached", false);
    if degraded {
        body.set("degraded", true);
    }
    Ok(body)
}

/// The retry loop. Without a deadline it is attempt-bounded: `retry_budget` tries
/// across distinct backends. With a deadline the *remaining budget* is the loop
/// bound instead — the gateway keeps failing over (re-admitting previously excluded
/// backends) for as long as the client is still willing to wait, and answers a
/// typed 504 the moment it is not; each attempt forwards the remaining budget on
/// the wire so engines shed what expires in their queues.
///
/// Per-attempt outcome handling: transport failures eject and fail over; a
/// [`ClientError::TimedOut`] read timeout cools the backend down instead — slow is
/// not dead, and ejecting it would let one long batch take a healthy engine out of
/// rotation; 503s cool the backend for its `Retry-After` (capped); deterministic
/// 4xx answers are forwarded without retrying.
fn call_with_retries(
    shared: &Arc<Shared>,
    resolved: &str,
    image: &Matrix,
    deadline: Option<Deadline>,
    request_id: &str,
    handle: &trace::TraceHandle,
) -> Result<InferReply, GatewayError> {
    let budget = shared.config.retry_budget.max(1);
    let mut excluded: Vec<usize> = Vec::new();
    let mut last_error = String::from("no attempt made");
    let mut attempts = 0usize;
    loop {
        // Loop bound: remaining deadline when the client set one, the fixed
        // attempt budget otherwise.
        let remaining_ms = match deadline {
            Some(d) => match d.remaining_ms(Instant::now()) {
                Some(ms) => Some(ms),
                None => {
                    shared
                        .metrics
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(d.error());
                }
            },
            None => {
                if attempts >= budget {
                    break;
                }
                None
            }
        };
        let pick_start = Instant::now();
        match shared.pool.pick(resolved, &excluded) {
            Pick::Chosen(index, backend) => {
                if let Some(t) = handle {
                    t.record(
                        "pick",
                        backend.addr().to_string(),
                        pick_start,
                        Instant::now(),
                    );
                }
                if attempts > 0 {
                    shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                }
                attempts += 1;
                let attempt_start = Instant::now();
                let guard = InFlightGuard::new(Arc::clone(&backend));
                let result = backend.call(
                    resolved,
                    image,
                    shared.config.backend_timeout,
                    remaining_ms,
                    Some(request_id),
                    handle.is_some(),
                );
                drop(guard);
                let attempt_end = Instant::now();
                shared.metrics.backend_attempt.record_us(
                    attempt_end
                        .saturating_duration_since(attempt_start)
                        .as_micros() as u64,
                );
                if let Some(t) = handle {
                    let outcome = match &result {
                        Ok(_) => "ok".to_string(),
                        Err(err) => format!("error: {err}"),
                    };
                    let span = t.record(
                        "backend_attempt",
                        format!("{} {outcome}", backend.addr()),
                        attempt_start,
                        attempt_end,
                    );
                    if let Ok((_, Some(engine_spans))) = &result {
                        // Rebase the engine's spans (offsets from *its* handler
                        // entry) under this attempt span so the tree reads
                        // gateway → attempt → engine stages on one clock.
                        t.graft(span, attempt_start, engine_spans);
                    }
                    if result.is_err() {
                        // A failed attempt makes the whole request tail-sample
                        // worthy even if a later failover answers 200.
                        t.flag();
                    }
                }
                match result {
                    Ok((reply, _engine_spans)) => return Ok(reply),
                    Err(ClientError::Server {
                        status,
                        code,
                        message,
                        retry_after,
                        request_id: _,
                    }) => {
                        if code == "deadline_exceeded" {
                            // The engine's batcher shed it: the budget is gone (or
                            // will be within the forwarding slack). Answer the
                            // typed 504 now rather than burning another backend.
                            shared
                                .metrics
                                .deadline_expired
                                .fetch_add(1, Ordering::Relaxed);
                            return Err(GatewayError::DeadlineExceeded {
                                budget_ms: deadline.map_or(0, |d| d.budget_ms),
                            });
                        }
                        if status == 503 {
                            // Backpressure: honour the engine's Retry-After (capped)
                            // as a cooldown on that backend and resubmit elsewhere.
                            backend.set_cooldown(
                                Duration::from_secs(retry_after.unwrap_or(1))
                                    .min(shared.config.max_backoff),
                            );
                            last_error = format!("{code}: {message}");
                            excluded.push(index);
                        } else if status >= 500 {
                            // An engine-internal failure may be request-independent
                            // (worker crash): try a different backend.
                            last_error = format!("{code}: {message}");
                            excluded.push(index);
                        } else {
                            // 4xx is deterministic — retrying elsewhere cannot
                            // change the answer. Forward it.
                            return Err(GatewayError::Upstream {
                                status,
                                code,
                                message,
                            });
                        }
                    }
                    Err(ClientError::TimedOut { limit }) => {
                        // The socket read timed out at a limit *we* configured: the
                        // backend is slow, not provably dead. Cool it down and try
                        // elsewhere; the prober decides if it is actually gone.
                        backend.set_cooldown(shared.config.max_backoff.min(Duration::from_secs(1)));
                        last_error = format!("read timed out after {limit:?}");
                        excluded.push(index);
                    }
                    Err(err) => {
                        // Transport-level failure: the engine is gone or wedged.
                        // Eject it (the prober re-admits on recovery) and fail over.
                        backend.eject();
                        shared.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                        last_error = err.to_string();
                        excluded.push(index);
                    }
                }
            }
            Pick::Cooling(until) => {
                // Every remaining backend is backing off; wait out the shortest
                // cooldown (bounded, and never past the deadline) and allow
                // previously excluded backends again — after a sleep the cluster
                // may look entirely different.
                let mut wait = until
                    .saturating_duration_since(Instant::now())
                    .min(shared.config.max_backoff);
                if let Some(ms) = remaining_ms {
                    wait = wait.min(Duration::from_millis(ms));
                }
                std::thread::sleep(wait);
                excluded.clear();
            }
            Pick::None => {
                // With a deadline, excluded backends get another look while budget
                // remains (a cooled-down backend may have recovered mid-request);
                // without one, give up under the fixed attempt policy.
                if deadline.is_some() && !excluded.is_empty() && attempts < budget * 4 {
                    excluded.clear();
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                break;
            }
        }
    }
    Err(GatewayError::NoBackend {
        healthy: shared.pool.healthy_count(),
        total: shared.pool.backends().len(),
        last_error,
    })
}
