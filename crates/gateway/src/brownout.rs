//! Brownout degradation: under sustained pressure the gateway trades accuracy for
//! latency along the paper's own axis instead of shedding requests.
//!
//! ViTALiTy's whole premise is that the linear Taylor path (served here as the
//! `latency` tier's int8 variant) answers the same request far cheaper than the
//! exact unified path (`accuracy` tier). The [`BrownoutController`] watches the
//! pressure signal the prober already collects — probed backend queue depths and
//! in-flight batches, optionally the miss-path p95 latency — and, past the
//! configured [`BrownoutConfig`](crate::config::BrownoutConfig) thresholds,
//! downgrades `accuracy`-tier requests to the latency variant. The response is
//! annotated (`"degraded": true`) and counted, so clients and dashboards can see
//! the trade being made; explicit model keys and `latency`-tier requests are never
//! touched.
//!
//! Hysteresis: entry and exit use different thresholds (`enter_pressure` >
//! `exit_pressure`) and an engaged brownout holds for at least `min_hold`, so one
//! hot probe round cannot flap the cluster's tier routing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::json::JsonValue;

use crate::config::BrownoutConfig;

/// Tracks cluster pressure across prober rounds and decides whether the gateway is
/// currently degrading accuracy-tier traffic.
#[derive(Debug)]
pub struct BrownoutController {
    config: BrownoutConfig,
    engaged: AtomicBool,
    engaged_at: Mutex<Option<Instant>>,
    /// Times brownout has engaged since startup.
    entries: AtomicU64,
    /// Last observed pressure, stored as f64 bits for the healthz snapshot.
    last_pressure: AtomicU64,
}

impl BrownoutController {
    /// Creates a disengaged controller with the given thresholds.
    pub fn new(config: BrownoutConfig) -> Self {
        assert!(
            config.exit_pressure <= config.enter_pressure,
            "exit_pressure ({}) must not exceed enter_pressure ({}) — the gap is the hysteresis band",
            config.exit_pressure,
            config.enter_pressure
        );
        Self {
            config,
            engaged: AtomicBool::new(false),
            engaged_at: Mutex::new(None),
            entries: AtomicU64::new(0),
            last_pressure: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Feeds one prober round's observation: `pressure` is the mean probed
    /// `queue_depth + in_flight_batches` per admitted backend, `miss_p95_us` the
    /// gateway's current miss-path p95 latency.
    pub fn observe(&self, pressure: f64, miss_p95_us: u64) {
        self.last_pressure
            .store(pressure.to_bits(), Ordering::Relaxed);
        let latency_hot = self
            .config
            .miss_p95_trigger_us
            .is_some_and(|threshold| miss_p95_us >= threshold);
        let hot = pressure >= self.config.enter_pressure || latency_hot;
        if self.engaged.load(Ordering::SeqCst) {
            // Exit needs all three: not currently hot, pressure inside the exit
            // band, and the minimum hold served.
            let mut engaged_at = self.engaged_at.lock().expect("brownout lock poisoned");
            let held_long_enough =
                engaged_at.is_some_and(|since| since.elapsed() >= self.config.min_hold);
            if !hot && pressure <= self.config.exit_pressure && held_long_enough {
                *engaged_at = None;
                self.engaged.store(false, Ordering::SeqCst);
                trace::info!("brownout disengaged (pressure {pressure:.2})");
            }
        } else if hot {
            *self.engaged_at.lock().expect("brownout lock poisoned") = Some(Instant::now());
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.engaged.store(true, Ordering::SeqCst);
            trace::info!(
                "brownout engaged (pressure {pressure:.2}, latency trigger: {latency_hot})"
            );
        }
    }

    /// Whether accuracy-tier requests are currently being downgraded.
    pub fn engaged(&self) -> bool {
        self.engaged.load(Ordering::SeqCst)
    }

    /// The pressure value fed by the most recent prober round.
    pub fn last_pressure(&self) -> f64 {
        f64::from_bits(self.last_pressure.load(Ordering::Relaxed))
    }

    /// Times brownout has engaged since startup.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// The brownout block of the gateway's `/healthz` body.
    pub fn snapshot_json(&self) -> JsonValue {
        let mut body = JsonValue::object();
        body.set("engaged", self.engaged())
            .set("pressure", self.last_pressure())
            .set("enter_pressure", self.config.enter_pressure)
            .set("exit_pressure", self.config.exit_pressure)
            .set("entries", self.entries());
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config(enter: f64, exit: f64, hold_ms: u64) -> BrownoutConfig {
        BrownoutConfig {
            enter_pressure: enter,
            exit_pressure: exit,
            min_hold: Duration::from_millis(hold_ms),
            miss_p95_trigger_us: None,
        }
    }

    #[test]
    fn engages_at_enter_and_recovers_only_below_exit() {
        let ctl = BrownoutController::new(config(8.0, 2.0, 0));
        ctl.observe(5.0, 0);
        assert!(!ctl.engaged(), "below enter threshold");
        ctl.observe(9.0, 0);
        assert!(ctl.engaged(), "at/above enter threshold");
        assert_eq!(ctl.entries(), 1);
        // Inside the hysteresis band: stays engaged.
        ctl.observe(5.0, 0);
        assert!(ctl.engaged(), "between exit and enter stays engaged");
        ctl.observe(1.0, 0);
        assert!(!ctl.engaged(), "below exit recovers");
        assert!((ctl.last_pressure() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn min_hold_debounces_recovery() {
        let ctl = BrownoutController::new(config(8.0, 2.0, 40));
        ctl.observe(10.0, 0);
        assert!(ctl.engaged());
        ctl.observe(0.0, 0);
        assert!(ctl.engaged(), "a single quiet round inside min_hold holds");
        std::thread::sleep(Duration::from_millis(60));
        ctl.observe(0.0, 0);
        assert!(!ctl.engaged(), "after min_hold the quiet round recovers");
    }

    #[test]
    fn latency_trigger_counts_as_pressure() {
        let ctl = BrownoutController::new(BrownoutConfig {
            miss_p95_trigger_us: Some(250_000),
            ..config(100.0, 1.0, 0)
        });
        ctl.observe(0.0, 100_000);
        assert!(!ctl.engaged(), "latency under the trigger");
        ctl.observe(0.0, 300_000);
        assert!(
            ctl.engaged(),
            "slow misses engage brownout without deep queues"
        );
        ctl.observe(0.0, 100_000);
        assert!(
            !ctl.engaged(),
            "fast again (and under exit pressure) recovers"
        );
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_are_rejected() {
        BrownoutController::new(config(2.0, 8.0, 0));
    }
}
