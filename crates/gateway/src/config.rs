//! Gateway tunables: retry budget, health probing cadence, cache bounds and the
//! routing policy, bundled behind [`GatewayConfig`].

use std::time::Duration;

use crate::router::RoutingPolicy;

/// Bounds of the response cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total cached responses across all shards (0 disables caching entirely).
    pub capacity: usize,
    /// How long a cached response stays servable after insertion.
    pub ttl: Duration,
    /// Number of independently locked shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            ttl: Duration::from_secs(60),
            shards: 8,
        }
    }
}

/// Gateway tunables; `Default` is a sane local configuration on an ephemeral port.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Gateway::local_addr`](crate::Gateway::local_addr)).
    pub addr: String,
    /// How often the prober thread refreshes every backend's `/healthz` state (the
    /// least-loaded signal and the ejection/re-admission clock).
    pub probe_interval: Duration,
    /// Socket timeout of one health probe.
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a healthy backend is ejected. Request-path
    /// I/O failures eject immediately — a connection the gateway just watched die
    /// needs no second opinion.
    pub eject_after_probe_failures: u32,
    /// Attempts per admitted request across distinct backends (at least 1). A failed
    /// attempt resubmits to a different backend, so an engine crash under load loses
    /// no admitted request while healthy capacity remains.
    pub retry_budget: usize,
    /// Per-call read timeout on backend connections.
    pub backend_timeout: Duration,
    /// Cap on any single back-off the retry loop honours (a backend's `Retry-After`
    /// is clamped to this, so one engine's long hint cannot stall the gateway).
    pub max_backoff: Duration,
    /// Response-cache bounds.
    pub cache: CacheConfig,
    /// The tier → variant routing policy.
    pub routing: RoutingPolicy,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Socket read timeout of gateway connections; doubles as the shutdown poll
    /// interval for idle keep-alive connections.
    pub poll_interval: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(1),
            eject_after_probe_failures: 2,
            retry_budget: 3,
            backend_timeout: Duration::from_secs(30),
            max_backoff: Duration::from_secs(1),
            cache: CacheConfig::default(),
            routing: RoutingPolicy::default(),
            max_body_bytes: 16 * 1024 * 1024,
            poll_interval: Duration::from_millis(50),
        }
    }
}
