//! Gateway tunables: retry budget, health probing cadence, cache bounds and the
//! routing policy, bundled behind [`GatewayConfig`].

use std::time::Duration;

use crate::router::RoutingPolicy;

/// Bounds of the response cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total cached responses across all shards (0 disables caching entirely).
    pub capacity: usize,
    /// How long a cached response stays servable after insertion.
    pub ttl: Duration,
    /// Number of independently locked shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            ttl: Duration::from_secs(60),
            shards: 8,
        }
    }
}

/// Thresholds of the brownout degradation ladder (see
/// [`BrownoutController`](crate::brownout::BrownoutController)).
///
/// Pressure is the mean probed load — `queue_depth + in_flight_batches` from each
/// admitted backend's `/healthz` — per admitted backend, refreshed every prober
/// round. Past [`enter_pressure`](Self::enter_pressure) the gateway downgrades
/// `accuracy`-tier requests to the latency tier (ViTALiTy's int8 linear path)
/// instead of shedding them; it recovers once pressure falls to
/// [`exit_pressure`](Self::exit_pressure) and the state has been held for
/// [`min_hold`](Self::min_hold) (hysteresis, so a load spike cannot flap the tier
/// routing every probe round).
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Mean probed load per admitted backend at/above which brownout engages.
    pub enter_pressure: f64,
    /// Pressure at/below which brownout may disengage (must sit below
    /// `enter_pressure` — the gap is the hysteresis band).
    pub exit_pressure: f64,
    /// Minimum time brownout stays engaged once entered, so recovery is a decision,
    /// not a single quiet probe round.
    pub min_hold: Duration,
    /// Optional additional trigger: a p95 miss-path latency (µs) at/above which the
    /// gateway counts the cluster as pressured even with shallow probed queues.
    pub miss_p95_trigger_us: Option<u64>,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            enter_pressure: 8.0,
            exit_pressure: 2.0,
            min_hold: Duration::from_millis(500),
            miss_p95_trigger_us: None,
        }
    }
}

/// Bounds of gateway-side admission control.
///
/// The gateway bounds what it will take on *before* engines start shedding: a
/// request past either bound is answered 503 immediately, with a `Retry-After`
/// derived from the probed backend queue depth (deep queues → longer hint) instead
/// of a constant.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Largest number of inference requests this gateway handles concurrently
    /// (queued-at-gateway bound; 0 = unbounded).
    pub max_concurrent: usize,
    /// Largest number of calls the gateway keeps in flight against any single
    /// backend; a backend at the cap is skipped like one cooling down
    /// (0 = unbounded).
    pub max_per_backend_in_flight: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 512,
            max_per_backend_in_flight: 128,
        }
    }
}

/// Gateway tunables; `Default` is a sane local configuration on an ephemeral port.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Gateway::local_addr`](crate::Gateway::local_addr)).
    pub addr: String,
    /// How often the prober thread refreshes every backend's `/healthz` state (the
    /// least-loaded signal and the ejection/re-admission clock).
    pub probe_interval: Duration,
    /// Socket timeout of one health probe.
    pub probe_timeout: Duration,
    /// Consecutive failed probes before a healthy backend is ejected. Request-path
    /// I/O failures eject immediately — a connection the gateway just watched die
    /// needs no second opinion.
    pub eject_after_probe_failures: u32,
    /// Attempts per admitted request across distinct backends (at least 1). A failed
    /// attempt resubmits to a different backend, so an engine crash under load loses
    /// no admitted request while healthy capacity remains.
    pub retry_budget: usize,
    /// Per-call read timeout on backend connections.
    pub backend_timeout: Duration,
    /// Cap on any single back-off the retry loop honours (a backend's `Retry-After`
    /// is clamped to this, so one engine's long hint cannot stall the gateway).
    pub max_backoff: Duration,
    /// Response-cache bounds.
    pub cache: CacheConfig,
    /// The tier → variant routing policy.
    pub routing: RoutingPolicy,
    /// Brownout degradation thresholds.
    pub brownout: BrownoutConfig,
    /// Gateway-side admission bounds.
    pub admission: AdmissionConfig,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// The event loop's poll timeout (doubles as the shutdown poll interval; on
    /// the threaded fallback it is the socket read timeout serving the same role).
    pub poll_interval: Duration,
    /// Threads in the infer dispatch pool — the blocking cache → route → retry
    /// pipeline runs here, off the connection event loop. This bounds how many
    /// inference requests the gateway *processes* concurrently (admission control
    /// still bounds how many it *accepts*); clamped to at least 2 so one stalled
    /// backend call can never serialize the whole gateway.
    pub dispatch_threads: usize,
    /// Request-tracing policy (sampling rate + `/debug/traces` ring size). The
    /// default reads `VITALITY_TRACE_SAMPLE` and keeps tracing off otherwise.
    pub trace: trace::TraceConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(1),
            eject_after_probe_failures: 2,
            retry_budget: 3,
            backend_timeout: Duration::from_secs(30),
            max_backoff: Duration::from_secs(1),
            cache: CacheConfig::default(),
            routing: RoutingPolicy::default(),
            brownout: BrownoutConfig::default(),
            admission: AdmissionConfig::default(),
            max_body_bytes: 16 * 1024 * 1024,
            poll_interval: Duration::from_millis(50),
            dispatch_threads: 32,
            trace: trace::TraceConfig::default(),
        }
    }
}
