//! # `vitality-gateway` — multi-engine cluster front-end
//!
//! One `vitality-serve` engine turns ViTALiTy's linear Taylor kernels into served
//! throughput with bounded tail latency; this crate is the scale-out step. It is an
//! HTTP front-end speaking the same wire protocol as the engines (`POST /v1/infer`,
//! `GET /healthz`, `GET /metrics` — see [`vitality_serve::protocol`]) that fans
//! requests out across a pool of engine backends, with four pieces:
//!
//! 1. **[`BackendPool`]** — periodic `/healthz` probing of every engine,
//!    least-loaded routing on the queue-depth / in-flight-batch numbers healthz
//!    reports, immediate ejection of backends whose connections die, re-admission
//!    when probes succeed again, and a bounded retry budget that resubmits a failed
//!    request to a *different* backend — an engine crash under load loses zero
//!    admitted requests while healthy capacity remains.
//! 2. **[`ResponseCache`]** — a sharded LRU keyed on
//!    `(model_key, fnv1a(image bytes))` with capacity and TTL bounds; repeat images
//!    are answered without touching any engine (inference is deterministic, so hits
//!    are exact).
//! 3. **[`RoutingPolicy`]** — static per-model rules plus the per-request
//!    `tier: "latency" | "accuracy"` protocol field, rewriting the variant half of
//!    the model key (by default to `int8` / `unified`) — ViTALiTy's cheap linear
//!    path and accurate unified path served as tiers of one cluster.
//! 4. **[`GatewayMetrics`]** — cache hit/miss counters and latency split, retry and
//!    failover counts, per-resolved-variant routing counts and per-backend blocks,
//!    aggregated on the gateway's `/metrics`.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use vitality_gateway::{Gateway, GatewayConfig};
//! use vitality_serve::{ModelRegistry, ServeClient, Server, ServerConfig};
//! use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};
//!
//! // Two engines sharing the same weights...
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let cfg = TrainConfig::tiny();
//! let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Taylor);
//! let engines: Vec<Server> = (0..2)
//!     .map(|_| {
//!         let mut registry = ModelRegistry::new();
//!         registry.register("demo", model.clone()).unwrap();
//!         Server::start(ServerConfig::default(), registry).unwrap()
//!     })
//!     .collect();
//!
//! // ...behind one gateway.
//! let addrs: Vec<_> = engines.iter().map(|e| e.local_addr()).collect();
//! let gateway = Gateway::start(GatewayConfig::default(), &addrs).unwrap();
//! assert_eq!(gateway.healthy_backends(), 2);
//!
//! let image = vitality_tensor::init::uniform(&mut rng, cfg.image_size, cfg.image_size, 0.0, 1.0);
//! let mut client = ServeClient::connect(gateway.local_addr()).unwrap();
//! let reply = client.infer("demo:taylor", &image).unwrap();
//! assert_eq!(reply.prediction, model.predict(&image));
//!
//! drop(client);
//! gateway.shutdown();
//! for engine in engines {
//!     engine.shutdown();
//! }
//! ```

#![deny(missing_docs)]

pub mod brownout;
pub mod cache;
pub mod config;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;

pub use brownout::BrownoutController;
pub use cache::{image_hash, Fnv1a, ResponseCache};
pub use config::{AdmissionConfig, BrownoutConfig, CacheConfig, GatewayConfig};
pub use error::GatewayError;
pub use metrics::GatewayMetrics;
pub use pool::{Backend, BackendPool, Pick};
pub use router::{RoutingPolicy, Tier, TierRules};
pub use server::Gateway;
