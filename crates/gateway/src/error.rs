//! Typed gateway errors and their mapping onto the wire protocol.

use std::fmt;

/// Everything that can go wrong between a request reaching the gateway and a response
/// leaving it. Like [`ServeError`](vitality_serve::ServeError), each variant maps to a
/// stable machine-readable `code` and an HTTP status, so clients can distinguish "fix
/// your request" from "back off and retry" without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The request body was not a valid (gateway) inference request.
    BadRequest(String),
    /// The resolved `name:variant` key is served by no backend in the pool.
    ModelNotFound(String),
    /// The retry budget was exhausted without any backend answering.
    NoBackend {
        /// Backends currently marked healthy.
        healthy: usize,
        /// Backends configured in the pool.
        total: usize,
        /// The last per-backend failure observed, for the error body.
        last_error: String,
    },
    /// A backend answered with a non-retryable typed error (4xx), forwarded as-is.
    Upstream {
        /// The backend's HTTP status.
        status: u16,
        /// The backend's machine-readable error code.
        code: String,
        /// The backend's message.
        message: String,
    },
    /// The request's `deadline_ms` budget ran out before any backend answered; no
    /// further attempt was made.
    DeadlineExceeded {
        /// The deadline budget the client sent, in milliseconds.
        budget_ms: u64,
    },
    /// The gateway's own admission bounds are full; the request was refused before
    /// touching any backend.
    AdmissionFull {
        /// Concurrent requests the gateway was handling at refusal time.
        in_flight: u64,
        /// The configured concurrency bound that was hit.
        limit: u64,
        /// Seconds to wait before retrying, derived from the probed backend queue
        /// depth and observed miss-path latency (not a constant).
        retry_after: u64,
    },
}

impl GatewayError {
    /// Stable machine-readable error code carried in the JSON error body.
    pub fn code(&self) -> &str {
        match self {
            GatewayError::BadRequest(_) => "bad_request",
            GatewayError::ModelNotFound(_) => "model_not_found",
            GatewayError::NoBackend { .. } => "no_backend",
            GatewayError::Upstream { code, .. } => code,
            GatewayError::DeadlineExceeded { .. } => "deadline_exceeded",
            GatewayError::AdmissionFull { .. } => "admission_full",
        }
    }

    /// The HTTP status the wire layer reports this error with.
    pub fn http_status(&self) -> u16 {
        match self {
            GatewayError::BadRequest(_) => 400,
            GatewayError::ModelNotFound(_) => 404,
            GatewayError::NoBackend { .. } => 503,
            GatewayError::Upstream { status, .. } => *status,
            GatewayError::DeadlineExceeded { .. } => 504,
            GatewayError::AdmissionFull { .. } => 503,
        }
    }

    /// Seconds a client should wait before retrying (the 503 path), mirrored as a
    /// `Retry-After` header like the engines' own backpressure responses.
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            GatewayError::NoBackend { .. } => Some(1),
            GatewayError::AdmissionFull { retry_after, .. } => Some((*retry_after).max(1)),
            _ => None,
        }
    }
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            GatewayError::ModelNotFound(key) => {
                write!(f, "model {key:?} is served by no backend in the pool")
            }
            GatewayError::NoBackend {
                healthy,
                total,
                last_error,
            } => write!(
                f,
                "no backend answered ({healthy}/{total} healthy; last error: {last_error})"
            ),
            GatewayError::Upstream {
                status,
                code,
                message,
            } => write!(f, "backend error {status} ({code}): {message}"),
            GatewayError::DeadlineExceeded { budget_ms } => write!(
                f,
                "deadline of {budget_ms} ms expired before any backend answered"
            ),
            GatewayError::AdmissionFull {
                in_flight, limit, ..
            } => write!(
                f,
                "gateway admission full: {in_flight} requests in flight (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for GatewayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_statuses_and_retry_hints_are_stable() {
        let cases: Vec<(GatewayError, &str, u16, Option<u64>)> = vec![
            (
                GatewayError::BadRequest("x".into()),
                "bad_request",
                400,
                None,
            ),
            (
                GatewayError::ModelNotFound("m:int8".into()),
                "model_not_found",
                404,
                None,
            ),
            (
                GatewayError::NoBackend {
                    healthy: 0,
                    total: 2,
                    last_error: "io".into(),
                },
                "no_backend",
                503,
                Some(1),
            ),
            (
                GatewayError::Upstream {
                    status: 404,
                    code: "model_not_found".into(),
                    message: "missing".into(),
                },
                "model_not_found",
                404,
                None,
            ),
            (
                GatewayError::DeadlineExceeded { budget_ms: 75 },
                "deadline_exceeded",
                504,
                None,
            ),
            (
                GatewayError::AdmissionFull {
                    in_flight: 512,
                    limit: 512,
                    retry_after: 3,
                },
                "admission_full",
                503,
                Some(3),
            ),
        ];
        for (err, code, status, retry) in cases {
            assert_eq!(err.code(), code);
            assert_eq!(err.http_status(), status);
            assert_eq!(err.retry_after_secs(), retry);
            assert!(!err.to_string().is_empty());
        }
    }
}
