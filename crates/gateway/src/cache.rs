//! The response cache: a sharded LRU keyed on `(model_key, fnv1a(image bytes))` with
//! capacity and TTL bounds, serving repeat images without touching any engine.
//!
//! Inference here is deterministic — the same image through the same `name:variant`
//! key always produces the same logits — so a cache hit is *exact*, not approximate.
//! The key hashes the resolved model key (after tier routing) together with the raw
//! `f32` bit pattern of every pixel, so two tiers of the same image cache separately
//! and an image differing in one ULP misses. Entries expire after the configured TTL
//! (a deployment that retrains/replaces weights behind a stable key picks a TTL no
//! longer than its rollout interval), and each shard evicts its least-recently-used
//! entry once full. Shards are independently locked, so concurrent connection
//! handlers only contend when their hashes collide on a shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::json::JsonValue;
use vitality_serve::InferReply;
use vitality_tensor::Matrix;

/// FNV-1a over a byte stream: tiny, allocation-free and plenty for cache keying.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a of an image's exact `f32` bit pattern (dimensions included, so a `2x8` and
/// a `4x4` image with identical data do not collide).
pub fn image_hash(image: &Matrix) -> u64 {
    let mut hash = Fnv1a::new();
    hash.update(&(image.rows() as u64).to_le_bytes());
    hash.update(&(image.cols() as u64).to_le_bytes());
    for r in 0..image.rows() {
        for &v in image.row(r) {
            hash.update(&v.to_bits().to_le_bytes());
        }
    }
    hash.finish()
}

struct Entry {
    reply: InferReply,
    inserted: Instant,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<(String, u64), Entry>,
}

/// The sharded LRU response cache (see the module docs for semantics).
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    ttl: Duration,
    /// Logical clock driving LRU recency (monotonic, shared across shards).
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

impl ResponseCache {
    /// Creates a cache with `capacity` total entries across `shards` shards and the
    /// given TTL. A zero capacity disables caching (every lookup misses, nothing is
    /// stored).
    pub fn new(capacity: usize, ttl: Duration, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            capacity_per_shard: capacity / shards + usize::from(!capacity.is_multiple_of(shards)),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            ttl,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
        }
    }

    fn shard(&self, image_hash: u64) -> &Mutex<Shard> {
        &self.shards[(image_hash % self.shards.len() as u64) as usize]
    }

    /// Looks up the cached reply for `(model_key, image_hash)`, counting a hit or a
    /// miss and expiring the entry instead when it has outlived the TTL.
    pub fn get(&self, model_key: &str, image_hash: u64) -> Option<InferReply> {
        if self.capacity_per_shard == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(image_hash).lock().expect("cache shard poisoned");
        let key = (model_key.to_string(), image_hash);
        if let Some(entry) = shard.entries.get_mut(&key) {
            if entry.inserted.elapsed() > self.ttl {
                shard.entries.remove(&key);
                self.expirations.fetch_add(1, Ordering::Relaxed);
            } else {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let reply = entry.reply.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(reply);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a reply, evicting the shard's least-recently-used entry when full.
    pub fn put(&self, model_key: &str, image_hash: u64, reply: InferReply) {
        if self.capacity_per_shard == 0 {
            return;
        }
        let mut shard = self.shard(image_hash).lock().expect("cache shard poisoned");
        let key = (model_key.to_string(), image_hash);
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.capacity_per_shard {
            // O(shard len) scan: shards are small (capacity / shards), and eviction
            // only runs on insert-at-capacity, never on the hit path.
            if let Some(lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.entries.insert(
            key,
            Entry {
                reply,
                inserted: Instant::now(),
                last_used,
            },
        );
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to go to a backend.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The `cache` block of the gateway's `/metrics` snapshot.
    pub fn snapshot_json(&self) -> JsonValue {
        let hits = self.hits();
        let misses = self.misses();
        let mut body = JsonValue::object();
        body.set("entries", self.len())
            .set("hits", hits)
            .set("misses", misses)
            .set("hit_ratio", hits as f64 / ((hits + misses) as f64).max(1.0))
            .set("evictions", self.evictions.load(Ordering::Relaxed))
            .set("expirations", self.expirations.load(Ordering::Relaxed));
        body
    }
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("ttl", &self.ttl)
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(model: &str, prediction: usize) -> InferReply {
        InferReply {
            model: model.to_string(),
            prediction,
            logits: vec![0.0, 1.0],
            batch_size: 1,
            queue_us: 0,
        }
    }

    #[test]
    fn image_hashes_are_bit_sensitive_and_shape_sensitive() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut b = a.clone();
        assert_eq!(image_hash(&a), image_hash(&b));
        b.set(1, 1, f32::from_bits(b.get(1, 1).to_bits() ^ 1));
        assert_ne!(image_hash(&a), image_hash(&b));
        let flat = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
        assert_ne!(
            image_hash(&a),
            image_hash(&flat),
            "shape is part of the key"
        );
    }

    #[test]
    fn hits_are_exact_and_model_scoped() {
        let cache = ResponseCache::new(8, Duration::from_secs(60), 2);
        let hash = 0xdead_beef;
        assert!(cache.get("m:taylor", hash).is_none());
        cache.put("m:taylor", hash, reply("m:taylor", 3));
        let hit = cache.get("m:taylor", hash).expect("hit");
        assert_eq!(hit.prediction, 3);
        // The same image under another model key is a distinct entry.
        assert!(cache.get("m:int8", hash).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used_per_shard() {
        // One shard makes the LRU order deterministic.
        let cache = ResponseCache::new(2, Duration::from_secs(60), 1);
        cache.put("m:a", 1, reply("m:a", 1));
        cache.put("m:b", 2, reply("m:b", 2));
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(cache.get("m:a", 1).is_some());
        cache.put("m:c", 3, reply("m:c", 3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("m:a", 1).is_some(), "recently used survives");
        assert!(cache.get("m:b", 2).is_none(), "LRU entry evicted");
        assert!(cache.get("m:c", 3).is_some());
        assert_eq!(
            cache
                .snapshot_json()
                .get("evictions")
                .and_then(JsonValue::as_usize),
            Some(1)
        );
    }

    #[test]
    fn entries_expire_after_the_ttl() {
        let cache = ResponseCache::new(4, Duration::from_millis(30), 1);
        cache.put("m:a", 7, reply("m:a", 1));
        assert!(cache.get("m:a", 7).is_some());
        std::thread::sleep(Duration::from_millis(60));
        assert!(cache.get("m:a", 7).is_none(), "expired entry misses");
        assert_eq!(cache.len(), 0, "expiry removes the entry");
        assert_eq!(
            cache
                .snapshot_json()
                .get("expirations")
                .and_then(JsonValue::as_usize),
            Some(1)
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0, Duration::from_secs(60), 4);
        cache.put("m:a", 1, reply("m:a", 1));
        assert!(cache.get("m:a", 1).is_none());
        assert_eq!(cache.len(), 0);
    }
}
