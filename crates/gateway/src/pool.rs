//! The backend pool: one engine process per entry, probed over `/healthz`, routed by
//! least observed load, ejected when dead and re-admitted when probes succeed again.
//!
//! # Load signal
//!
//! Each probe records the queue depth and in-flight batch count an engine's
//! `/healthz` now reports. Between probes the gateway tracks its own in-flight call
//! count per backend, so [`BackendPool::pick`] ranks backends by
//! `own in-flight × 2 + probed queue depth + probed in-flight batches` — the gateway's
//! unanswered calls are the freshest signal and get double weight; the probed numbers
//! fill in load from other traffic sources (other gateways, direct clients).
//!
//! # Failure handling
//!
//! * A request-path I/O failure ejects the backend immediately (the gateway just
//!   watched the connection die) and drops its pooled connections.
//! * Probe failures eject after a configured consecutive count, so a one-off slow
//!   probe does not flap a healthy engine.
//! * A 503 with `Retry-After` puts the backend in a bounded *cooldown* — still
//!   healthy, just skipped until the hint expires.
//! * Any successful probe re-admits the backend and resets its failure count.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::json::JsonValue;
use vitality_serve::{ClientError, InferReply, ServeClient};
use vitality_tensor::Matrix;

/// Cap on pooled idle keep-alive connections per backend. Beyond this, a finished
/// call's connection is dropped instead of pooled — without a cap, one
/// concurrency-64 burst would pin 64 sockets (and 64 engine connection-handler
/// threads) per backend for the gateway's lifetime.
const MAX_IDLE_CONNECTIONS: usize = 16;

/// One engine backend: address, probed health/load state and a small pool of idle
/// keep-alive connections.
#[derive(Debug)]
pub struct Backend {
    addr: SocketAddr,
    healthy: AtomicBool,
    /// Bumped by every [`Backend::eject`]; a probe only re-admits when the epoch it
    /// started under is still current, so a probe answered by an engine that died
    /// (or drained) while the probe was in flight cannot re-admit a dead backend.
    eject_epoch: AtomicU64,
    consecutive_probe_failures: AtomicU32,
    cooldown_until: Mutex<Option<Instant>>,
    /// Last probed `/healthz` queue depth.
    queue_depth: AtomicU64,
    /// Last probed `/healthz` in-flight batch count.
    in_flight_batches: AtomicU64,
    /// Calls this gateway currently has outstanding against the backend.
    gateway_in_flight: AtomicU64,
    /// Admission bound on `gateway_in_flight` (0 = unbounded); a backend at the cap
    /// is skipped by routing like one briefly cooling down.
    in_flight_limit: AtomicU64,
    /// Whether the backend advertised the binary image encoding on its last
    /// successful probe (`"binary"` under `"encodings"` in `/healthz`) — the
    /// negotiation gate for sending it compact request bodies.
    supports_binary: AtomicBool,
    /// Model keys the backend reported serving.
    models: Mutex<Vec<String>>,
    /// Idle keep-alive connections, reused across calls.
    idle: Mutex<Vec<ServeClient>>,
    // Counters for the gateway's /metrics.
    requests: AtomicU64,
    errors: AtomicU64,
    ejections: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
}

impl Backend {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            // Unknown until the first probe; `Gateway::start` runs a synchronous
            // probe round, so a reachable backend is admitted before traffic.
            healthy: AtomicBool::new(false),
            eject_epoch: AtomicU64::new(0),
            consecutive_probe_failures: AtomicU32::new(0),
            cooldown_until: Mutex::new(None),
            queue_depth: AtomicU64::new(0),
            in_flight_batches: AtomicU64::new(0),
            gateway_in_flight: AtomicU64::new(0),
            in_flight_limit: AtomicU64::new(0),
            supports_binary: AtomicBool::new(false),
            models: Mutex::new(Vec::new()),
            idle: Mutex::new(Vec::new()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            probes_ok: AtomicU64::new(0),
            probes_failed: AtomicU64::new(0),
        }
    }

    /// The backend's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the backend is currently admitted for routing.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// The ranking key of least-loaded routing (see the module docs).
    fn load(&self) -> u64 {
        self.gateway_in_flight.load(Ordering::Relaxed) * 2
            + self.queue_depth.load(Ordering::Relaxed)
            + self.in_flight_batches.load(Ordering::Relaxed)
    }

    /// Whether the backend may receive a request right now (healthy, under its
    /// in-flight cap and not cooling down). Returns the cooldown expiry when a wait
    /// would help (cooldown, or the cap — capped backends clear in milliseconds, so
    /// they count as briefly cooling rather than unavailable).
    fn availability(&self) -> Result<(), Option<Instant>> {
        if !self.healthy() {
            return Err(None);
        }
        let limit = self.in_flight_limit.load(Ordering::Relaxed);
        if limit > 0 && self.gateway_in_flight.load(Ordering::Relaxed) >= limit {
            return Err(Some(Instant::now() + Duration::from_millis(5)));
        }
        let mut cooldown = self.cooldown_until.lock().expect("cooldown lock poisoned");
        match *cooldown {
            Some(until) if Instant::now() < until => Err(Some(until)),
            Some(_) => {
                *cooldown = None;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Puts the backend in a bounded cooldown (the 503 `Retry-After` path).
    pub fn set_cooldown(&self, duration: Duration) {
        let until = Instant::now() + duration;
        let mut cooldown = self.cooldown_until.lock().expect("cooldown lock poisoned");
        *cooldown = Some(cooldown.map_or(until, |existing| existing.max(until)));
    }

    /// Ejects the backend from routing until a probe succeeds again.
    pub fn eject(&self) {
        self.eject_epoch.fetch_add(1, Ordering::SeqCst);
        if self.healthy.swap(false, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::Relaxed);
            trace::warn!(
                "ejected backend {} (ejection #{})",
                self.addr,
                self.ejections.load(Ordering::Relaxed)
            );
        }
        // Pooled connections to a dead engine are useless; drop them so re-admission
        // starts from fresh sockets.
        self.idle.lock().expect("idle pool poisoned").clear();
    }

    /// Runs one inference call on a pooled (or fresh) keep-alive connection.
    ///
    /// `deadline_ms` is the request's *remaining* budget, forwarded on the wire so
    /// the engine's batcher can shed the request if it expires in the engine queue;
    /// it also tightens this call's socket read timeout — there is no point waiting
    /// `timeout` for an answer the deadline has already disqualified.
    ///
    /// On success the connection returns to the idle pool; on failure it is dropped.
    /// The per-call `gateway_in_flight` window around this is maintained by the
    /// caller via [`InFlightGuard`].
    ///
    /// `request_id` is propagated to the engine verbatim so one id names the request
    /// across every hop (and every retry attempt); `want_trace` asks the engine to
    /// embed its span list in the reply, which the caller grafts under its own
    /// backend-attempt span.
    pub fn call(
        &self,
        model_key: &str,
        image: &Matrix,
        timeout: Duration,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
        want_trace: bool,
    ) -> Result<(InferReply, Option<Vec<trace::Span>>), ClientError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Grace on top of the budget so an engine-side 504 (typed, precise) wins the
        // race against this socket timing out (opaque).
        let effective = deadline_ms.map_or(timeout, |ms| {
            timeout.min(Duration::from_millis(ms.saturating_add(50)))
        });
        // The timeout is re-armed on every checkout: a pooled connection carries
        // whatever the previous call's deadline dictated.
        let mut client = match self.checkout(effective) {
            Ok(client) => client,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Err(ClientError::Io(e));
            }
        };
        // Negotiated per probe round, re-armed per checkout (a pooled connection
        // carries whatever the previous call decided, and the flag may have
        // changed between probes — e.g. after a rolling engine downgrade).
        client.set_binary(self.supports_binary.load(Ordering::Relaxed));
        let options = vitality_serve::InferOptions {
            deadline_ms,
            request_id,
            trace: want_trace,
            ..Default::default()
        };
        match client.infer_detailed(model_key, image, &options) {
            Ok(response) => {
                self.recycle(client);
                Ok((response.reply, response.trace))
            }
            Err(err) => {
                // Server-typed errors leave the connection in a known-good framing
                // state (the response was read in full); only transport-level
                // failures poison it.
                if matches!(err, ClientError::Server { .. }) {
                    self.recycle(client);
                } else {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(err)
            }
        }
    }

    /// Returns a connection to the idle pool, or drops it at the cap (see
    /// [`MAX_IDLE_CONNECTIONS`]).
    fn recycle(&self, client: ServeClient) {
        let mut idle = self.idle.lock().expect("idle pool poisoned");
        if idle.len() < MAX_IDLE_CONNECTIONS {
            idle.push(client);
        }
    }

    fn checkout(&self, timeout: Duration) -> std::io::Result<ServeClient> {
        let mut client = match self.idle.lock().expect("idle pool poisoned").pop() {
            Some(client) => client,
            None => ServeClient::connect(self.addr)?,
        };
        client.set_timeout(Some(timeout))?;
        Ok(client)
    }

    /// One health probe on a fresh connection: refreshes the load signal and the
    /// served-model list, re-admits on success, ejects after the configured number of
    /// consecutive failures.
    pub fn probe(&self, timeout: Duration, eject_after: u32) -> bool {
        let epoch = self.eject_epoch.load(Ordering::SeqCst);
        let result = (|| -> Result<JsonValue, ClientError> {
            // Chaos site: `return` makes this probe round report the backend down
            // without touching the wire — a flapping health check against a healthy
            // engine (scope with `@gateway-probe` to spare request-path traffic).
            if failpoint::fire("gateway-probe-flap") {
                return Err(ClientError::Protocol("failpoint: probe flap".to_string()));
            }
            let mut client = ServeClient::connect(self.addr).map_err(ClientError::Io)?;
            client.set_timeout(Some(timeout)).map_err(ClientError::Io)?;
            let (status, body) = client.get("/healthz")?;
            if status != 200 {
                return Err(ClientError::Protocol(format!("healthz answered {status}")));
            }
            Ok(body)
        })();
        match result {
            Ok(body) => {
                if let Some(depth) = body.get("queue_depth").and_then(JsonValue::as_usize) {
                    self.queue_depth.store(depth as u64, Ordering::Relaxed);
                }
                if let Some(batches) = body.get("in_flight_batches").and_then(JsonValue::as_usize) {
                    self.in_flight_batches
                        .store(batches as u64, Ordering::Relaxed);
                }
                if let Some(models) = body.get("models").and_then(JsonValue::as_array) {
                    *self.models.lock().expect("models lock poisoned") = models
                        .iter()
                        .filter_map(JsonValue::as_str)
                        .map(str::to_string)
                        .collect();
                }
                // Binary-encoding negotiation: advertised → use it; absent (an
                // engine predating the encoding) → plain JSON.
                let binary = body
                    .get("encodings")
                    .and_then(JsonValue::as_array)
                    .is_some_and(|e| e.iter().any(|v| v.as_str() == Some("binary")));
                self.supports_binary.store(binary, Ordering::Relaxed);
                self.consecutive_probe_failures.store(0, Ordering::SeqCst);
                self.probes_ok.fetch_add(1, Ordering::Relaxed);
                // Re-admit only when no ejection landed while this probe was in
                // flight: a draining engine still answers healthz, and a stale
                // success must not resurrect a backend a request just watched die.
                // (The next probe round, under the new epoch, decides afresh.)
                if self.eject_epoch.load(Ordering::SeqCst) == epoch
                    && !self.healthy.swap(true, Ordering::SeqCst)
                {
                    trace::info!("re-admitted backend {} after a successful probe", self.addr);
                }
                true
            }
            Err(err) => {
                self.probes_failed.fetch_add(1, Ordering::Relaxed);
                let failures = self
                    .consecutive_probe_failures
                    .fetch_add(1, Ordering::SeqCst)
                    + 1;
                trace::debug!(
                    "probe of backend {} failed ({failures} consecutive): {err:?}",
                    self.addr
                );
                if failures >= eject_after {
                    self.eject();
                }
                false
            }
        }
    }

    /// Model keys the backend last reported serving.
    pub fn models(&self) -> Vec<String> {
        self.models.lock().expect("models lock poisoned").clone()
    }

    /// Whether the backend last reported serving `model_key` (checked under the
    /// lock without cloning — this sits on the per-request hot path).
    pub fn serves(&self, model_key: &str) -> bool {
        self.models
            .lock()
            .expect("models lock poisoned")
            .iter()
            .any(|m| m == model_key)
    }

    /// The backend's block in the gateway `/metrics` snapshot.
    pub fn snapshot_json(&self) -> JsonValue {
        let mut body = JsonValue::object();
        body.set("addr", self.addr.to_string())
            .set("healthy", self.healthy())
            .set(
                "gateway_in_flight",
                self.gateway_in_flight.load(Ordering::Relaxed),
            )
            .set("queue_depth", self.queue_depth.load(Ordering::Relaxed))
            .set(
                "in_flight_batches",
                self.in_flight_batches.load(Ordering::Relaxed),
            )
            .set("requests", self.requests.load(Ordering::Relaxed))
            .set("errors", self.errors.load(Ordering::Relaxed))
            .set("ejections", self.ejections.load(Ordering::Relaxed))
            .set("probes_ok", self.probes_ok.load(Ordering::Relaxed))
            .set("probes_failed", self.probes_failed.load(Ordering::Relaxed));
        body
    }
}

/// RAII window of one gateway call against a backend: bumps `gateway_in_flight` for
/// the duration, so concurrent handlers see each other's outstanding calls when
/// ranking backends.
#[derive(Debug)]
pub struct InFlightGuard {
    backend: Arc<Backend>,
}

impl InFlightGuard {
    /// Opens the window.
    pub fn new(backend: Arc<Backend>) -> Self {
        backend.gateway_in_flight.fetch_add(1, Ordering::Relaxed);
        Self { backend }
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.backend
            .gateway_in_flight
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// The outcome of one routing decision.
#[derive(Debug)]
pub enum Pick {
    /// The least-loaded available backend (pool index + handle).
    Chosen(usize, Arc<Backend>),
    /// Every non-excluded backend is merely cooling down; the earliest expiry.
    Cooling(Instant),
    /// No backend is available or cooling (all ejected or excluded).
    None,
}

/// The set of engine backends behind the gateway.
#[derive(Debug)]
pub struct BackendPool {
    backends: Vec<Arc<Backend>>,
    /// Rotates the scan origin so equally loaded backends share traffic.
    rotation: AtomicUsize,
}

impl BackendPool {
    /// Creates a pool over the given engine addresses (no probing yet; every backend
    /// starts unadmitted until its first successful probe).
    pub fn new(addrs: &[SocketAddr]) -> Self {
        Self {
            backends: addrs.iter().map(|&a| Arc::new(Backend::new(a))).collect(),
            rotation: AtomicUsize::new(0),
        }
    }

    /// All backends, in configuration order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// Number of currently admitted backends.
    pub fn healthy_count(&self) -> usize {
        self.backends.iter().filter(|b| b.healthy()).count()
    }

    /// Picks the least-loaded available backend *that serves `model_key`*, skipping
    /// `excluded` pool indices (the retry loop excludes backends that already failed
    /// this request). Routing is model-aware, not just load-aware: in a
    /// heterogeneous pool (latency-tier variants on some engines, accuracy-tier on
    /// others) a request must never land on an engine that would answer 404 while
    /// capacity for its key idles elsewhere.
    pub fn pick(&self, model_key: &str, excluded: &[usize]) -> Pick {
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        let mut best: Option<(u64, usize, &Arc<Backend>)> = None;
        let mut earliest_cooldown: Option<Instant> = None;
        for offset in 0..self.backends.len() {
            let index = (start + offset) % self.backends.len();
            if excluded.contains(&index) {
                continue;
            }
            let backend = &self.backends[index];
            if !backend.serves(model_key) {
                continue;
            }
            match backend.availability() {
                Ok(()) => {
                    let load = backend.load();
                    if best.is_none_or(|(best_load, _, _)| load < best_load) {
                        best = Some((load, index, backend));
                    }
                }
                Err(Some(until)) => {
                    earliest_cooldown =
                        Some(earliest_cooldown.map_or(until, |existing| existing.min(until)));
                }
                Err(None) => {}
            }
        }
        match (best, earliest_cooldown) {
            (Some((_, index, backend)), _) => Pick::Chosen(index, Arc::clone(backend)),
            (None, Some(until)) => Pick::Cooling(until),
            (None, None) => Pick::None,
        }
    }

    /// Probes every backend once (the prober thread's round; also run synchronously
    /// by `Gateway::start` so reachable backends are admitted before traffic).
    pub fn probe_all(&self, timeout: Duration, eject_after: u32) {
        for backend in &self.backends {
            backend.probe(timeout, eject_after);
        }
    }

    /// Whether any *admitted* backend reports serving `model_key`.
    pub fn serves(&self, model_key: &str) -> bool {
        self.backends
            .iter()
            .any(|b| b.healthy() && b.serves(model_key))
    }

    /// Whether *any* backend — admitted or ejected — has ever reported serving
    /// `model_key`. Distinguishes "this key does not exist in the cluster" (a
    /// deterministic 404) from "the engines serving it are temporarily down" (a
    /// retryable 503): model lists survive ejection, so a known key stays known
    /// while its backend restarts.
    pub fn known(&self, model_key: &str) -> bool {
        self.backends.iter().any(|b| b.serves(model_key))
    }

    /// Mean probed load — `queue_depth + in_flight_batches` — per admitted backend:
    /// the brownout controller's pressure signal. `0.0` with nothing admitted (an
    /// empty cluster has no queue pressure; it has an availability problem, which
    /// brownout cannot fix).
    pub fn mean_pressure(&self) -> f64 {
        let admitted: Vec<_> = self.backends.iter().filter(|b| b.healthy()).collect();
        if admitted.is_empty() {
            return 0.0;
        }
        let total: u64 = admitted
            .iter()
            .map(|b| {
                b.queue_depth.load(Ordering::Relaxed) + b.in_flight_batches.load(Ordering::Relaxed)
            })
            .sum();
        total as f64 / admitted.len() as f64
    }

    /// Total ejection transitions across all backends since startup.
    pub fn ejection_total(&self) -> u64 {
        self.backends
            .iter()
            .map(|b| b.ejections.load(Ordering::Relaxed))
            .sum()
    }

    /// Applies the per-backend in-flight admission cap (0 = unbounded) to every
    /// backend; see [`AdmissionConfig`](crate::config::AdmissionConfig).
    pub fn set_in_flight_limit(&self, limit: u64) {
        for backend in &self.backends {
            backend.in_flight_limit.store(limit, Ordering::Relaxed);
        }
    }

    /// The sorted, deduplicated union of every admitted backend's model list.
    pub fn model_union(&self) -> Vec<String> {
        let mut union: Vec<String> = self
            .backends
            .iter()
            .filter(|b| b.healthy())
            .flat_map(|b| b.models())
            .collect();
        union.sort();
        union.dedup();
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> BackendPool {
        let addrs: Vec<SocketAddr> = (0..n)
            .map(|i| format!("127.0.0.1:{}", 40000 + i).parse().unwrap())
            .collect();
        BackendPool::new(&addrs)
    }

    /// Marks a backend admitted and serving `keys` (what a successful probe does).
    fn admit(backend: &Backend, keys: &[&str]) {
        backend.healthy.store(true, Ordering::SeqCst);
        *backend.models.lock().unwrap() = keys.iter().map(|k| (*k).to_string()).collect();
    }

    #[test]
    fn unprobed_backends_are_not_routable() {
        let pool = pool(2);
        assert_eq!(pool.healthy_count(), 0);
        assert!(matches!(pool.pick("m:taylor", &[]), Pick::None));
        assert!(!pool.serves("m:taylor"));
        assert!(pool.model_union().is_empty());
    }

    #[test]
    fn pick_prefers_the_least_loaded_admitted_backend() {
        let pool = pool(3);
        for b in pool.backends() {
            admit(b, &["m:taylor"]);
        }
        pool.backends()[0].queue_depth.store(5, Ordering::Relaxed);
        pool.backends()[1].queue_depth.store(1, Ordering::Relaxed);
        pool.backends()[2].queue_depth.store(9, Ordering::Relaxed);
        for _ in 0..4 {
            match pool.pick("m:taylor", &[]) {
                Pick::Chosen(index, _) => assert_eq!(index, 1),
                other => panic!("expected a pick, got {other:?}"),
            }
        }
        // The gateway's own in-flight calls outweigh probed queue depth 2:1.
        let _guards: Vec<InFlightGuard> = (0..4)
            .map(|_| InFlightGuard::new(Arc::clone(&pool.backends()[1])))
            .collect();
        match pool.pick("m:taylor", &[]) {
            Pick::Chosen(index, _) => assert_eq!(index, 0),
            other => panic!("expected a pick, got {other:?}"),
        }
        // Excluding the two best leaves the worst.
        match pool.pick("m:taylor", &[0, 1]) {
            Pick::Chosen(index, _) => assert_eq!(index, 2),
            other => panic!("expected a pick, got {other:?}"),
        }
        assert!(matches!(pool.pick("m:taylor", &[0, 1, 2]), Pick::None));
    }

    #[test]
    fn pick_is_model_aware_in_heterogeneous_pools() {
        // Engine 0 serves only the latency tier, engine 1 only the accuracy tier —
        // the split deployment the router exists for. Load must not override
        // serving: engine 1 is idle but cannot answer m:int8.
        let pool = pool(2);
        admit(&pool.backends()[0], &["m:int8"]);
        admit(&pool.backends()[1], &["m:unified"]);
        pool.backends()[0].queue_depth.store(50, Ordering::Relaxed);
        for _ in 0..4 {
            match pool.pick("m:int8", &[]) {
                Pick::Chosen(index, _) => assert_eq!(index, 0, "only engine 0 serves m:int8"),
                other => panic!("expected a pick, got {other:?}"),
            }
            match pool.pick("m:unified", &[]) {
                Pick::Chosen(index, _) => assert_eq!(index, 1),
                other => panic!("expected a pick, got {other:?}"),
            }
        }
        assert!(matches!(pool.pick("m:softmax", &[]), Pick::None));
    }

    #[test]
    fn cooldowns_sideline_then_release_a_backend() {
        let pool = pool(1);
        admit(&pool.backends()[0], &["m:taylor"]);
        pool.backends()[0].set_cooldown(Duration::from_millis(40));
        match pool.pick("m:taylor", &[]) {
            Pick::Cooling(until) => assert!(until > Instant::now()),
            other => panic!("expected cooling, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(pool.pick("m:taylor", &[]), Pick::Chosen(0, _)));
    }

    #[test]
    fn a_stale_probe_cannot_readmit_an_ejected_backend() {
        // A scripted healthz endpoint that holds its answer until told: the probe
        // goes out, an ejection lands while it is in flight, and only then does the
        // "healthy" answer arrive — it must not re-admit the backend.
        use std::sync::mpsc;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (got_probe_tx, got_probe_rx) = mpsc::channel::<()>();
        let (respond_tx, respond_rx) = mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            vitality_serve::http::MessageReader::new()
                .read_message(&mut stream, 1 << 20, &|| false)
                .unwrap()
                .unwrap();
            got_probe_tx.send(()).unwrap();
            respond_rx.recv().unwrap();
            let body =
                br#"{"status":"ok","models":["m:taylor"],"queue_depth":0,"in_flight_batches":0}"#;
            vitality_serve::http::write_response(&mut stream, 200, body, true).unwrap();
        });
        let pool = BackendPool::new(&[addr]);
        let backend = Arc::clone(&pool.backends()[0]);
        admit(&backend, &["m:taylor"]);
        let prober = {
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || backend.probe(Duration::from_secs(5), 2))
        };
        got_probe_rx.recv().unwrap(); // the probe request is in flight
        backend.eject(); // ...when the ejection lands
        respond_tx.send(()).unwrap(); // now the healthz answer arrives
        assert!(prober.join().unwrap(), "the probe itself succeeded");
        assert!(
            !backend.healthy(),
            "a probe that predates the ejection must not re-admit the backend"
        );
        server.join().unwrap();
    }

    #[test]
    fn ejection_counts_transitions_and_clears_idle_connections() {
        let pool = pool(1);
        let backend = &pool.backends()[0];
        backend.healthy.store(true, Ordering::SeqCst);
        backend.eject();
        backend.eject(); // second call is a no-op transition-wise
        assert!(!backend.healthy());
        assert_eq!(backend.ejections.load(Ordering::Relaxed), 1);
        let snap = backend.snapshot_json();
        assert_eq!(
            snap.get("healthy").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(snap.get("ejections").and_then(JsonValue::as_usize), Some(1));
    }

    #[test]
    fn the_in_flight_cap_sidelines_a_saturated_backend() {
        let pool = pool(2);
        for b in pool.backends() {
            admit(b, &["m:taylor"]);
        }
        pool.set_in_flight_limit(2);
        let _guards: Vec<InFlightGuard> = (0..2)
            .map(|_| InFlightGuard::new(Arc::clone(&pool.backends()[0])))
            .collect();
        for _ in 0..4 {
            match pool.pick("m:taylor", &[]) {
                Pick::Chosen(index, _) => assert_eq!(index, 1, "backend 0 is at its cap"),
                other => panic!("expected a pick, got {other:?}"),
            }
        }
        // Both at the cap: the pool reports a short cooldown, not a dead cluster —
        // in-flight windows close in milliseconds.
        let _more: Vec<InFlightGuard> = (0..2)
            .map(|_| InFlightGuard::new(Arc::clone(&pool.backends()[1])))
            .collect();
        assert!(matches!(pool.pick("m:taylor", &[]), Pick::Cooling(_)));
    }

    #[test]
    fn mean_pressure_averages_admitted_backends_only() {
        let pool = pool(3);
        admit(&pool.backends()[0], &["m"]);
        admit(&pool.backends()[1], &["m"]);
        pool.backends()[0].queue_depth.store(4, Ordering::Relaxed);
        pool.backends()[0]
            .in_flight_batches
            .store(2, Ordering::Relaxed);
        // Backend 2 is unadmitted; its (stale) numbers must not count.
        pool.backends()[2].queue_depth.store(100, Ordering::Relaxed);
        assert!((pool.mean_pressure() - 3.0).abs() < 1e-9);
        assert_eq!(pool.ejection_total(), 0);
    }

    #[test]
    fn probe_failures_eject_only_after_the_configured_streak() {
        // Nothing listens on the address, so every probe fails.
        let pool = pool(1);
        let backend = &pool.backends()[0];
        backend.healthy.store(true, Ordering::SeqCst);
        backend.probe(Duration::from_millis(50), 2);
        assert!(backend.healthy(), "one failed probe does not eject");
        backend.probe(Duration::from_millis(50), 2);
        assert!(!backend.healthy(), "the streak ejects");
    }
}
