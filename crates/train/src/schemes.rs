//! The paper's training schemes (BASELINE / SPARSE / LOWRANK / VITALITY and ablations).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::SyntheticDataset;
use crate::optimizer::Adam;
use crate::trainer::{Distillation, EpochStats, TrainOptions, Trainer};
use vitality_vit::{AttentionVariant, TrainConfig, VisionTransformer};

/// A training + inference recipe evaluated by the accuracy experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrainingScheme {
    /// Train and evaluate with the vanilla softmax attention.
    Baseline,
    /// Train and evaluate with the Sanger-style sparse attention.
    Sparse {
        /// Sparsity threshold.
        threshold: f32,
    },
    /// Take the softmax-trained model and swap in the Taylor attention with **no**
    /// fine-tuning (the paper's LOWRANK row, which collapses to ~27% top-1).
    LowRankDropIn,
    /// Fine-tune with the unified low-rank + sparse attention and keep the sparse
    /// component at inference (the `LR+Sparse` ablation rows of Fig. 13).
    LowRankSparse {
        /// Sparsity threshold.
        threshold: f32,
        /// Whether to add knowledge distillation from the softmax teacher.
        distillation: bool,
    },
    /// The full ViTALiTy recipe: fine-tune with the unified attention, then drop the
    /// sparse component and run inference with the linear Taylor attention only.
    Vitality {
        /// Sparsity threshold used during training.
        threshold: f32,
        /// Whether to add knowledge distillation from the softmax teacher.
        distillation: bool,
    },
}

impl TrainingScheme {
    /// Label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            TrainingScheme::Baseline => "Baseline".to_string(),
            TrainingScheme::Sparse { threshold } => format!("Sparse(T={threshold})"),
            TrainingScheme::LowRankDropIn => "LowRank".to_string(),
            TrainingScheme::LowRankSparse {
                threshold,
                distillation,
            } => {
                if *distillation {
                    format!("LR+Sparse+KD(T={threshold})")
                } else {
                    format!("LR+Sparse(T={threshold})")
                }
            }
            TrainingScheme::Vitality {
                threshold,
                distillation,
            } => {
                if *distillation {
                    format!("ViTALiTy+KD(T={threshold})")
                } else {
                    format!("ViTALiTy(T={threshold})")
                }
            }
        }
    }

    /// Whether the scheme needs a softmax-trained reference model (as initialisation or as
    /// a distillation teacher).
    pub fn needs_baseline(&self) -> bool {
        matches!(
            self,
            TrainingScheme::LowRankDropIn
                | TrainingScheme::LowRankSparse {
                    distillation: true,
                    ..
                }
                | TrainingScheme::Vitality {
                    distillation: true,
                    ..
                }
        )
    }
}

/// Shared context for running schemes: the task, the model size and the training budget.
#[derive(Debug, Clone)]
pub struct SchemeContext {
    /// Model configuration.
    pub model_config: TrainConfig,
    /// The dataset to train and evaluate on.
    pub dataset: SyntheticDataset,
    /// Training options (epochs, batch size, occupancy tracking).
    pub options: TrainOptions,
    /// Learning rate for the AdamW optimiser.
    pub learning_rate: f32,
    /// Seed for weight initialisation.
    pub seed: u64,
}

/// Result of running one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeOutcome {
    /// Which scheme was run.
    pub scheme: TrainingScheme,
    /// Final test accuracy with the scheme's *inference-time* attention.
    pub final_accuracy: f32,
    /// Per-epoch statistics of the scheme's own training run (empty for LowRankDropIn).
    pub history: Vec<EpochStats>,
}

/// Trains a softmax-attention baseline model (used as the pretrained starting point and as
/// the knowledge-distillation teacher).
pub fn train_baseline(ctx: &SchemeContext) -> (VisionTransformer, Vec<EpochStats>) {
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut model = VisionTransformer::new(&mut rng, ctx.model_config, AttentionVariant::Softmax);
    let trainer = Trainer::new(TrainOptions {
        distillation: None,
        track_sparse_occupancy: false,
        ..ctx.options
    });
    let mut optimizer = Adam::new(ctx.learning_rate, 1e-4);
    let history = trainer.train(&mut model, &mut optimizer, &ctx.dataset, None);
    (model, history)
}

/// Runs a training scheme, reusing a pre-trained baseline model when one is supplied
/// (otherwise one is trained on demand for the schemes that need it).
pub fn run_scheme_with_baseline(
    scheme: TrainingScheme,
    ctx: &SchemeContext,
    baseline: Option<&VisionTransformer>,
) -> SchemeOutcome {
    let owned_baseline;
    let baseline_ref = if scheme.needs_baseline() {
        Some(match baseline {
            Some(b) => b,
            None => {
                owned_baseline = train_baseline(ctx).0;
                &owned_baseline
            }
        })
    } else {
        baseline
    };

    match scheme {
        TrainingScheme::Baseline => {
            let (model, history) = train_baseline(ctx);
            SchemeOutcome {
                scheme,
                final_accuracy: model
                    .accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels()),
                history,
            }
        }
        TrainingScheme::Sparse { threshold } => {
            let variant = AttentionVariant::Sparse { threshold };
            let (model, history) = train_variant(ctx, variant, None);
            SchemeOutcome {
                scheme,
                final_accuracy: model
                    .accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels()),
                history,
            }
        }
        TrainingScheme::LowRankDropIn => {
            // Swap the Taylor attention into the softmax-trained model without fine-tuning.
            let mut model = baseline_ref.expect("baseline required").clone();
            model.set_variant(AttentionVariant::Taylor);
            SchemeOutcome {
                scheme,
                final_accuracy: model
                    .accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels()),
                history: Vec::new(),
            }
        }
        TrainingScheme::LowRankSparse {
            threshold,
            distillation,
        } => {
            let teacher = if distillation { baseline_ref } else { None };
            let (model, history) =
                train_variant(ctx, AttentionVariant::Unified { threshold }, teacher);
            SchemeOutcome {
                scheme,
                final_accuracy: model
                    .accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels()),
                history,
            }
        }
        TrainingScheme::Vitality {
            threshold,
            distillation,
        } => {
            let teacher = if distillation { baseline_ref } else { None };
            let (mut model, history) =
                train_variant(ctx, AttentionVariant::Unified { threshold }, teacher);
            // Inference drops the sparse component: only the linear Taylor attention runs.
            model.set_variant(AttentionVariant::Taylor);
            SchemeOutcome {
                scheme,
                final_accuracy: model
                    .accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels()),
                history,
            }
        }
    }
}

/// Runs a training scheme, training its own baseline if the scheme needs one.
pub fn run_scheme(scheme: TrainingScheme, ctx: &SchemeContext) -> SchemeOutcome {
    run_scheme_with_baseline(scheme, ctx, None)
}

/// Trains a model with the given attention variant (optionally distilling from `teacher`).
fn train_variant(
    ctx: &SchemeContext,
    variant: AttentionVariant,
    teacher: Option<&VisionTransformer>,
) -> (VisionTransformer, Vec<EpochStats>) {
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut model = VisionTransformer::new(&mut rng, ctx.model_config, variant);
    let options = TrainOptions {
        distillation: if teacher.is_some() {
            Some(Distillation::default())
        } else {
            None
        },
        ..ctx.options
    };
    let trainer = Trainer::new(options);
    let mut optimizer = Adam::new(ctx.learning_rate, 1e-4);
    let history = trainer.train(&mut model, &mut optimizer, &ctx.dataset, teacher);
    (model, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn context() -> SchemeContext {
        let mut rng = StdRng::seed_from_u64(700);
        SchemeContext {
            model_config: TrainConfig::tiny(),
            dataset: SyntheticDataset::generate(&mut rng, DatasetConfig::tiny()),
            options: TrainOptions {
                epochs: 2,
                batch_size: 4,
                distillation: None,
                track_sparse_occupancy: false,
            },
            learning_rate: 0.01,
            seed: 7,
        }
    }

    #[test]
    fn labels_match_the_papers_terminology() {
        assert_eq!(TrainingScheme::Baseline.label(), "Baseline");
        assert_eq!(TrainingScheme::LowRankDropIn.label(), "LowRank");
        assert!(TrainingScheme::Sparse { threshold: 0.02 }
            .label()
            .starts_with("Sparse"));
        assert!(TrainingScheme::Vitality {
            threshold: 0.5,
            distillation: true
        }
        .label()
        .contains("KD"));
        assert!(TrainingScheme::LowRankSparse {
            threshold: 0.5,
            distillation: false
        }
        .label()
        .starts_with("LR+Sparse"));
    }

    #[test]
    fn baseline_scheme_produces_history_and_accuracy() {
        let ctx = context();
        let outcome = run_scheme(TrainingScheme::Baseline, &ctx);
        assert_eq!(outcome.history.len(), ctx.options.epochs);
        assert!((0.0..=1.0).contains(&outcome.final_accuracy));
    }

    #[test]
    fn lowrank_dropin_reuses_the_supplied_baseline() {
        let ctx = context();
        let (baseline, _) = train_baseline(&ctx);
        let baseline_acc = baseline.accuracy(ctx.dataset.test_images(), ctx.dataset.test_labels());
        let outcome =
            run_scheme_with_baseline(TrainingScheme::LowRankDropIn, &ctx, Some(&baseline));
        assert!(outcome.history.is_empty());
        // The drop-in swap changes the attention, so accuracy is generally different (and
        // in the paper's full-scale setting it collapses).
        assert!((0.0..=1.0).contains(&outcome.final_accuracy));
        assert!((0.0..=1.0).contains(&baseline_acc));
        assert!(TrainingScheme::LowRankDropIn.needs_baseline());
        assert!(!TrainingScheme::Baseline.needs_baseline());
    }

    #[test]
    fn vitality_scheme_switches_to_taylor_for_inference() {
        let ctx = context();
        let outcome = run_scheme(
            TrainingScheme::Vitality {
                threshold: 0.5,
                distillation: false,
            },
            &ctx,
        );
        assert_eq!(outcome.history.len(), ctx.options.epochs);
        assert!((0.0..=1.0).contains(&outcome.final_accuracy));
    }
}
