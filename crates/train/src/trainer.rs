//! The training loop: mini-batch gradient accumulation, optional knowledge distillation
//! and sparse-occupancy tracking.

use serde::{Deserialize, Serialize};

use crate::dataset::SyntheticDataset;
use crate::optimizer::{GradientMap, Optimizer};
use vitality_autograd::Graph;
use vitality_nn::registry::ParamRegistry;
use vitality_tensor::Matrix;
use vitality_vit::VisionTransformer;

/// Knowledge-distillation settings (the paper applies token-based distillation from the
/// softmax-attention teacher during ViTALiTy fine-tuning; this reproduction distils the
/// classifier logits, which exercises the same loss plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distillation {
    /// Softmax temperature applied to teacher and student logits.
    pub temperature: f32,
    /// Weight of the distillation term (`1 - alpha` goes to the hard cross-entropy).
    pub alpha: f32,
}

impl Default for Distillation {
    fn default() -> Self {
        Self {
            temperature: 2.0,
            alpha: 0.5,
        }
    }
}

/// Options controlling one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged across the batch).
    pub batch_size: usize,
    /// Knowledge-distillation settings; `None` disables distillation.
    pub distillation: Option<Distillation>,
    /// When `true`, the mean sparse-component occupancy is measured after every epoch
    /// (the Fig. 14 probe). Only meaningful for the Unified attention variant.
    pub track_sparse_occupancy: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 8,
            distillation: None,
            track_sparse_occupancy: false,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (starting at zero).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Accuracy on the held-out test split after the epoch.
    pub test_accuracy: f32,
    /// Mean sparse-component occupancy (zero when tracking is disabled or not applicable).
    pub sparse_occupancy: f32,
}

/// Drives training of a [`VisionTransformer`] on a [`SyntheticDataset`].
#[derive(Debug, Clone)]
pub struct Trainer {
    options: TrainOptions,
}

impl Trainer {
    /// Creates a trainer with the given options.
    ///
    /// # Panics
    ///
    /// Panics when `epochs == 0` or `batch_size == 0`.
    pub fn new(options: TrainOptions) -> Self {
        assert!(options.epochs > 0, "at least one epoch is required");
        assert!(options.batch_size > 0, "batch size must be positive");
        Self { options }
    }

    /// The configured options.
    pub fn options(&self) -> TrainOptions {
        self.options
    }

    /// Trains `model` with `optimizer`, optionally distilling from `teacher`, and returns
    /// per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics when distillation is requested without a teacher.
    pub fn train(
        &self,
        model: &mut VisionTransformer,
        optimizer: &mut dyn Optimizer,
        dataset: &SyntheticDataset,
        teacher: Option<&VisionTransformer>,
    ) -> Vec<EpochStats> {
        if self.options.distillation.is_some() {
            assert!(teacher.is_some(), "distillation requires a teacher model");
        }
        let mut history = Vec::with_capacity(self.options.epochs);
        for epoch in 0..self.options.epochs {
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for (start, end) in dataset.train_batches(self.options.batch_size) {
                let mut grads = GradientMap::new();
                let mut batch_loss = 0.0;
                let count = (end - start) as f32;
                for idx in start..end {
                    let image = &dataset.train_images()[idx];
                    let label = dataset.train_labels()[idx];
                    let (loss_value, registry, gradients) =
                        self.sample_loss(model, teacher, image, label);
                    batch_loss += loss_value;
                    grads.accumulate(&registry, &gradients, 1.0 / count);
                }
                optimizer.step(model, &grads);
                epoch_loss += batch_loss / count;
                batches += 1;
            }
            let sparse_occupancy = if self.options.track_sparse_occupancy {
                self.mean_sparse_occupancy(model, dataset)
            } else {
                0.0
            };
            history.push(EpochStats {
                epoch,
                train_loss: epoch_loss / batches.max(1) as f32,
                test_accuracy: model.accuracy(dataset.test_images(), dataset.test_labels()),
                sparse_occupancy,
            });
        }
        history
    }

    /// Builds the loss for one sample and runs the backward pass.
    fn sample_loss(
        &self,
        model: &VisionTransformer,
        teacher: Option<&VisionTransformer>,
        image: &Matrix,
        label: usize,
    ) -> (f32, ParamRegistry, vitality_autograd::Gradients) {
        let graph = Graph::new();
        let mut registry = ParamRegistry::new();
        let logits = model.forward_train(&graph, &mut registry, image);
        let hard = logits.cross_entropy_with_logits(&[label]);
        let loss = match (self.options.distillation, teacher) {
            (Some(distill), Some(teacher)) => {
                let teacher_logits = teacher.infer(image).logits;
                let soft_targets = teacher_logits
                    .scale(1.0 / distill.temperature)
                    .softmax_rows();
                let soft = logits
                    .scale(1.0 / distill.temperature)
                    .soft_cross_entropy(&soft_targets)
                    .scale(distill.temperature * distill.temperature);
                hard.scale(1.0 - distill.alpha)
                    .add(&soft.scale(distill.alpha))
            }
            _ => hard,
        };
        let value = loss.value().get(0, 0);
        let gradients = graph.backward(&loss);
        (value, registry, gradients)
    }

    /// Mean sparse occupancy over (a subsample of) the training set.
    fn mean_sparse_occupancy(&self, model: &VisionTransformer, dataset: &SyntheticDataset) -> f32 {
        let probe: Vec<&Matrix> = dataset.train_images().iter().take(4).collect();
        if probe.is_empty() {
            return 0.0;
        }
        probe
            .iter()
            .map(|img| model.sparse_occupancy(img))
            .sum::<f32>()
            / probe.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_vit::{AttentionVariant, TrainConfig};

    fn setup(variant: AttentionVariant) -> (VisionTransformer, SyntheticDataset) {
        let mut rng = StdRng::seed_from_u64(600);
        let dataset = SyntheticDataset::generate(&mut rng, DatasetConfig::tiny());
        let model = VisionTransformer::new(&mut rng, TrainConfig::tiny(), variant);
        (model, dataset)
    }

    #[test]
    fn training_reduces_the_loss() {
        let (mut model, dataset) = setup(AttentionVariant::Softmax);
        let trainer = Trainer::new(TrainOptions {
            epochs: 3,
            batch_size: 4,
            ..TrainOptions::default()
        });
        let mut optimizer = Adam::new(0.01, 0.0);
        let history = trainer.train(&mut model, &mut optimizer, &dataset, None);
        assert_eq!(history.len(), 3);
        assert!(
            history.last().unwrap().train_loss < history[0].train_loss,
            "loss did not decrease: {history:?}"
        );
        assert_eq!(trainer.options().epochs, 3);
    }

    #[test]
    fn distillation_requires_a_teacher() {
        let (mut model, dataset) = setup(AttentionVariant::Taylor);
        let trainer = Trainer::new(TrainOptions {
            epochs: 1,
            batch_size: 4,
            distillation: Some(Distillation::default()),
            ..TrainOptions::default()
        });
        let mut optimizer = Adam::new(0.01, 0.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trainer.train(&mut model, &mut optimizer, &dataset, None)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn distillation_runs_with_a_teacher() {
        let (mut student, dataset) = setup(AttentionVariant::Taylor);
        let (teacher, _) = setup(AttentionVariant::Softmax);
        let trainer = Trainer::new(TrainOptions {
            epochs: 1,
            batch_size: 4,
            distillation: Some(Distillation {
                temperature: 2.0,
                alpha: 0.5,
            }),
            ..TrainOptions::default()
        });
        let mut optimizer = Adam::new(0.01, 0.0);
        let history = trainer.train(&mut student, &mut optimizer, &dataset, Some(&teacher));
        assert_eq!(history.len(), 1);
        assert!(history[0].train_loss.is_finite());
    }

    #[test]
    fn sparse_occupancy_is_tracked_for_unified_training() {
        let (mut model, dataset) = setup(AttentionVariant::Unified { threshold: 0.1 });
        let trainer = Trainer::new(TrainOptions {
            epochs: 1,
            batch_size: 4,
            track_sparse_occupancy: true,
            ..TrainOptions::default()
        });
        let mut optimizer = Adam::new(0.005, 0.0);
        let history = trainer.train(&mut model, &mut optimizer, &dataset, None);
        assert!(history[0].sparse_occupancy > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn rejects_zero_batch_size() {
        let _ = Trainer::new(TrainOptions {
            batch_size: 0,
            ..TrainOptions::default()
        });
    }
}
