//! Classification metrics.

use vitality_tensor::Matrix;
use vitality_vit::VisionTransformer;

/// Top-1 accuracy of `model` on a labelled image set, in `[0, 1]`.
pub fn accuracy(model: &VisionTransformer, images: &[Matrix], labels: &[usize]) -> f32 {
    model.accuracy(images, labels)
}

/// Confusion matrix: `counts[true_class][predicted_class]`.
///
/// # Panics
///
/// Panics when a label is out of range for the model's class count.
pub fn confusion_matrix(
    model: &VisionTransformer,
    images: &[Matrix],
    labels: &[usize],
) -> Vec<Vec<usize>> {
    let classes = model.config().classes;
    let mut counts = vec![vec![0usize; classes]; classes];
    for (image, &label) in images.iter().zip(labels.iter()) {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        counts[label][model.predict(image)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;
    use vitality_vit::{AttentionVariant, TrainConfig};

    #[test]
    fn confusion_matrix_rows_sum_to_sample_counts() {
        let cfg = TrainConfig::tiny();
        let mut rng = StdRng::seed_from_u64(500);
        let model = VisionTransformer::new(&mut rng, cfg, AttentionVariant::Softmax);
        let images: Vec<Matrix> = (0..6)
            .map(|_| init::uniform(&mut rng, cfg.image_size, cfg.image_size, 0.0, 1.0))
            .collect();
        let labels = vec![0, 1, 2, 3, 0, 1];
        let cm = confusion_matrix(&model, &images, &labels);
        assert_eq!(cm.len(), cfg.classes);
        let row_sums: Vec<usize> = cm.iter().map(|r| r.iter().sum()).collect();
        assert_eq!(row_sums, vec![2, 2, 1, 1]);
        // Accuracy equals the trace over the total.
        let trace: usize = (0..cfg.classes).map(|i| cm[i][i]).sum();
        let acc = accuracy(&model, &images, &labels);
        assert!((acc - trace as f32 / images.len() as f32).abs() < 1e-6);
    }
}
