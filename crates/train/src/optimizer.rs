//! Gradient-based optimisers operating on named parameters.

use std::collections::HashMap;

use vitality_autograd::Gradients;
use vitality_nn::registry::{NamedParameters, ParamRegistry};
use vitality_tensor::Matrix;

/// Named gradients accumulated over one or more per-sample backward passes.
///
/// The autograd graph is rebuilt per sample, so tape node ids are not stable across a
/// mini-batch; `GradientMap` re-keys gradients by parameter *name* and supports scaled
/// accumulation, which is what mini-batch training needs.
#[derive(Debug, Clone, Default)]
pub struct GradientMap {
    grads: HashMap<String, Matrix>,
}

impl GradientMap {
    /// Creates an empty gradient map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map directly from one backward pass.
    pub fn from_registry(registry: &ParamRegistry, grads: &Gradients) -> Self {
        let mut map = Self::new();
        map.accumulate(registry, grads, 1.0);
        map
    }

    /// Adds `scale` times the gradients of one backward pass into the map.
    pub fn accumulate(&mut self, registry: &ParamRegistry, grads: &Gradients, scale: f32) {
        for name in registry.names() {
            if let Some(grad) = registry.grad(name, grads) {
                let scaled = grad.scale(scale);
                match self.grads.get_mut(name) {
                    Some(existing) => {
                        *existing = existing.try_add(&scaled).expect("gradient shapes");
                    }
                    None => {
                        self.grads.insert(name.to_string(), scaled);
                    }
                }
            }
        }
    }

    /// Gradient for a parameter name, if any sample produced one.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.grads.get(name)
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// `true` when no gradients have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .values()
            .map(|g| g.iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

/// An optimiser that updates a model's named parameters from the gradients of one step.
///
/// Optimisers keep their state (momentum buffers, Adam moments) keyed by parameter name,
/// so the same optimiser instance can be reused across training steps even though the
/// autograd graph is rebuilt every step.
pub trait Optimizer {
    /// Applies one update step from gradients accumulated by name.
    ///
    /// Parameters without a gradient (e.g. layers that did not participate in the loss)
    /// are left untouched.
    fn step(&mut self, model: &mut dyn NamedParameters, grads: &GradientMap);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<String, Matrix>,
}

impl Sgd {
    /// Creates SGD with the given learning rate, momentum coefficient and weight decay.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive or momentum is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must lie in [0, 1)"
        );
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn NamedParameters, grads: &GradientMap) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_parameters_mut("", &mut |name, value| {
            let Some(grad) = grads.get(name) else {
                return;
            };
            let buffer = velocity
                .entry(name.to_string())
                .or_insert_with(|| Matrix::zeros(value.rows(), value.cols()));
            for ((v, g), w) in buffer
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice().iter())
                .zip(value.as_mut_slice().iter_mut())
            {
                *v = momentum * *v + g + weight_decay * *w;
                *w -= lr * *v;
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with decoupled weight decay (AdamW), the optimiser DeiT fine-tuning uses.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    first_moment: HashMap<String, Matrix>,
    second_moment: HashMap<String, Matrix>,
}

impl Adam {
    /// Creates AdamW with the given learning rate and weight decay (betas 0.9 / 0.999).
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            step: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Number of update steps applied so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn NamedParameters, grads: &GradientMap) {
        self.step += 1;
        let lr = self.lr;
        let (beta1, beta2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        let bias1 = 1.0 - beta1.powi(self.step as i32);
        let bias2 = 1.0 - beta2.powi(self.step as i32);
        let first = &mut self.first_moment;
        let second = &mut self.second_moment;
        model.visit_parameters_mut("", &mut |name, value| {
            let Some(grad) = grads.get(name) else {
                return;
            };
            let m = first
                .entry(name.to_string())
                .or_insert_with(|| Matrix::zeros(value.rows(), value.cols()));
            let v = second
                .entry(name.to_string())
                .or_insert_with(|| Matrix::zeros(value.rows(), value.cols()));
            for (((mi, vi), g), w) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(grad.as_slice().iter())
                .zip(value.as_mut_slice().iter_mut())
            {
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                // Decoupled weight decay (AdamW).
                *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
            }
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitality_autograd::Graph;
    use vitality_nn::Linear;
    use vitality_tensor::Matrix;

    /// Runs a few optimisation steps of `w` toward minimising `|x w - y|^2` and returns the
    /// final loss.
    fn optimise(optimizer: &mut dyn Optimizer, steps: usize) -> f32 {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let y = Matrix::from_rows(&[vec![2.0], vec![-1.0], vec![1.0]]).unwrap();
        let mut layer = Linear::from_weights(Matrix::zeros(2, 1), None);
        let mut final_loss = f32::INFINITY;
        for _ in 0..steps {
            let graph = Graph::new();
            let mut reg = ParamRegistry::new();
            let pred = layer.forward(&graph, &mut reg, "", &graph.constant(x.clone()));
            let err = pred.sub(&graph.constant(y.clone()));
            let loss = err.hadamard(&err).mean_all();
            final_loss = loss.value().get(0, 0);
            let grads = graph.backward(&loss);
            optimizer.step(&mut layer, &GradientMap::from_registry(&reg, &grads));
        }
        final_loss
    }

    #[test]
    fn sgd_reduces_the_loss_of_a_least_squares_problem() {
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        assert_eq!(sgd.learning_rate(), 0.1);
        let loss = optimise(&mut sgd, 100);
        assert!(loss < 0.05, "final loss {loss}");
    }

    #[test]
    fn adam_reduces_the_loss_of_a_least_squares_problem() {
        let mut adam = Adam::new(0.05, 0.0);
        let loss = optimise(&mut adam, 150);
        assert!(loss < 0.05, "final loss {loss}");
        assert_eq!(adam.steps_taken(), 150);
    }

    #[test]
    fn learning_rate_can_be_rescheduled() {
        let mut adam = Adam::new(0.05, 0.0);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        sgd.set_learning_rate(0.2);
        assert_eq!(sgd.learning_rate(), 0.2);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // With a zero gradient signal on one component, weight decay should still shrink it.
        let mut layer = Linear::from_weights(Matrix::filled(1, 1, 1.0), None);
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        for _ in 0..10 {
            let graph = Graph::new();
            let mut reg = ParamRegistry::new();
            // Loss does not depend on the weight's sign strongly: use y = 0 target with x = 0.
            let pred = layer.forward(&graph, &mut reg, "", &graph.constant(Matrix::zeros(1, 1)));
            let loss = pred.hadamard(&pred).mean_all();
            let grads = graph.backward(&loss);
            sgd.step(&mut layer, &GradientMap::from_registry(&reg, &grads));
        }
        assert!(layer.weight().get(0, 0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_zero_learning_rate() {
        let _ = Sgd::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn adam_rejects_zero_learning_rate() {
        let _ = Adam::new(0.0, 0.0);
    }
}
