//! Training substrate for the ViTALiTy accuracy experiments.
//!
//! The paper's accuracy results (Fig. 10, Fig. 13, Fig. 14, Fig. 15, Table IV) come from
//! fine-tuning ImageNet ViTs; this reproduction substitutes a synthetic patch-pattern
//! classification task (documented in `DESIGN.md`) and trains the structurally faithful
//! [`VisionTransformer`](vitality_vit::VisionTransformer) from `vitality-vit` with the
//! paper's four training schemes:
//!
//! * **BASELINE** — vanilla softmax attention.
//! * **SPARSE** — Sanger-style sparse attention (threshold `T = 0.02`).
//! * **LOWRANK** — drop-in linear Taylor attention on a model trained with softmax
//!   attention (no fine-tuning), which collapses exactly as Fig. 10 shows.
//! * **VITALITY** — fine-tune with the unified low-rank + sparse attention (optionally
//!   with knowledge distillation), then drop the sparse component for inference.
//!
//! The crate provides the synthetic dataset, SGD/Adam optimisers, the training loop with
//! knowledge distillation, the scheme runner, and the sparse-occupancy tracker behind
//! Fig. 14.

#![deny(missing_docs)]

pub mod dataset;
pub mod metrics;
pub mod optimizer;
pub mod schemes;
pub mod trainer;

pub use dataset::{DatasetConfig, SyntheticDataset};
pub use metrics::{accuracy, confusion_matrix};
pub use optimizer::{Adam, GradientMap, Optimizer, Sgd};
pub use schemes::{
    run_scheme, run_scheme_with_baseline, train_baseline, SchemeContext, SchemeOutcome,
    TrainingScheme,
};
pub use trainer::{Distillation, EpochStats, TrainOptions, Trainer};
