//! Synthetic patch-pattern classification dataset.
//!
//! The dataset substitutes ImageNet in the accuracy experiments (see the substitution table
//! in `DESIGN.md`). Each class is defined by an oriented sinusoidal grating whose phase is
//! randomised per sample, combined with a class-specific bright patch location; Gaussian
//! pixel noise makes the task non-trivial. Telling the classes apart requires combining
//! *global* structure (the grating orientation/frequency — what attention is good at) with
//! *local* structure (the bright patch — what the sparse "strong connection" component
//! helps with), which is exactly the tension the ViTALiTy training scheme resolves.

use rand::Rng;

use vitality_tensor::{init, Matrix};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image side length in pixels.
    pub image_size: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise: f32,
}

impl DatasetConfig {
    /// A small default matching [`vitality_vit::TrainConfig::experiment`].
    pub fn experiment() -> Self {
        Self {
            classes: 6,
            image_size: 24,
            train_per_class: 12,
            test_per_class: 6,
            noise: 0.25,
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            image_size: 16,
            train_per_class: 4,
            test_per_class: 2,
            noise: 0.15,
        }
    }
}

/// A generated dataset split into train and test sets.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: DatasetConfig,
    train_images: Vec<Matrix>,
    train_labels: Vec<usize>,
    test_images: Vec<Matrix>,
    test_labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates a dataset with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration has fewer than two classes or a zero image size.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: DatasetConfig) -> Self {
        assert!(
            config.classes >= 2,
            "a classification task needs at least two classes"
        );
        assert!(config.image_size >= 8, "images must be at least 8x8 pixels");
        let mut train_images = Vec::new();
        let mut train_labels = Vec::new();
        let mut test_images = Vec::new();
        let mut test_labels = Vec::new();
        for class in 0..config.classes {
            for _ in 0..config.train_per_class {
                train_images.push(Self::sample(rng, &config, class));
                train_labels.push(class);
            }
            for _ in 0..config.test_per_class {
                test_images.push(Self::sample(rng, &config, class));
                test_labels.push(class);
            }
        }
        // Shuffle the training set so mini-batches mix classes.
        for i in (1..train_images.len()).rev() {
            let j = rng.gen_range(0..=i);
            train_images.swap(i, j);
            train_labels.swap(i, j);
        }
        Self {
            config,
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    /// Generates one image of the given class.
    fn sample<R: Rng + ?Sized>(rng: &mut R, config: &DatasetConfig, class: usize) -> Matrix {
        let size = config.image_size;
        let classes = config.classes as f32;
        // Global structure: an oriented grating with class-dependent angle and frequency.
        let angle = std::f32::consts::PI * class as f32 / classes;
        let frequency = 2.0 + (class % 3) as f32;
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let (sin_a, cos_a) = (angle.sin(), angle.cos());
        let mut image = Matrix::from_fn(size, size, |i, j| {
            let u = (i as f32 / size as f32 - 0.5) * cos_a + (j as f32 / size as f32 - 0.5) * sin_a;
            0.5 + 0.5 * (std::f32::consts::TAU * frequency * u + phase).sin()
        });
        // Local structure: a bright patch whose quadrant depends on the class.
        let quarter = size / 4;
        let (cy, cx) = (
            quarter + (class % 2) * 2 * quarter,
            quarter + ((class / 2) % 2) * 2 * quarter,
        );
        for di in 0..quarter {
            for dj in 0..quarter {
                let (y, x) = (cy + di, cx + dj);
                if y < size && x < size {
                    image.set(y, x, (image.get(y, x) + 1.0).min(2.0));
                }
            }
        }
        // Pixel noise.
        let noise = init::normal(rng, size, size, 0.0, config.noise);
        image.try_add(&noise).expect("noise shape")
    }

    /// The dataset configuration.
    pub fn config(&self) -> DatasetConfig {
        self.config
    }

    /// Training images.
    pub fn train_images(&self) -> &[Matrix] {
        &self.train_images
    }

    /// Training labels (parallel to [`SyntheticDataset::train_images`]).
    pub fn train_labels(&self) -> &[usize] {
        &self.train_labels
    }

    /// Test images.
    pub fn test_images(&self) -> &[Matrix] {
        &self.test_images
    }

    /// Test labels (parallel to [`SyntheticDataset::test_images`]).
    pub fn test_labels(&self) -> &[usize] {
        &self.test_labels
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }

    /// Iterates over the training set in mini-batches of index ranges.
    pub fn train_batches(&self, batch_size: usize) -> Vec<(usize, usize)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.train_len() {
            let end = (start + batch_size).min(self.train_len());
            out.push((start, end));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_the_requested_number_of_samples() {
        let cfg = DatasetConfig::tiny();
        let mut rng = StdRng::seed_from_u64(400);
        let ds = SyntheticDataset::generate(&mut rng, cfg);
        assert_eq!(ds.train_len(), cfg.classes * cfg.train_per_class);
        assert_eq!(ds.test_len(), cfg.classes * cfg.test_per_class);
        assert_eq!(ds.train_images().len(), ds.train_labels().len());
        assert_eq!(ds.test_images().len(), ds.test_labels().len());
        assert_eq!(ds.config(), cfg);
        for img in ds.train_images() {
            assert_eq!(img.shape(), (cfg.image_size, cfg.image_size));
        }
    }

    #[test]
    fn every_class_appears_in_both_splits() {
        let cfg = DatasetConfig::tiny();
        let mut rng = StdRng::seed_from_u64(401);
        let ds = SyntheticDataset::generate(&mut rng, cfg);
        for class in 0..cfg.classes {
            assert!(ds.train_labels().contains(&class));
            assert!(ds.test_labels().contains(&class));
        }
    }

    #[test]
    fn images_of_different_classes_differ_more_than_noise() {
        let cfg = DatasetConfig {
            noise: 0.05,
            ..DatasetConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(402);
        let a0 = SyntheticDataset::sample(&mut rng, &cfg, 0);
        let a1 = SyntheticDataset::sample(&mut rng, &cfg, 0);
        let b = SyntheticDataset::sample(&mut rng, &cfg, 2);
        // Same-class images share the bright-patch location; cross-class images do not, so
        // the cross-class distance should exceed the within-class distance on average.
        let within = (&a0 - &a1).frobenius_norm();
        let across = (&a0 - &b).frobenius_norm();
        assert!(across > within * 0.8, "within {within} across {across}");
    }

    #[test]
    fn batching_covers_every_sample_exactly_once() {
        let cfg = DatasetConfig::tiny();
        let mut rng = StdRng::seed_from_u64(403);
        let ds = SyntheticDataset::generate(&mut rng, cfg);
        let batches = ds.train_batches(5);
        let total: usize = batches.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, ds.train_len());
        assert!(batches.windows(2).all(|w| w[0].1 == w[1].0));
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let cfg = DatasetConfig::tiny();
        let a = SyntheticDataset::generate(&mut StdRng::seed_from_u64(7), cfg);
        let b = SyntheticDataset::generate(&mut StdRng::seed_from_u64(7), cfg);
        assert!(a.train_images()[0].approx_eq(&b.train_images()[0], 0.0));
        assert_eq!(a.train_labels(), b.train_labels());
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class_configurations() {
        let mut rng = StdRng::seed_from_u64(404);
        let _ = SyntheticDataset::generate(
            &mut rng,
            DatasetConfig {
                classes: 1,
                ..DatasetConfig::tiny()
            },
        );
    }
}
