//! Patch extraction and patch embedding.

use rand::Rng;

use crate::linear::Linear;
use crate::registry::{qualify, NamedParameters, ParamRegistry};
use vitality_autograd::{Graph, Var};
use vitality_tensor::{init, Matrix, Workspace};

/// Splits a single-channel `H x W` image into non-overlapping `patch x patch` patches and
/// flattens each patch into one row of the returned `n x patch²` matrix (row-major patch
/// order, matching the "Split & Embed" step of Fig. 2 in the paper).
///
/// # Panics
///
/// Panics when the image dimensions are not divisible by `patch` or `patch == 0`.
pub fn patchify(image: &Matrix, patch: usize) -> Matrix {
    assert!(patch > 0, "patch size must be positive");
    assert!(
        image.rows().is_multiple_of(patch) && image.cols().is_multiple_of(patch),
        "image {:?} is not divisible into {patch}x{patch} patches",
        image.shape()
    );
    let rows = image.rows() / patch;
    let cols = image.cols() / patch;
    let mut out = Matrix::zeros(rows * cols, patch * patch);
    patchify_into(image, patch, &mut out);
    out
}

/// Allocation-free form of [`patchify`]: writes the flattened patches into a
/// caller-provided `n x patch²` matrix.
///
/// # Panics
///
/// Panics when the image is not divisible into patches or `out` has the wrong shape.
pub fn patchify_into(image: &Matrix, patch: usize, out: &mut Matrix) {
    assert!(patch > 0, "patch size must be positive");
    assert!(
        image.rows().is_multiple_of(patch) && image.cols().is_multiple_of(patch),
        "image {:?} is not divisible into {patch}x{patch} patches",
        image.shape()
    );
    let rows = image.rows() / patch;
    let cols = image.cols() / patch;
    assert_eq!(
        out.shape(),
        (rows * cols, patch * patch),
        "patchify_into output shape mismatch"
    );
    for pr in 0..rows {
        for pc in 0..cols {
            let token = pr * cols + pc;
            for i in 0..patch {
                for j in 0..patch {
                    out.set(
                        token,
                        i * patch + j,
                        image.get(pr * patch + i, pc * patch + j),
                    );
                }
            }
        }
    }
}

/// Linear patch embedding with a learned positional embedding.
///
/// The projection maps flattened patches (`patch²` values) to the model dimension `d`, and
/// a learned `n x d` positional embedding is added, mirroring the ViT/DeiT front end.
#[derive(Debug, Clone)]
pub struct PatchEmbed {
    projection: Linear,
    positional: Matrix,
    patch: usize,
}

impl PatchEmbed {
    /// Creates a patch embedding for `num_patches` patches of `patch x patch` pixels into
    /// an embedding dimension of `dim`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, patch: usize, num_patches: usize, dim: usize) -> Self {
        Self {
            projection: Linear::new(rng, patch * patch, dim, true),
            positional: init::truncated_normal(rng, num_patches, dim, 0.0, 0.02),
            patch: patch.max(1),
        }
    }

    /// Patch side length.
    pub fn patch(&self) -> usize {
        self.patch
    }

    /// Number of tokens the positional embedding covers.
    pub fn num_patches(&self) -> usize {
        self.positional.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.projection.out_features()
    }

    /// Embeds an image on the autograd graph: patchify, project, add positional embedding.
    ///
    /// # Panics
    ///
    /// Panics when the image yields a different number of patches than configured.
    pub fn forward(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        image: &Matrix,
    ) -> Var {
        let patches = patchify(image, self.patch);
        assert_eq!(
            patches.rows(),
            self.num_patches(),
            "image produces {} patches but the positional embedding covers {}",
            patches.rows(),
            self.num_patches()
        );
        let x = graph.constant(patches);
        let projected = self
            .projection
            .forward(graph, reg, &qualify(prefix, "proj"), &x);
        let pos = reg.register(graph, qualify(prefix, "pos"), &self.positional);
        projected.add(&pos)
    }

    /// Pure-inference embedding.
    pub fn infer(&self, image: &Matrix) -> Matrix {
        let patches = patchify(image, self.patch);
        self.projection
            .infer(&patches)
            .try_add(&self.positional)
            .expect("positional embedding shape")
    }

    /// Allocation-free embedding into `num_patches x dim` output storage; the patch
    /// buffer is checked out of (and recycled back into) `ws`.
    ///
    /// # Panics
    ///
    /// Panics when the image or output shapes are inconsistent with the configuration.
    pub fn infer_into(&self, image: &Matrix, ws: &mut Workspace, out: &mut Matrix) {
        let mut patches = ws.take(self.num_patches(), self.patch * self.patch);
        patchify_into(image, self.patch, &mut patches);
        self.projection.infer_into(&patches, out);
        out.add_assign(&self.positional);
        ws.recycle(patches);
    }
}

impl NamedParameters for PatchEmbed {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.projection
            .visit_parameters(&qualify(prefix, "proj"), visitor);
        visitor(&qualify(prefix, "pos"), &self.positional);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.projection
            .visit_parameters_mut(&qualify(prefix, "proj"), visitor);
        visitor(&qualify(prefix, "pos"), &mut self.positional);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patchify_preserves_all_pixels_in_order() {
        let image = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f32);
        let patches = patchify(&image, 2);
        assert_eq!(patches.shape(), (4, 4));
        // First patch is the top-left 2x2 block in row-major order.
        assert_eq!(patches.row(0), &[0.0, 1.0, 4.0, 5.0]);
        // Last patch is the bottom-right block.
        assert_eq!(patches.row(3), &[10.0, 11.0, 14.0, 15.0]);
        assert_eq!(patches.sum(), image.sum());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn patchify_rejects_indivisible_images() {
        let _ = patchify(&Matrix::zeros(5, 4), 2);
    }

    #[test]
    fn forward_matches_infer_and_registers_positional_embedding() {
        let mut rng = StdRng::seed_from_u64(10);
        let embed = PatchEmbed::new(&mut rng, 4, 16, 8);
        assert_eq!(embed.patch(), 4);
        assert_eq!(embed.num_patches(), 16);
        assert_eq!(embed.dim(), 8);
        let image = init::uniform(&mut rng, 16, 16, 0.0, 1.0);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = embed.forward(&graph, &mut reg, "embed", &image);
        assert_eq!(y.shape(), (16, 8));
        assert!(y.value().approx_eq(&embed.infer(&image), 1e-5));
        let grads = graph.backward(&y.sum());
        assert!(reg.grad("embed.pos", &grads).is_some());
        assert!(reg.grad("embed.proj.weight", &grads).is_some());
    }

    #[test]
    fn parameter_count_includes_positional() {
        let mut rng = StdRng::seed_from_u64(11);
        let embed = PatchEmbed::new(&mut rng, 2, 9, 4);
        // proj weight 4x4 + bias 4 + positional 9x4.
        assert_eq!(embed.parameter_count(), 16 + 4 + 36);
    }
}
