//! The Transformer MLP (feed-forward) block.

use rand::Rng;

use crate::linear::Linear;
use crate::registry::{qualify, NamedParameters, ParamRegistry};
use vitality_autograd::{Graph, Var};
use vitality_tensor::{Matrix, Workspace};

/// Activation used between the two MLP projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Gaussian error linear unit (standard in ViTs).
    #[default]
    Gelu,
    /// Rectified linear unit (used by LeViT's hardswish-free variant in this reproduction).
    Relu,
}

/// Two-layer feed-forward block: `Linear -> activation -> Linear`.
///
/// ViT MLP modules expand the embedding dimension by a configurable ratio (4x for DeiT,
/// 2x for LeViT/MobileViT blocks) and project back down.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP mapping `features -> hidden -> features`.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        features: usize,
        hidden: usize,
        activation: Activation,
    ) -> Self {
        Self {
            fc1: Linear::new(rng, features, hidden, true),
            fc2: Linear::new(rng, hidden, features, true),
            activation,
        }
    }

    /// Embedding dimension seen at the input and output.
    pub fn features(&self) -> usize {
        self.fc1.in_features()
    }

    /// Hidden (expanded) dimension.
    pub fn hidden(&self) -> usize {
        self.fc1.out_features()
    }

    /// Configured activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Runs the MLP on the autograd graph.
    pub fn forward(&self, graph: &Graph, reg: &mut ParamRegistry, prefix: &str, x: &Var) -> Var {
        let h = self.fc1.forward(graph, reg, &qualify(prefix, "fc1"), x);
        let h = match self.activation {
            Activation::Gelu => h.gelu(),
            Activation::Relu => h.relu(),
        };
        self.fc2.forward(graph, reg, &qualify(prefix, "fc2"), &h)
    }

    /// Pure-inference forward pass (activation applied in place on the hidden buffer).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.fc1.infer(x);
        match self.activation {
            Activation::Gelu => h.map_inplace(gelu),
            Activation::Relu => h.map_inplace(|v| v.max(0.0)),
        }
        self.fc2.infer(&h)
    }

    /// Allocation-free forward pass into `x.rows() x features` output storage; the
    /// hidden activation buffer is checked out of (and recycled back into) `ws`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes are inconsistent.
    pub fn infer_into(&self, x: &Matrix, ws: &mut Workspace, out: &mut Matrix) {
        let mut h = ws.take(x.rows(), self.hidden());
        self.fc1.infer_into(x, &mut h);
        match self.activation {
            Activation::Gelu => h.map_inplace(gelu),
            Activation::Relu => h.map_inplace(|v| v.max(0.0)),
        }
        self.fc2.infer_into(&h, out);
        ws.recycle(h);
    }

    /// Multiply–accumulate count of one forward pass over `tokens` rows.
    pub fn macs(&self, tokens: usize) -> usize {
        self.fc1.macs(tokens) + self.fc2.macs(tokens)
    }
}

fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

impl NamedParameters for Mlp {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.fc1.visit_parameters(&qualify(prefix, "fc1"), visitor);
        self.fc2.visit_parameters(&qualify(prefix, "fc2"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.fc1
            .visit_parameters_mut(&qualify(prefix, "fc1"), visitor);
        self.fc2
            .visit_parameters_mut(&qualify(prefix, "fc2"), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    #[test]
    fn forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&mut rng, 8, 16, Activation::Gelu);
        assert_eq!(mlp.features(), 8);
        assert_eq!(mlp.hidden(), 16);
        assert_eq!(mlp.activation(), Activation::Gelu);
        let x = init::normal(&mut rng, 5, 8, 0.0, 1.0);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = mlp.forward(&graph, &mut reg, "mlp", &graph.constant(x.clone()));
        assert!(y.value().approx_eq(&mlp.infer(&x), 1e-4));
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn relu_variant_zeroes_negative_hidden_activations() {
        let fc1 = Linear::from_weights(Matrix::identity(2), None);
        let fc2 = Linear::from_weights(Matrix::identity(2), None);
        let mlp = Mlp {
            fc1,
            fc2,
            activation: Activation::Relu,
        };
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]).unwrap();
        assert!(mlp
            .infer(&x)
            .approx_eq(&Matrix::from_rows(&[vec![0.0, 2.0]]).unwrap(), 1e-6));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut rng = StdRng::seed_from_u64(8);
        let mlp = Mlp::new(&mut rng, 4, 8, Activation::Gelu);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let x = graph.constant(init::normal(&mut rng, 3, 4, 0.0, 1.0));
        let loss = mlp.forward(&graph, &mut reg, "mlp", &x).mean_all();
        let grads = graph.backward(&loss);
        for name in [
            "mlp.fc1.weight",
            "mlp.fc1.bias",
            "mlp.fc2.weight",
            "mlp.fc2.bias",
        ] {
            assert!(reg.grad(name, &grads).is_some(), "missing grad for {name}");
        }
    }

    #[test]
    fn parameter_count_and_macs() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&mut rng, 4, 8, Activation::Gelu);
        assert_eq!(mlp.parameter_count(), 4 * 8 + 8 + 8 * 4 + 4);
        assert_eq!(mlp.macs(10), 10 * 4 * 8 * 2);
    }
}
