//! Classification head: final norm, mean token pooling and the logit projection.

use rand::Rng;

use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::registry::{qualify, NamedParameters, ParamRegistry};
use vitality_autograd::{Graph, Var};
use vitality_tensor::{Matrix, Workspace};

/// Final classification head.
///
/// The reproduction uses mean pooling over tokens instead of a dedicated class token:
/// the accuracy experiments only depend on relative orderings between attention variants,
/// and mean pooling keeps the token count identical across every attention type, which in
/// turn keeps the operation-count comparisons (Table I) clean.
#[derive(Debug, Clone)]
pub struct ClassificationHead {
    norm: LayerNorm,
    classifier: Linear,
}

impl ClassificationHead {
    /// Creates a head mapping `dim`-dimensional pooled tokens to `classes` logits.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, classes: usize) -> Self {
        Self {
            norm: LayerNorm::new(dim),
            classifier: Linear::new(rng, dim, classes, true),
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classifier.out_features()
    }

    /// Embedding dimension expected at the input.
    pub fn dim(&self) -> usize {
        self.classifier.in_features()
    }

    /// Produces `1 x classes` logits from an `n x d` token matrix on the autograd graph.
    pub fn forward(
        &self,
        graph: &Graph,
        reg: &mut ParamRegistry,
        prefix: &str,
        tokens: &Var,
    ) -> Var {
        let normed = self
            .norm
            .forward(graph, reg, &qualify(prefix, "norm"), tokens);
        let pooled = normed.mean_over_rows();
        self.classifier
            .forward(graph, reg, &qualify(prefix, "fc"), &pooled)
    }

    /// Pure-inference logits.
    pub fn infer(&self, tokens: &Matrix) -> Matrix {
        let normed = self.norm.infer(tokens);
        self.classifier.infer(&normed.col_mean())
    }

    /// Allocation-free logits into `1 x classes` output storage; the normalised-token
    /// and pooled buffers are checked out of (and recycled back into) `ws`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes are inconsistent.
    pub fn infer_into(&self, tokens: &Matrix, ws: &mut Workspace, out: &mut Matrix) {
        let mut normed = ws.take(tokens.rows(), tokens.cols());
        self.norm.infer_into(tokens, &mut normed);
        let mut pooled = ws.take(1, tokens.cols());
        normed.col_mean_into(&mut pooled);
        self.classifier.infer_into(&pooled, out);
        ws.recycle(normed);
        ws.recycle(pooled);
    }
}

impl NamedParameters for ClassificationHead {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        self.norm
            .visit_parameters(&qualify(prefix, "norm"), visitor);
        self.classifier
            .visit_parameters(&qualify(prefix, "fc"), visitor);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        self.norm
            .visit_parameters_mut(&qualify(prefix, "norm"), visitor);
        self.classifier
            .visit_parameters_mut(&qualify(prefix, "fc"), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    #[test]
    fn produces_one_logit_row() {
        let mut rng = StdRng::seed_from_u64(12);
        let head = ClassificationHead::new(&mut rng, 8, 5);
        assert_eq!(head.classes(), 5);
        assert_eq!(head.dim(), 8);
        let tokens = init::normal(&mut rng, 10, 8, 0.0, 1.0);
        let logits = head.infer(&tokens);
        assert_eq!(logits.shape(), (1, 5));
    }

    #[test]
    fn forward_matches_infer_and_backpropagates() {
        let mut rng = StdRng::seed_from_u64(13);
        let head = ClassificationHead::new(&mut rng, 6, 3);
        let tokens = init::normal(&mut rng, 7, 6, 0.0, 1.0);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let logits = head.forward(&graph, &mut reg, "head", &graph.constant(tokens.clone()));
        assert!(logits.value().approx_eq(&head.infer(&tokens), 1e-4));
        let loss = logits.cross_entropy_with_logits(&[1]);
        let grads = graph.backward(&loss);
        for name in [
            "head.norm.gamma",
            "head.norm.beta",
            "head.fc.weight",
            "head.fc.bias",
        ] {
            assert!(reg.grad(name, &grads).is_some(), "missing grad for {name}");
        }
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(14);
        let head = ClassificationHead::new(&mut rng, 4, 2);
        // norm: 4 + 4, fc: 4*2 + 2
        assert_eq!(head.parameter_count(), 8 + 10);
    }
}
