//! Parameter registration shared by every layer.

use std::collections::HashMap;

use vitality_autograd::{Gradients, Graph, Var, VarId};
use vitality_tensor::Matrix;

/// Records which tape node each named parameter was registered to during a forward pass.
///
/// The registry is rebuilt together with the graph at every training step. After a
/// backward pass it resolves parameter names to gradients, which is what the optimisers in
/// `vitality-train` consume.
#[derive(Debug, Default, Clone)]
pub struct ParamRegistry {
    ids: HashMap<String, VarId>,
}

impl ParamRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `value` as a trainable parameter called `name` on `graph` and returns the
    /// tape variable to use in the forward computation.
    ///
    /// Registering the same name twice in one pass returns a fresh node each time and the
    /// later registration wins for gradient lookup; layers therefore use unique prefixes.
    pub fn register(&mut self, graph: &Graph, name: impl Into<String>, value: &Matrix) -> Var {
        let var = graph.parameter(value.clone());
        self.ids.insert(name.into(), var.id());
        var
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Gradient of the parameter registered under `name`, if any.
    pub fn grad<'g>(&self, name: &str, grads: &'g Gradients) -> Option<&'g Matrix> {
        self.ids.get(name).and_then(|id| grads.get_by_id(*id))
    }

    /// Names of all registered parameters (order unspecified).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.ids.keys().map(String::as_str)
    }
}

/// Trait implemented by layers and models that own trainable parameters.
///
/// `visit_parameters` and `visit_parameters_mut` walk every owned matrix with a stable,
/// fully-qualified name (for example `"block3.attn.wq"`), which is the contract the
/// optimisers rely on.
pub trait NamedParameters {
    /// Calls `visitor` with the name and current value of every parameter.
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix));

    /// Calls `visitor` with the name and a mutable reference to every parameter.
    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix));

    /// Total number of scalar parameters.
    fn parameter_count(&self) -> usize {
        let mut count = 0;
        self.visit_parameters("", &mut |_, m| count += m.len());
        count
    }
}

/// Joins a prefix and a leaf name with a dot, omitting the dot for an empty prefix.
pub(crate) fn qualify(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_gradients() {
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let w = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let w_var = reg.register(&graph, "w", &w);
        let x = graph.constant(Matrix::ones(1, 2));
        let loss = x.matmul(&w_var).sum();
        let grads = graph.backward(&loss);
        let gw = reg.grad("w", &grads).unwrap();
        assert_eq!(gw.shape(), (2, 2));
        assert!(reg.grad("missing", &grads).is_none());
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        assert_eq!(reg.names().count(), 1);
    }

    #[test]
    fn qualify_handles_empty_prefix() {
        assert_eq!(qualify("", "w"), "w");
        assert_eq!(qualify("block0.attn", "wq"), "block0.attn.wq");
    }
}
