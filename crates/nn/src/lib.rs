//! Neural-network layers for the ViTALiTy reproduction.
//!
//! The layers in this crate are the building blocks shared by every Vision Transformer
//! variant evaluated in the paper (DeiT, MobileViT's transformer blocks, LeViT's stages):
//! linear projections, layer normalisation, the MLP block, patch embedding and the
//! classification head. They are written against [`vitality_autograd`] so that the same
//! definitions serve both inference and the fine-tuning experiments.
//!
//! # Parameter handling
//!
//! The autograd [`Graph`](vitality_autograd::Graph) is rebuilt for every training step, so
//! layers own their weights as plain [`Matrix`](vitality_tensor::Matrix) values and
//! re-register them on the active graph at the start of each forward pass through a
//! [`ParamRegistry`]. After `backward`, optimisers look gradients up by parameter name and
//! update the owned matrices in place.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use vitality_autograd::Graph;
//! use vitality_nn::{Linear, ParamRegistry};
//! use vitality_tensor::Matrix;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layer = Linear::new(&mut rng, 8, 4, true);
//! let graph = Graph::new();
//! let mut reg = ParamRegistry::new();
//! let x = graph.constant(Matrix::ones(3, 8));
//! let y = layer.forward(&graph, &mut reg, "proj", &x);
//! assert_eq!(y.shape(), (3, 4));
//! ```

#![deny(missing_docs)]

pub mod dropout;
pub mod embed;
pub mod head;
pub mod linear;
pub mod mlp;
pub mod norm;
pub mod registry;

pub use dropout::Dropout;
pub use embed::{patchify, PatchEmbed};
pub use head::ClassificationHead;
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
pub use norm::LayerNorm;
pub use registry::{NamedParameters, ParamRegistry};
