//! Layer normalisation.

use crate::registry::{qualify, NamedParameters, ParamRegistry};
use vitality_autograd::{Graph, Var};
use vitality_tensor::Matrix;

/// Layer normalisation over the feature dimension with a learned affine transform.
///
/// Every Transformer block in the evaluated ViTs applies `LayerNorm` before the attention
/// and the MLP sub-modules (pre-norm), and the classification head applies a final one.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Matrix,
    beta: Matrix,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over `features` with unit scale and zero shift.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Matrix::ones(1, features),
            beta: Matrix::zeros(1, features),
            eps: 1e-5,
        }
    }

    /// Creates a layer norm with an explicit epsilon.
    pub fn with_eps(features: usize, eps: f32) -> Self {
        Self {
            eps,
            ..Self::new(features)
        }
    }

    /// Normalised feature count.
    pub fn features(&self) -> usize {
        self.gamma.cols()
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Runs layer normalisation on the autograd graph.
    pub fn forward(&self, graph: &Graph, reg: &mut ParamRegistry, prefix: &str, x: &Var) -> Var {
        let gamma = reg.register(graph, qualify(prefix, "gamma"), &self.gamma);
        let beta = reg.register(graph, qualify(prefix, "beta"), &self.beta);
        x.layer_norm(&gamma, &beta, self.eps)
    }

    /// Pure-inference layer normalisation without the tape.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        self.infer_into(x, &mut out);
        out
    }

    /// Allocation-free layer normalisation into an equally-shaped `out` matrix.
    ///
    /// # Panics
    ///
    /// Panics when `out.shape() != x.shape()`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(out.shape(), x.shape(), "layer norm output shape mismatch");
        let d = x.cols();
        for i in 0..x.rows() {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for (j, o) in out.row_mut(i).iter_mut().enumerate() {
                let normalised = (row[j] - mean) * inv_std;
                *o = normalised * self.gamma.get(0, j) + self.beta.get(0, j);
            }
        }
    }
}

impl NamedParameters for LayerNorm {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        visitor(&qualify(prefix, "gamma"), &self.gamma);
        visitor(&qualify(prefix, "beta"), &self.beta);
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        visitor(&qualify(prefix, "gamma"), &mut self.gamma);
        visitor(&qualify(prefix, "beta"), &mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    #[test]
    fn infer_normalises_each_row() {
        let ln = LayerNorm::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let x = init::normal(&mut rng, 4, 8, 3.0, 2.0);
        let y = ln.infer(&x);
        for i in 0..y.rows() {
            let s = vitality_tensor::stats::Summary::of(y.row(i));
            assert!(s.mean.abs() < 1e-4);
            assert!((s.std_dev - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn forward_matches_infer_and_produces_grads() {
        let ln = LayerNorm::with_eps(6, 1e-6);
        assert_eq!(ln.features(), 6);
        assert!(ln.eps() < 1e-5);
        let mut rng = StdRng::seed_from_u64(6);
        let x = init::normal(&mut rng, 3, 6, 0.0, 1.0);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = ln.forward(&graph, &mut reg, "ln", &graph.constant(x.clone()));
        assert!(y.value().approx_eq(&ln.infer(&x), 1e-4));
        let grads = graph.backward(&y.sum());
        assert!(reg.grad("ln.gamma", &grads).is_some());
        assert!(reg.grad("ln.beta", &grads).is_some());
    }

    #[test]
    fn named_parameters() {
        let mut ln = LayerNorm::new(4);
        assert_eq!(ln.parameter_count(), 8);
        let mut names = Vec::new();
        ln.visit_parameters("norm", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["norm.gamma", "norm.beta"]);
        ln.visit_parameters_mut("norm", &mut |n, m| {
            if n.ends_with("beta") {
                m.map_inplace(|_| 1.0);
            }
        });
        let x = Matrix::zeros(2, 4);
        assert!(ln.infer(&x).approx_eq(&Matrix::ones(2, 4), 1e-5));
    }
}
