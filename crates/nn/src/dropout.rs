//! Inverted dropout.

use rand::Rng;

use vitality_autograd::Var;
use vitality_tensor::Matrix;

/// Inverted dropout: during training, elements are zeroed with probability `p` and the
/// survivors are scaled by `1 / (1 - p)` so that inference needs no rescaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Self { p }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Samples a keep/drop mask (already including the `1/(1-p)` scale) for a tensor of
    /// the given shape.
    pub fn sample_mask<R: Rng + ?Sized>(&self, rng: &mut R, rows: usize, cols: usize) -> Matrix {
        if self.p == 0.0 {
            return Matrix::ones(rows, cols);
        }
        let keep = 1.0 - self.p;
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        })
    }

    /// Applies dropout on the autograd graph using a pre-sampled mask.
    ///
    /// The mask already carries the `1/(1-p)` scale, so a Hadamard product with a constant
    /// realises scaled dropout with the correct gradient.
    pub fn forward(&self, x: &Var, mask: &Matrix) -> Var {
        if self.p == 0.0 {
            x.clone()
        } else {
            x.hadamard(&x.graph().constant(mask.clone()))
        }
    }

    /// Applies dropout to a plain matrix (inference-time no-op: inverted dropout needs no
    /// rescaling at inference).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_autograd::Graph;

    #[test]
    fn zero_probability_is_identity() {
        let d = Dropout::new(0.0);
        assert_eq!(d.probability(), 0.0);
        let mut rng = StdRng::seed_from_u64(15);
        let mask = d.sample_mask(&mut rng, 3, 3);
        assert!(mask.approx_eq(&Matrix::ones(3, 3), 0.0));
        let x = Matrix::ones(3, 3);
        assert!(d.infer(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn mask_preserves_expectation() {
        let d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(16);
        let mask = d.sample_mask(&mut rng, 100, 100);
        // Inverted dropout: the mean of the mask should be close to 1.
        assert!((mask.mean() - 1.0).abs() < 0.05, "mean {}", mask.mean());
        // Survivors carry the 1/keep scale.
        assert!(mask.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn forward_applies_mask_with_gradient() {
        let d = Dropout::new(0.5);
        let graph = Graph::new();
        let x = graph.parameter(Matrix::ones(2, 2));
        let mask = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]).unwrap();
        let y = d.forward(&x, &mask);
        assert_eq!(y.value().sum(), 4.0);
        let grads = graph.backward(&y.sum());
        let gx = grads.get(&x).unwrap();
        assert_eq!(gx.get(0, 0), 2.0);
        assert_eq!(gx.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0);
    }
}
