//! Fully-connected (dense) projection layer.

use rand::Rng;

use crate::registry::{qualify, NamedParameters, ParamRegistry};
use vitality_autograd::{Graph, Var};
use vitality_tensor::{init, Matrix};

/// A dense layer computing `y = x W + b` for row-major token matrices.
///
/// `W` is stored as `in_features x out_features`, matching the paper's notation where the
/// query/key/value projections are `Q = X W_Q` with `W_Q ∈ R^{d x d}`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix,
    bias: Option<Matrix>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and (optionally) a zero bias.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Self {
        Self {
            weight: init::xavier_uniform(rng, in_features, out_features),
            bias: bias.then(|| Matrix::zeros(1, out_features)),
        }
    }

    /// Creates a layer from explicit weights (and optional bias), mainly for tests.
    ///
    /// # Panics
    ///
    /// Panics when the bias width does not match the weight's output width.
    pub fn from_weights(weight: Matrix, bias: Option<Matrix>) -> Self {
        if let Some(b) = &bias {
            assert_eq!(
                b.shape(),
                (1, weight.cols()),
                "bias must be 1 x out_features"
            );
        }
        Self { weight, bias }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// Borrow of the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow of the bias row vector, if the layer has one.
    pub fn bias(&self) -> Option<&Matrix> {
        self.bias.as_ref()
    }

    /// Runs the projection on the autograd graph, registering the parameters under
    /// `prefix.weight` / `prefix.bias`.
    pub fn forward(&self, graph: &Graph, reg: &mut ParamRegistry, prefix: &str, x: &Var) -> Var {
        let w = reg.register(graph, qualify(prefix, "weight"), &self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => {
                let b = reg.register(graph, qualify(prefix, "bias"), b);
                y.add_bias(&b)
            }
            None => y,
        }
    }

    /// Pure-inference projection that skips the tape entirely.
    ///
    /// The product runs on the blocked matmul backend and the bias is folded in with an
    /// in-place broadcast, so the projection allocates exactly one output buffer.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight);
        if let Some(b) = &self.bias {
            y.add_row_inplace(b);
        }
        y
    }

    /// Allocation-free projection into a caller-provided `x.rows() x out_features`
    /// matrix (the [`Workspace`](vitality_tensor::Workspace)-era form of
    /// [`Linear::infer`], used by the serving hot paths).
    ///
    /// # Panics
    ///
    /// Panics when the shapes are inconsistent.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight, out);
        if let Some(b) = &self.bias {
            out.add_row_inplace(b);
        }
    }

    /// Multiply–accumulate count of one forward pass over `tokens` rows.
    pub fn macs(&self, tokens: usize) -> usize {
        tokens * self.in_features() * self.out_features()
    }
}

impl NamedParameters for Linear {
    fn visit_parameters(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Matrix)) {
        visitor(&qualify(prefix, "weight"), &self.weight);
        if let Some(b) = &self.bias {
            visitor(&qualify(prefix, "bias"), b);
        }
    }

    fn visit_parameters_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Matrix)) {
        visitor(&qualify(prefix, "weight"), &mut self.weight);
        if let Some(b) = &mut self.bias {
            visitor(&qualify(prefix, "bias"), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn infer_matches_forward_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut rng, 6, 3, true);
        let x = init::normal(&mut rng, 4, 6, 0.0, 1.0);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let y = layer.forward(&graph, &mut reg, "lin", &graph.constant(x.clone()));
        assert!(y.value().approx_eq(&layer.infer(&x), 1e-5));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(&mut rng, 3, 2, true);
        let graph = Graph::new();
        let mut reg = ParamRegistry::new();
        let x = graph.constant(Matrix::ones(5, 3));
        let loss = layer.forward(&graph, &mut reg, "lin", &x).sum();
        let grads = graph.backward(&loss);
        assert!(reg.grad("lin.weight", &grads).is_some());
        let gb = reg.grad("lin.bias", &grads).unwrap();
        assert!(gb.approx_eq(&Matrix::filled(1, 2, 5.0), 1e-5));
    }

    #[test]
    fn from_weights_validates_bias_shape() {
        let w = Matrix::identity(3);
        let layer = Linear::from_weights(w.clone(), Some(Matrix::zeros(1, 3)));
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 3);
        assert!(layer.bias().is_some());
        assert_eq!(layer.weight().shape(), (3, 3));
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(layer.infer(&x).approx_eq(&x, 1e-6));
    }

    #[test]
    #[should_panic(expected = "bias must be")]
    fn from_weights_rejects_bad_bias() {
        let _ = Linear::from_weights(Matrix::identity(3), Some(Matrix::zeros(1, 2)));
    }

    #[test]
    fn named_parameters_and_macs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(&mut rng, 4, 8, true);
        assert_eq!(layer.parameter_count(), 4 * 8 + 8);
        assert_eq!(layer.macs(10), 10 * 4 * 8);
        let mut names = Vec::new();
        layer.visit_parameters("blk", &mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["blk.weight", "blk.bias"]);
        layer.visit_parameters_mut("blk", &mut |_, m| m.map_inplace(|_| 0.0));
        assert_eq!(layer.weight().sum(), 0.0);
    }

    #[test]
    fn layer_without_bias_has_fewer_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let with = Linear::new(&mut rng, 4, 4, true);
        let without = Linear::new(&mut rng, 4, 4, false);
        assert_eq!(with.parameter_count() - without.parameter_count(), 4);
        assert!(without.bias().is_none());
    }
}
