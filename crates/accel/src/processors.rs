//! Cycle models of the pre/post-processor chunks (accumulator, adder and divider arrays).

use serde::{Deserialize, Serialize};

/// The accumulator array: `lanes` parallel accumulators performing column(token)-wise
/// summation — `1_n^T K`, `\hat{k}_{sum}` and `v_{sum}` in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulatorArray {
    lanes: usize,
}

impl AccumulatorArray {
    /// Creates an accumulator array with the given number of lanes.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "accumulator array needs at least one lane");
        Self { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles to accumulate an `n x d` matrix along its token dimension: each lane owns a
    /// column, so `ceil(d / lanes)` passes of `n` sequential additions each.
    pub fn column_sum_cycles(&self, n: usize, d: usize) -> u64 {
        (d.div_ceil(self.lanes) as u64) * n as u64
    }
}

/// The adder array: element-wise additions/subtractions (mean-centring the keys, the
/// Taylor numerator/denominator assembly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdderArray {
    lanes: usize,
}

impl AdderArray {
    /// Creates an adder array with the given number of lanes.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "adder array needs at least one lane");
        Self { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles to perform `count` element-wise additions.
    pub fn elementwise_cycles(&self, count: usize) -> u64 {
        count.div_ceil(self.lanes) as u64
    }
}

/// The division pattern the reconfigurable divider array is operating in (Fig. 6, upper
/// left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DividerMode {
    /// A single divisor shared by every element (dividing the key column sums by `n` to
    /// form the mean in Step 1).
    SingleDivisor,
    /// One divisor per row (the `diag^{-1}(t_D) T_N` normalisation of Step 6).
    MultipleDivisors,
}

/// The divider array: element-wise divisions in either of the two patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DividerArray {
    lanes: usize,
    /// Pipeline latency of one 16-bit division in cycles.
    division_latency: u64,
}

impl DividerArray {
    /// Creates a divider array with the given number of lanes and a 4-cycle pipelined
    /// divider per lane.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "divider array needs at least one lane");
        Self {
            lanes,
            division_latency: 4,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Pipeline latency of a single division.
    pub fn division_latency(&self) -> u64 {
        self.division_latency
    }

    /// Cycles to perform `count` divisions in the given mode.
    ///
    /// Divisions are pipelined, so throughput is one result per lane per cycle after the
    /// initial latency. `MultipleDivisors` pays one extra cycle per group of `lanes`
    /// results to reload the divisor registers.
    pub fn division_cycles(&self, count: usize, mode: DividerMode) -> u64 {
        if count == 0 {
            return 0;
        }
        let groups = count.div_ceil(self.lanes) as u64;
        let reload = match mode {
            DividerMode::SingleDivisor => 0,
            DividerMode::MultipleDivisors => groups,
        };
        self.division_latency + groups + reload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_cycles_scale_with_tokens_and_columns() {
        let acc = AccumulatorArray::new(64);
        assert_eq!(acc.lanes(), 64);
        // 64 columns fit in one pass: n cycles.
        assert_eq!(acc.column_sum_cycles(197, 64), 197);
        // 128 columns need two passes.
        assert_eq!(acc.column_sum_cycles(197, 128), 394);
        assert_eq!(acc.column_sum_cycles(0, 64), 0);
    }

    #[test]
    fn adder_cycles_divide_by_lane_count() {
        let adder = AdderArray::new(64);
        assert_eq!(adder.lanes(), 64);
        assert_eq!(adder.elementwise_cycles(64), 1);
        assert_eq!(adder.elementwise_cycles(65), 2);
        assert_eq!(adder.elementwise_cycles(0), 0);
        assert_eq!(adder.elementwise_cycles(197 * 64), 197);
    }

    #[test]
    fn divider_modes_differ_by_the_reload_overhead() {
        let div = DividerArray::new(64);
        assert_eq!(div.lanes(), 64);
        let single = div.division_cycles(640, DividerMode::SingleDivisor);
        let multi = div.division_cycles(640, DividerMode::MultipleDivisors);
        assert!(multi > single);
        assert_eq!(multi - single, 10);
        assert_eq!(div.division_cycles(0, DividerMode::SingleDivisor), 0);
        assert!(div.division_cycles(1, DividerMode::SingleDivisor) >= div.division_latency());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn accumulator_rejects_zero_lanes() {
        let _ = AccumulatorArray::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn adder_rejects_zero_lanes() {
        let _ = AdderArray::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn divider_rejects_zero_lanes() {
        let _ = DividerArray::new(0);
    }
}
