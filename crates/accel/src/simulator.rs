//! End-to-end accelerator simulation of full ViT models.

use serde::{Deserialize, Serialize};

use crate::config::AcceleratorConfig;
use crate::dataflow::{taylor_head_traffic, Dataflow, MemoryTraffic};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::pipeline::{taylor_layer_schedule, LayerSchedule, PipelineMode};
use crate::processors::{DividerArray, DividerMode};
use crate::systolic::{SystolicArray, SystolicDataflow};
use vitality_vit::ModelWorkload;

/// Which attention computation the accelerator executes.
///
/// The production configuration runs the linear Taylor attention; the vanilla engine maps
/// the quadratic softmax attention onto the same chunks (exponentials emulated on the
/// divider array) and exists for the ablation that shows why the hardware is co-designed
/// with the algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionEngine {
    /// ViTALiTy's linear Taylor attention (Algorithm 1).
    Taylor,
    /// The vanilla softmax attention mapped onto the same hardware.
    VanillaSoftmax,
}

/// Simulation result for one model on the ViTALiTy accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Model name.
    pub model: &'static str,
    /// Cycles spent in the attention steps (all layers).
    pub attention_cycles: u64,
    /// Cycles spent in the linear projections, MLPs and the convolutional backbone.
    pub linear_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Attention-only latency in seconds.
    pub attention_latency_s: f64,
    /// End-to-end latency in seconds.
    pub total_latency_s: f64,
    /// Attention-only energy breakdown (the Table V shape).
    pub attention_energy: EnergyBreakdown,
    /// Attention-only energy in joules.
    pub attention_energy_j: f64,
    /// End-to-end energy in joules.
    pub total_energy_j: f64,
}

/// The ViTALiTy accelerator simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VitalityAccelerator {
    config: AcceleratorConfig,
    dataflow: Dataflow,
    pipeline: PipelineMode,
}

impl VitalityAccelerator {
    /// Creates the accelerator with the paper's defaults: down-forward accumulation
    /// dataflow and the intra-layer pipeline enabled.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            dataflow: Dataflow::DownForwardAccumulation,
            pipeline: PipelineMode::Pipelined,
        }
    }

    /// Returns a copy using the given dataflow (Table V ablation).
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Returns a copy using the given pipeline mode (throughput ablation).
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The configured dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// The configured pipeline mode.
    pub fn pipeline_mode(&self) -> PipelineMode {
        self.pipeline
    }

    /// Clock frequency in Hz (after peak-throughput scaling).
    fn effective_frequency(&self) -> f64 {
        self.config.frequency_hz
    }

    /// Schedule of one Taylor-attention layer.
    pub fn attention_layer_schedule(
        &self,
        tokens: usize,
        head_dim: usize,
        heads: usize,
    ) -> LayerSchedule {
        taylor_layer_schedule(&self.config, tokens, head_dim, heads)
    }

    /// Cycles for a dense `m x k` by `k x n` multiplication on SA-General, accounting for
    /// the throughput scale factor by shrinking the effective work proportionally.
    fn scaled_matmul_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        let sa = SystolicArray::new(self.config.sa_general_rows, self.config.sa_general_cols);
        let raw = sa.matmul_cycles(m, k, n, SystolicDataflow::InputStationary);
        (raw as f64 / self.config.scale_factor).ceil() as u64
    }

    /// Simulates the attention of every layer of a model with the Taylor engine and
    /// returns total cycles, energy breakdown and memory traffic.
    fn simulate_taylor_attention(&self, workload: &ModelWorkload) -> (u64, EnergyBreakdown) {
        let energy_model = EnergyModel::from_config(&self.config);
        let mut cycles = 0u64;
        let mut breakdown = EnergyBreakdown::default();
        for stage in &workload.stages {
            let layers = stage.stage.layers as u64;
            let schedule = self.attention_layer_schedule(
                stage.stage.tokens,
                stage.stage.head_dim,
                stage.stage.heads,
            );
            let layer_cycles = (schedule.latency_cycles(self.pipeline) as f64
                / self.config.scale_factor)
                .ceil() as u64;
            cycles += layer_cycles * layers;

            let traffic =
                taylor_head_traffic(stage.stage.tokens, stage.stage.head_dim, self.dataflow)
                    .scaled(stage.stage.heads as u64 * layers);
            let layer_breakdown = EnergyBreakdown {
                data_access_j: energy_model.memory_energy_j(&traffic, layer_cycles * layers),
                other_processors_j: energy_model.processor_energy_j(
                    schedule.accumulator_cycles * layers,
                    schedule.adder_cycles * layers,
                    schedule.divider_cycles * layers,
                ),
                systolic_array_j: energy_model.systolic_energy_j(
                    schedule.sa_general_cycles * layers,
                    schedule.sa_diag_cycles * layers,
                    self.dataflow.pe_energy_overhead(),
                ),
            };
            breakdown = breakdown.combine(&layer_breakdown);
        }
        (cycles, breakdown)
    }

    /// Simulates the vanilla softmax attention mapped onto the same hardware (ablation).
    fn simulate_vanilla_attention(&self, workload: &ModelWorkload) -> (u64, EnergyBreakdown) {
        let energy_model = EnergyModel::from_config(&self.config);
        let sa = SystolicArray::new(self.config.sa_general_rows, self.config.sa_general_cols);
        let divider = DividerArray::new(self.config.divider_lanes);
        let mut cycles = 0u64;
        let mut breakdown = EnergyBreakdown::default();
        for stage in &workload.stages {
            let (n, d, h) = (stage.stage.tokens, stage.stage.head_dim, stage.stage.heads);
            let layers = stage.stage.layers as u64;
            let hu = h as u64;
            // Q K^T and S V on the systolic array.
            let sa_cycles = hu
                * (sa.matmul_cycles(n, d, n, SystolicDataflow::InputStationary)
                    + sa.matmul_cycles(n, n, d, SystolicDataflow::InputStationary));
            // Softmax: n² exponentials (emulated on the divider lanes at 8 cycles each) and
            // n² divisions.
            let exp_cycles = hu * ((n * n) as u64).div_ceil(self.config.divider_lanes as u64) * 8;
            let div_cycles = hu * divider.division_cycles(n * n, DividerMode::MultipleDivisors);
            let layer_cycles = ((sa_cycles + exp_cycles + div_cycles) as f64
                / self.config.scale_factor)
                .ceil() as u64;
            cycles += layer_cycles * layers;

            // Quadratic attention map spills to SRAM twice (write after QK^T, read for SV).
            let traffic = MemoryTraffic {
                dram: 0,
                sram: (4 * n * d + 2 * n * n) as u64 * hu * layers,
                noc: (4 * n * d + 2 * n * n) as u64 * hu * layers,
                reg: (2 * (2 * n * n * d)) as u64 * hu * layers,
            };
            let layer_breakdown = EnergyBreakdown {
                data_access_j: energy_model.memory_energy_j(&traffic, layer_cycles * layers),
                other_processors_j: energy_model.processor_energy_j(
                    0,
                    0,
                    (exp_cycles + div_cycles) * layers,
                ),
                systolic_array_j: energy_model.systolic_energy_j(sa_cycles * layers, 0, 1.0),
            };
            breakdown = breakdown.combine(&layer_breakdown);
        }
        (cycles, breakdown)
    }

    /// Cycles and energy of the non-attention portion (projections, MLPs, backbone).
    fn simulate_linear(&self, workload: &ModelWorkload) -> (u64, f64) {
        let energy_model = EnergyModel::from_config(&self.config);
        let mut cycles = 0u64;
        for stage in &workload.stages {
            let tokens = stage.stage.tokens;
            let layers = stage.stage.layers as u64;
            let embed = stage.stage.embed_dim;
            let attn_width = stage.stage.heads * stage.stage.head_dim;
            let hidden = (stage.stage.embed_dim as f32 * stage.stage.mlp_ratio) as usize;
            let per_layer = self.scaled_matmul_cycles(tokens, embed, 3 * attn_width)
                + self.scaled_matmul_cycles(tokens, attn_width, embed)
                + self.scaled_matmul_cycles(tokens, embed, hidden)
                + self.scaled_matmul_cycles(tokens, hidden, embed);
            cycles += per_layer * layers;
        }
        // The convolutional backbone runs on the systolic array at its peak throughput.
        let backbone_cycles = (workload.backbone_macs as f64 / self.config.peak_macs_per_second()
            * self.effective_frequency())
        .ceil() as u64;
        cycles += backbone_cycles;
        let weight_words = workload.weight_parameter_words();

        // Energy: systolic busy power plus one DRAM fetch of every weight.
        let traffic = MemoryTraffic {
            dram: weight_words,
            sram: weight_words * 2,
            noc: weight_words,
            reg: 0,
        };
        let energy = energy_model.systolic_energy_j(cycles, 0, 1.0)
            + energy_model.memory_energy_j(&traffic, cycles);
        (cycles, energy)
    }

    /// Simulates a full model with the Taylor attention engine (the production setting).
    pub fn simulate_model(&self, workload: &ModelWorkload) -> SimulationReport {
        self.simulate_model_with_engine(workload, AttentionEngine::Taylor)
    }

    /// Simulates a full model with the chosen attention engine.
    pub fn simulate_model_with_engine(
        &self,
        workload: &ModelWorkload,
        engine: AttentionEngine,
    ) -> SimulationReport {
        let (attention_cycles, attention_energy) = match engine {
            AttentionEngine::Taylor => self.simulate_taylor_attention(workload),
            AttentionEngine::VanillaSoftmax => self.simulate_vanilla_attention(workload),
        };
        let (linear_cycles, linear_energy) = self.simulate_linear(workload);
        let total_cycles = attention_cycles + linear_cycles;
        let period = 1.0 / self.effective_frequency();
        SimulationReport {
            model: workload.name,
            attention_cycles,
            linear_cycles,
            total_cycles,
            attention_latency_s: attention_cycles as f64 * period,
            total_latency_s: total_cycles as f64 * period,
            attention_energy,
            attention_energy_j: attention_energy.total_j(),
            total_energy_j: attention_energy.total_j() + linear_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitality_vit::ModelConfig;

    fn accel() -> VitalityAccelerator {
        VitalityAccelerator::new(AcceleratorConfig::paper())
    }

    fn deit_tiny() -> ModelWorkload {
        ModelWorkload::for_model(&ModelConfig::deit_tiny())
    }

    #[test]
    fn taylor_attention_is_much_faster_than_vanilla_on_the_same_hardware() {
        let accel = accel();
        let wl = deit_tiny();
        let taylor = accel.simulate_model_with_engine(&wl, AttentionEngine::Taylor);
        let vanilla = accel.simulate_model_with_engine(&wl, AttentionEngine::VanillaSoftmax);
        assert!(vanilla.attention_cycles > 2 * taylor.attention_cycles);
        assert!(vanilla.attention_energy_j > taylor.attention_energy_j);
    }

    #[test]
    fn pipeline_improves_end_to_end_latency() {
        let wl = deit_tiny();
        let pipelined = accel().simulate_model(&wl);
        let sequential = accel()
            .with_pipeline(PipelineMode::Sequential)
            .simulate_model(&wl);
        assert!(pipelined.attention_cycles < sequential.attention_cycles);
        assert_eq!(pipelined.linear_cycles, sequential.linear_cycles);
    }

    #[test]
    fn down_forward_dataflow_beats_g_stationary_on_total_energy() {
        // The Table V result: our dataflow trades a little extra data-access energy for a
        // larger saving in systolic-array energy.
        let wl = ModelWorkload::for_model(&ModelConfig::deit_base());
        let ours = accel().simulate_model(&wl);
        let gs = accel()
            .with_dataflow(Dataflow::GStationary)
            .simulate_model(&wl);
        assert!(ours.attention_energy.data_access_j > gs.attention_energy.data_access_j);
        assert!(ours.attention_energy.systolic_array_j < gs.attention_energy.systolic_array_j);
        assert!(ours.attention_energy_j < gs.attention_energy_j);
    }

    #[test]
    fn deit_tiny_attention_latency_is_in_the_expected_range() {
        // 12 layers of a linear attention on a 64x64 array at 500 MHz should land in the
        // tens-to-hundreds of microseconds, orders of magnitude below the edge GPU's
        // milliseconds (Table II).
        let report = accel().simulate_model(&deit_tiny());
        assert!(
            report.attention_latency_s > 1e-5,
            "{}",
            report.attention_latency_s
        );
        assert!(
            report.attention_latency_s < 1e-3,
            "{}",
            report.attention_latency_s
        );
        assert!(report.total_latency_s > report.attention_latency_s);
        assert_eq!(
            report.total_cycles,
            report.attention_cycles + report.linear_cycles
        );
    }

    #[test]
    fn attention_energy_breakdown_matches_table5_shape() {
        // Systolic-array energy dominates the attention energy; data access and the other
        // processors are secondary (Table V).
        let report = accel().simulate_model(&ModelWorkload::for_model(&ModelConfig::deit_base()));
        let e = report.attention_energy;
        assert!(e.systolic_array_j > e.data_access_j);
        assert!(e.systolic_array_j > e.other_processors_j);
        // DeiT-Base Taylor attention total is ~200 uJ in Table V; allow a generous band.
        assert!(
            e.total_j() > 2e-5 && e.total_j() < 2e-3,
            "total {}",
            e.total_j()
        );
    }

    #[test]
    fn scaling_up_the_accelerator_reduces_latency() {
        let wl = deit_tiny();
        let base = accel().simulate_model(&wl);
        let scaled =
            VitalityAccelerator::new(AcceleratorConfig::paper().scaled(8.0)).simulate_model(&wl);
        assert!(scaled.total_cycles < base.total_cycles);
    }

    #[test]
    fn bigger_models_cost_more() {
        let tiny = accel().simulate_model(&deit_tiny());
        let base = accel().simulate_model(&ModelWorkload::for_model(&ModelConfig::deit_base()));
        assert!(base.total_latency_s > tiny.total_latency_s);
        assert!(base.total_energy_j > tiny.total_energy_j);
    }

    #[test]
    fn accessors_expose_configuration() {
        let a = accel();
        assert_eq!(a.dataflow(), Dataflow::DownForwardAccumulation);
        assert_eq!(a.pipeline_mode(), PipelineMode::Pipelined);
        assert_eq!(a.config().sa_general_rows, 64);
    }
}
