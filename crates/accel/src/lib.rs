//! Cycle-level simulator of the ViTALiTy accelerator (Section IV of the paper).
//!
//! The accelerator is a chunk-based design: a large systolic array for the matrix
//! multiplications of the linear Taylor attention (and the surrounding projection / MLP
//! layers), plus small dedicated pre/post-processors — an accumulator array for
//! column-wise summation, an adder array for element-wise additions and a reconfigurable
//! divider array for the single-divisor and multiple-divisor division patterns. A
//! four-level memory hierarchy (DRAM, SRAM, NoC, registers) feeds the chunks, an
//! intra-layer pipeline overlaps the pre/post-processing with the matrix multiplications
//! (Fig. 7), and the systolic array uses the input-stationary *down-forward accumulation*
//! dataflow (Fig. 8/9) rather than the G-stationary alternative.
//!
//! The crate models, per layer and per model:
//!
//! * cycle counts of every chunk for every step of Algorithm 1 ([`processors`],
//!   [`systolic`]),
//! * the pipelined and non-pipelined layer latency ([`pipeline`]),
//! * memory traffic per hierarchy level and per dataflow ([`dataflow`]),
//! * energy from the synthesized unit powers of Table III ([`energy`]),
//! * end-to-end model latency/energy ([`simulator`]).
//!
//! # Example
//!
//! ```
//! use vitality_accel::{AcceleratorConfig, VitalityAccelerator};
//! use vitality_vit::{ModelConfig, ModelWorkload};
//!
//! let accel = VitalityAccelerator::new(AcceleratorConfig::paper());
//! let workload = ModelWorkload::for_model(&ModelConfig::deit_tiny());
//! let report = accel.simulate_model(&workload);
//! assert!(report.total_latency_s > 0.0);
//! assert!(report.total_energy_j > 0.0);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod dataflow;
pub mod energy;
pub mod pipeline;
pub mod processors;
pub mod simulator;
pub mod systolic;

pub use config::{AcceleratorConfig, ComponentSpec};
pub use dataflow::{Dataflow, MemoryTraffic};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use pipeline::{LayerSchedule, PipelineMode};
pub use processors::{AccumulatorArray, AdderArray, DividerArray, DividerMode};
pub use simulator::{AttentionEngine, SimulationReport, VitalityAccelerator};
pub use systolic::{SystolicArray, SystolicDataflow};
