//! Energy model built from the synthesized component powers of Table III plus per-access
//! memory energies.

use serde::{Deserialize, Serialize};

use crate::config::AcceleratorConfig;
use crate::dataflow::MemoryTraffic;

/// Per-access energies (in joules per 16-bit word) of the four memory levels, typical of a
/// 28 nm process. DRAM energy dominates by two to three orders of magnitude, which is why
/// the accelerator keeps the working set in the 50 KB operand buffers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEnergies {
    /// Off-chip DRAM access energy per word.
    pub dram_j: f64,
    /// On-chip SRAM access energy per word.
    pub sram_j: f64,
    /// NoC transfer energy per word.
    pub noc_j: f64,
    /// Register-file access energy per word.
    pub reg_j: f64,
}

impl Default for MemoryEnergies {
    fn default() -> Self {
        Self {
            dram_j: 320.0e-12,
            sram_j: 2.4e-12,
            noc_j: 0.8e-12,
            reg_j: 0.06e-12,
        }
    }
}

/// Energy breakdown in the shape of Table V.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy of memory accesses (all levels).
    pub data_access_j: f64,
    /// Energy of the pre/post-processors (accumulator + adder + divider arrays).
    pub other_processors_j: f64,
    /// Energy of the systolic array (SA-General + SA-Diag).
    pub systolic_array_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.data_access_j + self.other_processors_j + self.systolic_array_j
    }

    /// Element-wise sum.
    pub fn combine(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            data_access_j: self.data_access_j + other.data_access_j,
            other_processors_j: self.other_processors_j + other.other_processors_j,
            systolic_array_j: self.systolic_array_j + other.systolic_array_j,
        }
    }

    /// Scales every term (e.g. by a layer count).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            data_access_j: self.data_access_j * factor,
            other_processors_j: self.other_processors_j * factor,
            systolic_array_j: self.systolic_array_j * factor,
        }
    }
}

/// Converts component busy-cycles and memory traffic into energy, using the synthesized
/// powers of Table III (`energy = power x busy_time`) and per-access memory energies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    frequency_hz: f64,
    systolic_power_w: f64,
    sa_diag_power_w: f64,
    accumulator_power_w: f64,
    adder_power_w: f64,
    divider_power_w: f64,
    memory_static_power_w: f64,
    memory_energies: MemoryEnergies,
}

impl EnergyModel {
    /// Builds the energy model from an accelerator configuration.
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        let find = |name: &str| {
            config
                .component_table()
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.power_mw * 1e-3)
                .unwrap_or(0.0)
                * config.scale_factor
        };
        Self {
            frequency_hz: config.frequency_hz,
            systolic_power_w: find("SA-General"),
            sa_diag_power_w: find("SA-Diag"),
            accumulator_power_w: find("Accumulator Array"),
            adder_power_w: find("Adder Array"),
            divider_power_w: find("Divider Array"),
            memory_static_power_w: find("Memory [Q, K, V, O]"),
            memory_energies: MemoryEnergies::default(),
        }
    }

    /// Clock period in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.frequency_hz
    }

    /// Energy of the systolic array busy for the given cycles (SA-General and SA-Diag),
    /// scaled by the dataflow's PE-design overhead factor.
    pub fn systolic_energy_j(
        &self,
        sa_general_cycles: u64,
        sa_diag_cycles: u64,
        pe_overhead: f64,
    ) -> f64 {
        let t = self.cycle_time_s();
        (self.systolic_power_w * sa_general_cycles as f64 * t
            + self.sa_diag_power_w * sa_diag_cycles as f64 * t)
            * pe_overhead
    }

    /// Energy of the pre/post-processors busy for the given cycles.
    pub fn processor_energy_j(
        &self,
        accumulator_cycles: u64,
        adder_cycles: u64,
        divider_cycles: u64,
    ) -> f64 {
        let t = self.cycle_time_s();
        self.accumulator_power_w * accumulator_cycles as f64 * t
            + self.adder_power_w * adder_cycles as f64 * t
            + self.divider_power_w * divider_cycles as f64 * t
    }

    /// Energy of the given memory traffic plus the static buffer power over `total_cycles`.
    pub fn memory_energy_j(&self, traffic: &MemoryTraffic, total_cycles: u64) -> f64 {
        let e = &self.memory_energies;
        traffic.dram as f64 * e.dram_j
            + traffic.sram as f64 * e.sram_j
            + traffic.noc as f64 * e.noc_j
            + traffic.reg as f64 * e.reg_j
            + self.memory_static_power_w * total_cycles as f64 * self.cycle_time_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_model_reads_table3_powers() {
        let model = EnergyModel::from_config(&AcceleratorConfig::paper());
        assert!((model.systolic_power_w - 1.277).abs() < 1e-6);
        assert!((model.cycle_time_s() - 2e-9).abs() < 1e-15);
    }

    #[test]
    fn systolic_energy_matches_table5_order_of_magnitude() {
        // DeiT-Base Taylor attention: ~234 M MACs. At 4096+64 PEs and realistic utilisation
        // the busy time is ~70k-150k cycles, and Table V reports 191 uJ for the systolic
        // array under the down-forward dataflow.
        let model = EnergyModel::from_config(&AcceleratorConfig::paper());
        let busy_cycles = 100_000;
        let e = model.systolic_energy_j(busy_cycles, busy_cycles / 10, 1.0);
        assert!(e > 50e-6 && e < 500e-6, "energy {e}");
    }

    #[test]
    fn dataflow_overhead_scales_systolic_energy() {
        let model = EnergyModel::from_config(&AcceleratorConfig::paper());
        let base = model.systolic_energy_j(1000, 100, 1.0);
        let overhead = model.systolic_energy_j(1000, 100, 1.13);
        assert!((overhead / base - 1.13).abs() < 1e-9);
    }

    #[test]
    fn dram_accesses_dominate_memory_energy() {
        let model = EnergyModel::from_config(&AcceleratorConfig::paper());
        let dram_heavy = MemoryTraffic {
            dram: 1000,
            sram: 0,
            noc: 0,
            reg: 0,
        };
        let sram_heavy = MemoryTraffic {
            dram: 0,
            sram: 1000,
            noc: 0,
            reg: 0,
        };
        assert!(
            model.memory_energy_j(&dram_heavy, 0) > 50.0 * model.memory_energy_j(&sram_heavy, 0)
        );
    }

    #[test]
    fn breakdown_combines_and_scales() {
        let a = EnergyBreakdown {
            data_access_j: 1.0,
            other_processors_j: 2.0,
            systolic_array_j: 3.0,
        };
        assert_eq!(a.total_j(), 6.0);
        assert_eq!(a.combine(&a).total_j(), 12.0);
        assert_eq!(a.scaled(0.5).total_j(), 3.0);
    }

    #[test]
    fn scaled_configuration_scales_power() {
        let base = EnergyModel::from_config(&AcceleratorConfig::paper());
        let scaled = EnergyModel::from_config(&AcceleratorConfig::paper().scaled(2.0));
        let e_base = base.systolic_energy_j(1000, 0, 1.0);
        let e_scaled = scaled.systolic_energy_j(1000, 0, 1.0);
        assert!((e_scaled / e_base - 2.0).abs() < 1e-9);
    }
}
