//! Dataflow choices for the consecutive matrix multiplications of the Taylor attention and
//! their memory-traffic consequences (Section IV-D, Fig. 9, Table V).

use serde::{Deserialize, Serialize};

/// How the chain `G = \hat{K}^T V`, `Q G`, `Q \hat{k}_{sum}^T` is mapped onto the systolic
/// array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataflow {
    /// Keep `G` stationary inside the PEs between the two multiplications (output
    /// stationary for `\hat{K}^T V`, then input stationary for `Q G`). Minimises `G`
    /// traffic but requires PEs that support both accumulation modes.
    GStationary,
    /// Use input-stationary down-forward accumulation for every multiplication (the
    /// ViTALiTy choice): simpler PEs, but `G` is written to and read back from SRAM.
    DownForwardAccumulation,
}

impl Dataflow {
    /// Relative per-MAC energy overhead of the PE design this dataflow requires.
    ///
    /// G-stationary PEs must be reconfigurable between inner-PE accumulation and
    /// down-forward accumulation, which costs extra multiplexing on every operation; the
    /// overhead factor is calibrated to the Table V systolic-array energy ratio.
    pub fn pe_energy_overhead(&self) -> f64 {
        match self {
            Dataflow::GStationary => 1.13,
            Dataflow::DownForwardAccumulation => 1.0,
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Dataflow::GStationary => "G-stationary",
            Dataflow::DownForwardAccumulation => "down-forward accumulation",
        }
    }
}

/// Number of 16-bit word accesses per memory-hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    /// Off-chip DRAM accesses (weights and input activations fetched once per layer).
    pub dram: u64,
    /// On-chip SRAM buffer accesses.
    pub sram: u64,
    /// Network-on-chip transfers between SRAM and the chunks.
    pub noc: u64,
    /// Register-file accesses inside the PEs and processors.
    pub reg: u64,
}

impl MemoryTraffic {
    /// Element-wise sum of two traffic counts.
    pub fn combine(&self, other: &MemoryTraffic) -> MemoryTraffic {
        MemoryTraffic {
            dram: self.dram + other.dram,
            sram: self.sram + other.sram,
            noc: self.noc + other.noc,
            reg: self.reg + other.reg,
        }
    }

    /// Scales every count by an integer factor (e.g. heads × layers).
    pub fn scaled(&self, factor: u64) -> MemoryTraffic {
        MemoryTraffic {
            dram: self.dram * factor,
            sram: self.sram * factor,
            noc: self.noc * factor,
            reg: self.reg * factor,
        }
    }

    /// Total accesses across all levels.
    pub fn total(&self) -> u64 {
        self.dram + self.sram + self.noc + self.reg
    }
}

/// Memory traffic of one head of the Taylor attention (`n` tokens, `d` per-head features)
/// under the given dataflow.
///
/// Counts are in 16-bit words. Both dataflows read `Q`, `K`, `V` once from SRAM and write
/// the score `Z` back; the difference is the handling of the global context matrix `G`
/// (kept in the PEs versus spilled to SRAM) and the extra `Q` streaming pass the
/// G-stationary layout avoids.
pub fn taylor_head_traffic(n: usize, d: usize, dataflow: Dataflow) -> MemoryTraffic {
    let n = n as u64;
    let d = d as u64;
    // Common traffic: operand reads, score write, small vectors.
    let operand_reads = 3 * n * d; // Q, K, V
    let score_write = n * d;
    let vectors = 4 * d + 2 * n; // k_bar, k_sum, v_sum, t_D and the numerator broadcast
    let common_sram = operand_reads + score_write + vectors;
    // The moving operands also traverse the NoC once and touch PE registers ~2x per MAC.
    let macs = 2 * n * d * d + n * d;
    match dataflow {
        Dataflow::GStationary => MemoryTraffic {
            dram: 0,
            sram: common_sram,
            noc: operand_reads + score_write,
            reg: 2 * macs,
        },
        Dataflow::DownForwardAccumulation => {
            // G (d x d) is written to SRAM after K^T V and read back for Q G, and Q is
            // streamed from SRAM a second time for the SA-Diag product.
            let g_spill = 2 * d * d;
            let q_restream = n * d;
            MemoryTraffic {
                dram: 0,
                sram: common_sram + g_spill + q_restream,
                noc: operand_reads + score_write + g_spill + q_restream,
                reg: 2 * macs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_forward_has_more_sram_traffic_than_g_stationary() {
        let gs = taylor_head_traffic(197, 64, Dataflow::GStationary);
        let df = taylor_head_traffic(197, 64, Dataflow::DownForwardAccumulation);
        assert!(df.sram > gs.sram);
        assert!(df.noc > gs.noc);
        assert_eq!(
            df.reg, gs.reg,
            "PE register traffic is dataflow independent"
        );
        // The overhead is the G spill plus the Q re-stream.
        assert_eq!(df.sram - gs.sram, 2 * 64 * 64 + 197 * 64);
    }

    #[test]
    fn g_stationary_pays_a_pe_energy_overhead_instead() {
        assert!(Dataflow::GStationary.pe_energy_overhead() > 1.0);
        assert_eq!(Dataflow::DownForwardAccumulation.pe_energy_overhead(), 1.0);
        assert_ne!(
            Dataflow::GStationary.label(),
            Dataflow::DownForwardAccumulation.label()
        );
    }

    #[test]
    fn traffic_combines_and_scales() {
        let a = taylor_head_traffic(32, 16, Dataflow::DownForwardAccumulation);
        let doubled = a.combine(&a);
        assert_eq!(doubled.total(), a.total() * 2);
        assert_eq!(a.scaled(3).sram, a.sram * 3);
        assert_eq!(MemoryTraffic::default().total(), 0);
    }

    #[test]
    fn traffic_grows_linearly_with_tokens() {
        let small = taylor_head_traffic(100, 64, Dataflow::DownForwardAccumulation);
        let large = taylor_head_traffic(200, 64, Dataflow::DownForwardAccumulation);
        // Register traffic (per-MAC) dominates and is linear in n.
        assert!(large.total() < small.total() * 2 + 1000);
        assert!(large.total() > small.total());
    }
}
