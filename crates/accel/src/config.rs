//! Accelerator configuration (Table III of the paper).

use serde::{Deserialize, Serialize};

/// One hardware component with its synthesized area and power (28 nm, 500 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Component name as it appears in Table III.
    pub name: &'static str,
    /// Descriptive parameter string (array geometry and bit width).
    pub parameter: &'static str,
    /// Synthesized area in mm².
    pub area_mm2: f64,
    /// Synthesized power in mW.
    pub power_mw: f64,
}

/// Full configuration of the ViTALiTy accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Rows of the SA-General systolic sub-array.
    pub sa_general_rows: usize,
    /// Columns of the SA-General systolic sub-array.
    pub sa_general_cols: usize,
    /// Rows of the SA-Diag systolic sub-array (one PE column in the paper).
    pub sa_diag_rows: usize,
    /// Columns of the SA-Diag systolic sub-array.
    pub sa_diag_cols: usize,
    /// Lanes of the accumulator array.
    pub accumulator_lanes: usize,
    /// Lanes of the adder array.
    pub adder_lanes: usize,
    /// Lanes of the divider array.
    pub divider_lanes: usize,
    /// On-chip SRAM per operand buffer (Q, K, V, O) in bytes.
    pub sram_bytes_per_buffer: usize,
    /// Arithmetic bit width.
    pub bit_width: usize,
    /// Scale factor applied to the whole design when matching a larger platform's peak
    /// throughput (the paper scales the accelerator up for GPU/CPU comparisons).
    pub scale_factor: f64,
}

impl AcceleratorConfig {
    /// The configuration synthesized in the paper (Table III).
    pub fn paper() -> Self {
        Self {
            frequency_hz: 500e6,
            sa_general_rows: 64,
            sa_general_cols: 64,
            sa_diag_rows: 64,
            sa_diag_cols: 1,
            accumulator_lanes: 64,
            adder_lanes: 64,
            divider_lanes: 64,
            sram_bytes_per_buffer: 50 * 1024,
            bit_width: 16,
            scale_factor: 1.0,
        }
    }

    /// A copy of the configuration scaled up by `factor` (peak-throughput matching against
    /// general-purpose platforms, following DOTA's methodology as the paper does).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            scale_factor: self.scale_factor * factor,
            ..self.clone()
        }
    }

    /// Peak multiply–accumulate throughput in MAC/s (both systolic sub-arrays).
    pub fn peak_macs_per_second(&self) -> f64 {
        let pes = (self.sa_general_rows * self.sa_general_cols
            + self.sa_diag_rows * self.sa_diag_cols) as f64;
        pes * self.frequency_hz * self.scale_factor
    }

    /// Table III component breakdown for the ViTALiTy accelerator.
    pub fn component_table(&self) -> Vec<ComponentSpec> {
        vec![
            ComponentSpec {
                name: "Accumulator Array",
                parameter: "64 x 1, 16-bit",
                area_mm2: 0.209,
                power_mw: 92.83,
            },
            ComponentSpec {
                name: "Adder Array",
                parameter: "64 x 1, 16-bit",
                area_mm2: 0.012,
                power_mw: 6.34,
            },
            ComponentSpec {
                name: "Divider Array",
                parameter: "64 x 1, 16-bit",
                area_mm2: 0.562,
                power_mw: 46.26,
            },
            ComponentSpec {
                name: "SA-General",
                parameter: "64 x 64, 16-bit",
                area_mm2: 3.595,
                power_mw: 1277.0,
            },
            ComponentSpec {
                name: "SA-Diag",
                parameter: "64 x 1, 16-bit",
                area_mm2: 0.053,
                power_mw: 15.18,
            },
            ComponentSpec {
                name: "Memory [Q, K, V, O]",
                parameter: "50 KB x 4",
                area_mm2: 0.792,
                power_mw: 22.9,
            },
        ]
    }

    /// Total synthesized area in mm² (Table III reports 5.223 mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.component_table().iter().map(|c| c.area_mm2).sum()
    }

    /// Total synthesized power in mW (Table III reports 1460 mW).
    pub fn total_power_mw(&self) -> f64 {
        self.component_table().iter().map(|c| c.power_mw).sum()
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_table3_totals() {
        let cfg = AcceleratorConfig::paper();
        assert!(
            (cfg.total_area_mm2() - 5.223).abs() < 0.01,
            "area {}",
            cfg.total_area_mm2()
        );
        assert!(
            (cfg.total_power_mw() - 1460.0).abs() < 5.0,
            "power {}",
            cfg.total_power_mw()
        );
        assert_eq!(cfg.component_table().len(), 6);
        assert_eq!(cfg.sa_general_rows * cfg.sa_general_cols, 4096);
    }

    #[test]
    fn peak_throughput_scales_with_the_scale_factor() {
        let base = AcceleratorConfig::paper();
        let scaled = base.scaled(4.0);
        assert!((scaled.peak_macs_per_second() / base.peak_macs_per_second() - 4.0).abs() < 1e-9);
        assert_eq!(scaled.sa_general_rows, base.sa_general_rows);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaling_rejects_non_positive_factors() {
        let _ = AcceleratorConfig::paper().scaled(0.0);
    }

    #[test]
    fn default_is_the_paper_configuration() {
        assert_eq!(AcceleratorConfig::default(), AcceleratorConfig::paper());
    }
}
