//! Cycle model of the systolic array (SA-General + SA-Diag).

use serde::{Deserialize, Serialize};

/// Dataflow of a single dense matrix multiplication on the systolic array (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystolicDataflow {
    /// Input stationary with down-forward accumulation of partial sums (the ViTALiTy
    /// choice): the stationary operand is loaded into the PEs, the moving operand streams
    /// through row by row, and partial sums ripple down to the bottom-most PEs.
    InputStationary,
    /// Output stationary with inner-PE accumulation: each PE owns one output element and
    /// accumulates it locally, which requires a reconfigurable accumulation path when the
    /// output must immediately serve as the next multiplication's stationary input.
    OutputStationary,
}

/// A weight/input-stationary systolic array of `rows x cols` processing elements.
///
/// The cycle model is the standard tile-based one: the stationary operand is partitioned
/// into `rows x cols` tiles; for each tile the array pays a load phase (`rows` cycles),
/// then streams the moving operand (`m` cycles), then drains the last partial sums
/// (`rows + cols` cycles for down-forward accumulation, `0` extra for output stationary
/// since results stay in place but must then be flushed, costing `cols` cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array of `rows x cols` PEs.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "systolic array dimensions must be positive"
        );
        Self { rows, cols }
    }

    /// Number of PE rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of PEs.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Cycles to compute an `m x k` by `k x n` matrix multiplication.
    ///
    /// `k` maps to the PE rows (the reduction dimension held stationary), `n` maps to the
    /// PE columns, and `m` streams through.
    pub fn matmul_cycles(&self, m: usize, k: usize, n: usize, dataflow: SystolicDataflow) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let row_tiles = k.div_ceil(self.rows) as u64;
        let col_tiles = n.div_ceil(self.cols) as u64;
        let stream = m as u64;
        let per_tile = match dataflow {
            // Load the stationary tile (rows cycles), stream m rows, drain partial sums
            // down the array and out (rows + cols cycles).
            SystolicDataflow::InputStationary => {
                self.rows as u64 + stream + self.rows as u64 + self.cols as u64
            }
            // Stream m rows while both operands skew in; results accumulate in place, so
            // there is no down-forward drain, only the skew-in latency.
            SystolicDataflow::OutputStationary => stream + self.rows as u64 + self.cols as u64,
        };
        row_tiles * col_tiles * per_tile
    }

    /// Cycles for the same multiplication assuming ideal utilisation (a lower bound used
    /// for sanity checks and utilisation reporting).
    pub fn ideal_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        ((m * k * n) as u64).div_ceil(self.pes() as u64)
    }

    /// Utilisation of the array for a multiplication, in `(0, 1]`.
    pub fn utilisation(&self, m: usize, k: usize, n: usize, dataflow: SystolicDataflow) -> f64 {
        let actual = self.matmul_cycles(m, k, n, dataflow);
        if actual == 0 {
            return 1.0;
        }
        self.ideal_cycles(m, k, n) as f64 / actual as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_square_matmul_approaches_ideal_cycles() {
        let sa = SystolicArray::new(64, 64);
        let cycles = sa.matmul_cycles(512, 512, 512, SystolicDataflow::InputStationary);
        let ideal = sa.ideal_cycles(512, 512, 512);
        assert!(cycles >= ideal);
        // For a big multiplication the overhead should stay within ~2.5x of ideal.
        assert!(
            (cycles as f64) < ideal as f64 * 2.5,
            "cycles {cycles} ideal {ideal}"
        );
    }

    #[test]
    fn small_matrices_are_dominated_by_fill_and_drain() {
        let sa = SystolicArray::new(64, 64);
        let util = sa.utilisation(16, 16, 16, SystolicDataflow::InputStationary);
        assert!(util < 0.1, "small matmul utilisation {util}");
        let util_large = sa.utilisation(1024, 64, 64, SystolicDataflow::InputStationary);
        assert!(util_large > 0.5, "large matmul utilisation {util_large}");
    }

    #[test]
    fn cycles_scale_with_tile_counts() {
        let sa = SystolicArray::new(64, 64);
        let one = sa.matmul_cycles(100, 64, 64, SystolicDataflow::InputStationary);
        let four = sa.matmul_cycles(100, 128, 128, SystolicDataflow::InputStationary);
        assert_eq!(four, one * 4);
    }

    #[test]
    fn zero_sized_work_costs_nothing() {
        let sa = SystolicArray::new(8, 8);
        assert_eq!(
            sa.matmul_cycles(0, 10, 10, SystolicDataflow::InputStationary),
            0
        );
        assert_eq!(
            sa.matmul_cycles(10, 0, 10, SystolicDataflow::OutputStationary),
            0
        );
        assert_eq!(
            sa.utilisation(0, 0, 0, SystolicDataflow::InputStationary),
            1.0
        );
    }

    #[test]
    fn sa_diag_models_the_single_column_geometry() {
        // SA-Diag is a 64 x 1 strip computing Q k_sum^T (an n x d by d x 1 product).
        let diag = SystolicArray::new(64, 1);
        assert_eq!(diag.pes(), 64);
        let cycles = diag.matmul_cycles(197, 64, 1, SystolicDataflow::InputStationary);
        assert!(cycles > 197);
        // It is far cheaper than running the same thing through a full 64x64 tile.
        let general = SystolicArray::new(64, 64);
        assert!(cycles <= general.matmul_cycles(197, 64, 64, SystolicDataflow::InputStationary));
    }

    #[test]
    fn dataflows_differ_in_per_tile_overhead() {
        let sa = SystolicArray::new(64, 64);
        let input = sa.matmul_cycles(64, 64, 64, SystolicDataflow::InputStationary);
        let output = sa.matmul_cycles(64, 64, 64, SystolicDataflow::OutputStationary);
        assert_ne!(input, output);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dimensions() {
        let _ = SystolicArray::new(0, 4);
    }
}
