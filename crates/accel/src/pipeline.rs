//! Intra-layer pipeline model (Section IV-C, Fig. 7).

use serde::{Deserialize, Serialize};

use crate::config::AcceleratorConfig;
use crate::processors::{AccumulatorArray, AdderArray, DividerArray, DividerMode};
use crate::systolic::{SystolicArray, SystolicDataflow};

/// Whether the intra-layer pipeline is enabled (the ablation knob of the paper's
/// throughput discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineMode {
    /// Chunks execute strictly one step after another (the GPU-like behaviour of Table II).
    Sequential,
    /// The pre/post-processing chunks overlap with the systolic array as in Fig. 7.
    Pipelined,
}

/// Busy cycles of every chunk for one Taylor-attention layer (all heads), plus the
/// resulting layer latency under both pipeline modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerSchedule {
    /// Accumulator-array busy cycles (Step 1 column sums, Step 3 column sums).
    pub accumulator_cycles: u64,
    /// Adder-array busy cycles (Step 1 subtraction, Step 4/5 additions).
    pub adder_cycles: u64,
    /// Divider-array busy cycles (Step 1 mean, Step 6 normalisation).
    pub divider_cycles: u64,
    /// SA-General busy cycles (`G = \hat{K}^T V` and `Q G`).
    pub sa_general_cycles: u64,
    /// SA-Diag busy cycles (`Q \hat{k}_{sum}^T`).
    pub sa_diag_cycles: u64,
    /// Layer latency with every step executed sequentially.
    pub sequential_cycles: u64,
    /// Layer latency with the intra-layer pipeline of Fig. 7.
    pub pipelined_cycles: u64,
}

impl LayerSchedule {
    /// Latency under the requested pipeline mode.
    pub fn latency_cycles(&self, mode: PipelineMode) -> u64 {
        match mode {
            PipelineMode::Sequential => self.sequential_cycles,
            PipelineMode::Pipelined => self.pipelined_cycles,
        }
    }

    /// Pre/post-processing share of the sequential latency, the quantity the paper says
    /// reaches ~50% on a GPU and motivates the pipeline.
    pub fn processing_overhead_fraction(&self) -> f64 {
        if self.sequential_cycles == 0 {
            return 0.0;
        }
        let processors = self.accumulator_cycles + self.adder_cycles + self.divider_cycles;
        processors as f64 / self.sequential_cycles as f64
    }

    /// Throughput gain of the pipeline over sequential execution.
    pub fn pipeline_speedup(&self) -> f64 {
        if self.pipelined_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.pipelined_cycles as f64
    }
}

/// Computes the per-chunk busy cycles and the layer latency of one Taylor-attention layer
/// with `heads` heads of `n` tokens by `d` per-head features.
///
/// Heads are processed back to back on each chunk; the systolic array is partitioned into
/// SA-General and SA-Diag so that `Q G` and `Q \hat{k}_{sum}^T` proceed in parallel.
pub fn taylor_layer_schedule(
    config: &AcceleratorConfig,
    n: usize,
    d: usize,
    heads: usize,
) -> LayerSchedule {
    let accumulator = AccumulatorArray::new(config.accumulator_lanes);
    let adder = AdderArray::new(config.adder_lanes);
    let divider = DividerArray::new(config.divider_lanes);
    let sa_general = SystolicArray::new(config.sa_general_rows, config.sa_general_cols);
    let sa_diag = SystolicArray::new(config.sa_diag_rows, config.sa_diag_cols);
    let h = heads as u64;

    // Step 1 + Step 3: three column-wise accumulations over the n x (d*heads) operand
    // (1_n^T K, then \hat{k}_{sum} and v_{sum}); the accumulator lanes pack heads side by
    // side along the feature dimension.
    let accumulator_cycles = 3 * accumulator.column_sum_cycles(n, d * heads);
    // Step 1 subtraction (n*d), Step 4 additions (n), Step 5 additions (n*d) per head.
    let adder_cycles = h
        * (adder.elementwise_cycles(n * d)
            + adder.elementwise_cycles(n)
            + adder.elementwise_cycles(n * d));
    // Step 1 single-divisor mean (d divisions), Step 6 row-wise normalisation (n*d).
    let divider_cycles = h
        * (divider.division_cycles(d, DividerMode::SingleDivisor)
            + divider.division_cycles(n * d, DividerMode::MultipleDivisors));
    // Step 2 (G = \hat{K}^T V: reduction over n, output d x d) and Step 5's Q G
    // (reduction over d, output n x d) on SA-General. Heads whose per-head dimension is
    // narrower than the PE columns are packed side by side across the array (LeViT's
    // 16-wide heads), so the array is not left mostly idle on hierarchical models.
    let heads_per_pass = (config.sa_general_cols / d.max(1)).clamp(1, heads.max(1));
    let passes = heads.div_ceil(heads_per_pass) as u64;
    let packed_cols = d * heads_per_pass;
    let sa_general_cycles = passes
        * (sa_general.matmul_cycles(d, n, packed_cols, SystolicDataflow::InputStationary)
            + sa_general.matmul_cycles(n, d, packed_cols, SystolicDataflow::InputStationary));
    // Step 4's Q \hat{k}_{sum}^T on SA-Diag (runs concurrently with Q G).
    let sa_diag_cycles = h * sa_diag.matmul_cycles(n, d, 1, SystolicDataflow::InputStationary);

    // Sequential latency: every chunk waits for the previous step; SA-Diag overlaps with
    // SA-General even without the pipeline because they are separate partitions fed by the
    // same broadcast of Q.
    let sequential_cycles =
        accumulator_cycles + adder_cycles + divider_cycles + sa_general_cycles.max(sa_diag_cycles);

    // Pipelined latency: the accumulator/adder/divider work overlaps with the systolic
    // array (mean-centred keys stream into SA-General as they are produced; the
    // numerator/denominator post-processing starts as soon as the first rows of Q G and
    // Q \hat{k}_{sum}^T emerge). The residual non-overlapped portion is the pipeline fill
    // (first column-sum pass) and drain (last row of divisions).
    let processor_cycles = accumulator_cycles + adder_cycles + divider_cycles;
    let fill = accumulator.column_sum_cycles(n, d);
    let drain = divider.division_cycles(d, DividerMode::MultipleDivisors);
    let pipelined_cycles =
        sa_general_cycles.max(sa_diag_cycles).max(processor_cycles) + fill + drain;

    LayerSchedule {
        accumulator_cycles,
        adder_cycles,
        divider_cycles,
        sa_general_cycles,
        sa_diag_cycles,
        sequential_cycles,
        pipelined_cycles: pipelined_cycles.min(sequential_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deit_tiny_layer() -> LayerSchedule {
        taylor_layer_schedule(&AcceleratorConfig::paper(), 197, 64, 3)
    }

    #[test]
    fn pipeline_reduces_layer_latency() {
        let s = deit_tiny_layer();
        assert!(s.pipelined_cycles < s.sequential_cycles);
        assert!(
            s.pipeline_speedup() > 1.2,
            "speedup {}",
            s.pipeline_speedup()
        );
        assert_eq!(
            s.latency_cycles(PipelineMode::Sequential),
            s.sequential_cycles
        );
        assert_eq!(
            s.latency_cycles(PipelineMode::Pipelined),
            s.pipelined_cycles
        );
    }

    #[test]
    fn pipelined_latency_is_at_least_the_busiest_chunk() {
        let s = deit_tiny_layer();
        let busiest = s
            .sa_general_cycles
            .max(s.sa_diag_cycles)
            .max(s.accumulator_cycles + s.adder_cycles + s.divider_cycles);
        assert!(s.pipelined_cycles >= busiest);
    }

    #[test]
    fn processing_overhead_is_substantial_without_the_pipeline() {
        // The paper observes the light pre/post-processing steps contribute ~50% of the
        // Taylor attention latency when executed sequentially on a GPU. On the dedicated
        // chunks the share is smaller but still significant for DeiT-like shapes.
        let s = deit_tiny_layer();
        let overhead = s.processing_overhead_fraction();
        assert!(overhead > 0.1 && overhead < 0.9, "overhead {overhead}");
    }

    #[test]
    fn sa_diag_is_much_cheaper_than_sa_general() {
        let s = deit_tiny_layer();
        assert!(s.sa_diag_cycles < s.sa_general_cycles);
    }

    #[test]
    fn cycles_scale_with_head_count() {
        let cfg = AcceleratorConfig::paper();
        let one = taylor_layer_schedule(&cfg, 197, 64, 1);
        let three = taylor_layer_schedule(&cfg, 197, 64, 3);
        assert_eq!(three.sa_general_cycles, one.sa_general_cycles * 3);
        assert_eq!(three.accumulator_cycles, one.accumulator_cycles * 3);
    }

    #[test]
    fn degenerate_layer_has_zero_latency_components() {
        let s = taylor_layer_schedule(&AcceleratorConfig::paper(), 0, 64, 1);
        assert_eq!(s.sa_general_cycles, 0);
        assert_eq!(s.accumulator_cycles, 0);
        assert!(s.pipelined_cycles <= s.sequential_cycles);
        let empty = LayerSchedule::default();
        assert_eq!(empty.pipeline_speedup(), 1.0);
        assert_eq!(empty.processing_overhead_fraction(), 0.0);
    }
}
