//! Operation-count accounting (Table I and Eqs. 1–3 of the paper).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Scalar operation counts of an attention computation.
///
/// The paper compares mechanisms by the number of multiplications, additions, divisions
/// and exponentiations (Table I), because the relative cost of those operator classes is
/// what the dedicated accelerator exploits: the Taylor attention trades expensive
/// multiplications and exponentiations for cheap column accumulations and element-wise
/// additions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Scalar multiplications.
    pub mul: u64,
    /// Scalar additions/subtractions.
    pub add: u64,
    /// Scalar divisions.
    pub div: u64,
    /// Scalar exponentiations (`exp`), only present in softmax-based attentions.
    pub exp: u64,
}

impl OpCounts {
    /// A zero count.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Creates a count from its four components.
    pub fn new(mul: u64, add: u64, div: u64, exp: u64) -> Self {
        Self { mul, add, div, exp }
    }

    /// Total scalar operations of any kind.
    pub fn total(&self) -> u64 {
        self.mul + self.add + self.div + self.exp
    }

    /// Floating-point operations (multiplications + additions + divisions + exps), the
    /// quantity reported in the paper's Table IV "FLOPs (attention)" column.
    pub fn flops(&self) -> u64 {
        self.total()
    }

    /// Counts expressed in millions (the unit of Table I).
    pub fn in_millions(&self) -> (f64, f64, f64, f64) {
        (
            self.mul as f64 / 1e6,
            self.add as f64 / 1e6,
            self.div as f64 / 1e6,
            self.exp as f64 / 1e6,
        )
    }

    /// Ratio of another mechanism's counts to this one, per operator class
    /// (`other / self`); zero denominators yield zero ratios.
    pub fn ratio_from(&self, other: &Self) -> OpRatios {
        let ratio = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        OpRatios {
            mul: ratio(other.mul, self.mul),
            add: ratio(other.add, self.add),
            div: ratio(other.div, self.div),
            exp: ratio(other.exp, self.exp),
        }
    }

    /// Scales every count by an integer factor (e.g. heads × layers).
    pub fn scaled(&self, factor: u64) -> Self {
        Self {
            mul: self.mul * factor,
            add: self.add * factor,
            div: self.div * factor,
            exp: self.exp * factor,
        }
    }
}

/// Per-operator-class ratios between two [`OpCounts`] values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpRatios {
    /// Multiplication ratio.
    pub mul: f64,
    /// Addition ratio.
    pub add: f64,
    /// Division ratio.
    pub div: f64,
    /// Exponentiation ratio.
    pub exp: f64,
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            div: self.div + rhs.div,
            exp: self.exp + rhs.exp,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for OpCounts {
    type Output = OpCounts;

    fn mul(self, rhs: u64) -> OpCounts {
        self.scaled(rhs)
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::zero(), |acc, x| acc + x)
    }
}

/// Operation counts of one head of the **vanilla softmax attention** over `n` tokens with
/// feature dimension `d` (the BASELINE column of Table I).
///
/// * multiplications: `2 n² d` (for `Q K^T` and `S V`),
/// * additions: `2 n² d + n²` (dot-product accumulations plus the softmax denominator sums),
/// * divisions: `n²` (softmax normalisation),
/// * exponentiations: `n²`.
pub fn vanilla_softmax_ops(n: usize, d: usize) -> OpCounts {
    let (n, d) = (n as u64, d as u64);
    OpCounts {
        mul: 2 * n * n * d,
        add: 2 * n * n * d + n * n,
        div: n * n,
        exp: n * n,
    }
}

/// Operation counts of one head of the **ViTALiTy Taylor attention** (Algorithm 1).
///
/// * multiplications: `2 n d² + n d` (`G = \hat{K}^T V`, `Q G` and `Q \hat{k}_{sum}^T`),
/// * additions: `(2d + 7) n d` (the two big products plus the pre/post-processing steps
///   1 and 3–5 of Algorithm 1),
/// * divisions: `n d + d` (Step 1's mean and Step 6's row-wise normalisation),
/// * exponentiations: none.
pub fn taylor_attention_ops(n: usize, d: usize) -> OpCounts {
    let (n, d) = (n as u64, d as u64);
    OpCounts {
        mul: 2 * n * d * d + n * d,
        add: (2 * d + 7) * n * d,
        div: n * d + d,
        exp: 0,
    }
}

/// The paper's Eq. (1): theoretical multiplication-count ratio between the vanilla softmax
/// attention and the Taylor attention, `R_mul = 2n / (2d + 1) ≈ n / d`.
pub fn theoretical_mul_ratio(n: usize, d: usize) -> f64 {
    2.0 * n as f64 / (2.0 * d as f64 + 1.0)
}

/// The paper's Eq. (2): theoretical addition-count ratio, `R_add = (2d+1) n / ((2d+7) d)`.
pub fn theoretical_add_ratio(n: usize, d: usize) -> f64 {
    ((2 * d + 1) * n) as f64 / ((2 * d + 7) * d) as f64
}

/// The paper's Eq. (3): theoretical division-count ratio, `R_div = n² / ((n+1) d)`.
pub fn theoretical_div_ratio(n: usize, d: usize) -> f64 {
    (n * n) as f64 / ((n + 1) * d) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_scaling() {
        let a = OpCounts::new(1, 2, 3, 4);
        let b = OpCounts::new(10, 20, 30, 40);
        assert_eq!((a + b).total(), 110);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(a.scaled(3), a * 3);
        assert_eq!(vec![a, b].into_iter().sum::<OpCounts>(), a + b);
        assert_eq!(a.flops(), a.total());
        let (m, ad, dv, ex) = b.in_millions();
        assert!(m < 1.0 && ad < 1.0 && dv < 1.0 && ex < 1.0);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let taylor = OpCounts::new(100, 100, 10, 0);
        let vanilla = OpCounts::new(300, 310, 30, 30);
        let r = taylor.ratio_from(&vanilla);
        assert!((r.mul - 3.0).abs() < 1e-9);
        assert_eq!(r.exp, 0.0);
    }

    #[test]
    fn vanilla_counts_follow_quadratic_scaling() {
        let small = vanilla_softmax_ops(10, 8);
        let large = vanilla_softmax_ops(20, 8);
        // n doubles => n² terms quadruple.
        assert_eq!(large.mul, small.mul * 4);
        assert_eq!(large.exp, small.exp * 4);
    }

    #[test]
    fn taylor_counts_follow_linear_scaling_and_have_no_exp() {
        let small = taylor_attention_ops(10, 8);
        let large = taylor_attention_ops(20, 8);
        assert_eq!(large.mul, small.mul * 2);
        assert_eq!(large.add, small.add * 2);
        assert_eq!(small.exp, 0);
    }

    #[test]
    fn empirical_ratio_approaches_n_over_d() {
        // For DeiT-Tiny-like dimensions (n = 197, d = 64) the paper reports ~3.1x fewer
        // multiplications; Eq. (1) gives 2n/(2d+1).
        let n = 197;
        let d = 64;
        let vanilla = vanilla_softmax_ops(n, d);
        let taylor = taylor_attention_ops(n, d);
        let measured = vanilla.mul as f64 / taylor.mul as f64;
        let theoretical = theoretical_mul_ratio(n, d);
        assert!((measured - theoretical).abs() / theoretical < 0.02);
        assert!(measured > 2.9 && measured < 3.2, "ratio {measured}");
        // Division ratio from Eq. (3) is ≈ n/d as well.
        let div_ratio = vanilla.div as f64 / taylor.div as f64;
        assert!((div_ratio - theoretical_div_ratio(n, d)).abs() / div_ratio < 0.05);
        // Addition ratio is strictly below n/d (Eq. 2's conclusion).
        assert!(theoretical_add_ratio(n, d) < n as f64 / d as f64);
    }
}
