//! Efficient Attention (Shen et al.): softmax applied separately to queries and keys.

use crate::opcount::OpCounts;
use crate::taxonomy::AttentionFamily;
use crate::{validate_qkv, AttentionMechanism};
use vitality_tensor::Matrix;

/// Efficient Attention: `softmax_rows(Q) (softmax_cols(K)^T V)`.
///
/// Applying the softmax separately to the queries (over the feature dimension) and to the
/// keys (over the token dimension) keeps the attention normalised while allowing the
/// key–value product to be computed first, giving linear complexity. It is the
/// vision-oriented linear attention cited by the paper (Table VI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EfficientAttention {
    _private: (),
}

impl EfficientAttention {
    /// Creates the Efficient Attention mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Softmax over the token (row) dimension of each column, i.e. a column-wise softmax.
    pub fn softmax_cols(m: &Matrix) -> Matrix {
        m.transpose().softmax_rows().transpose()
    }
}

impl AttentionMechanism for EfficientAttention {
    fn name(&self) -> &'static str {
        "efficient-attention"
    }

    fn compute(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        validate_qkv(q, k, v);
        let q_norm = q.softmax_rows(); // feature-wise distribution per query
        let k_norm = Self::softmax_cols(k); // token-wise distribution per feature
        let context = k_norm.transpose_matmul(v); // d x d
        q_norm.matmul(&context)
    }

    fn op_counts(&self, n: usize, d: usize) -> OpCounts {
        let (n, d) = (n as u64, d as u64);
        OpCounts {
            mul: 2 * n * d * d,
            add: 2 * n * d * d + 2 * n * d,
            div: 2 * n * d,
            exp: 2 * n * d,
        }
    }

    fn family(&self) -> AttentionFamily {
        AttentionFamily::KernelBased
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    #[test]
    fn softmax_cols_normalises_each_column() {
        let mut rng = StdRng::seed_from_u64(80);
        let m = init::normal(&mut rng, 6, 4, 0.0, 1.0);
        let s = EfficientAttention::softmax_cols(&m);
        for j in 0..s.cols() {
            let sum: f32 = s.col(j).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn output_is_convex_combination_of_values_per_feature() {
        // Each output element is a q-weighted mixture of token-averaged value features, so
        // it stays within the range of V.
        let mut rng = StdRng::seed_from_u64(81);
        let q = init::normal(&mut rng, 12, 6, 0.0, 1.0);
        let k = init::normal(&mut rng, 12, 6, 0.0, 1.0);
        let v = init::uniform(&mut rng, 12, 6, -1.0, 1.0);
        let z = EfficientAttention::new().compute(&q, &k, &v);
        assert_eq!(z.shape(), (12, 6));
        assert!(z.max() <= v.max() + 1e-4);
        assert!(z.min() >= v.min() - 1e-4);
    }

    #[test]
    fn op_counts_are_linear_in_tokens() {
        let attn = EfficientAttention::new();
        let a = attn.op_counts(100, 16);
        let b = attn.op_counts(300, 16);
        assert_eq!(b.mul, a.mul * 3);
        assert!(attn.op_counts(64, 16).exp > 0);
        assert_eq!(attn.family(), AttentionFamily::KernelBased);
        assert_eq!(attn.name(), "efficient-attention");
    }
}
