//! Attention mechanisms for the ViTALiTy reproduction.
//!
//! This crate implements the paper's primary contribution — the **linear Taylor attention**
//! with row-mean centring (Algorithm 1) — together with every attention mechanism it is
//! compared against in the evaluation:
//!
//! * [`SoftmaxAttention`] — the vanilla quadratic softmax attention (BASELINE).
//! * [`TaylorAttention`] — the ViTALiTy low-rank linear attention used at inference.
//! * [`SangerSparseAttention`] — a Sanger-style dynamically predicted sparse attention
//!   (the SPARSE baseline and the training-time regulariser).
//! * [`UnifiedLowRankSparseAttention`] — the training-time combination of the Taylor
//!   low-rank component and the sparse "strong connection" component (Fig. 4).
//! * [`LinformerAttention`], [`PerformerAttention`], [`LinearKernelAttention`],
//!   [`EfficientAttention`] — the linear-attention baselines of Table IV / Table VI.
//!
//! Every mechanism exposes the same [`AttentionMechanism`] interface (a per-head
//! `n x d -> n x d` map plus an operation-count model), so the ViT substrate, the training
//! schemes and the accelerator simulators can swap mechanisms freely. The *served*
//! variants additionally implement [`AttentionKernel`] (see the [`kernel`] module) — the
//! allocation-free `compute_into` interface the ViT inference hot path and the serving
//! engine run on, including the fused [`UnifiedAttentionKernel`] for the low-rank +
//! sparse path and the int8-quantized [`QuantizedTaylorKernel`] /
//! [`QuantizedUnifiedKernel`] pair (see the [`quantized`] module) that reproduce the
//! accelerator's integer deployment path.
//!
//! # Example: the Taylor attention approximates the softmax attention
//!
//! ```
//! use rand::SeedableRng;
//! use vitality_attention::{AttentionMechanism, SoftmaxAttention, TaylorAttention};
//! use vitality_tensor::init;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (n, d) = (16, 8);
//! // Small-magnitude logits: the regime the paper's Fig. 3 shows mean-centring produces.
//! let q = init::normal(&mut rng, n, d, 0.0, 0.1);
//! let k = init::normal(&mut rng, n, d, 0.0, 0.1);
//! let v = init::normal(&mut rng, n, d, 0.0, 1.0);
//! let exact = SoftmaxAttention::new().compute(&q, &k, &v);
//! let taylor = TaylorAttention::new().compute(&q, &k, &v);
//! assert!(exact.max_abs_diff(&taylor) < 0.05);
//! ```

#![deny(missing_docs)]

pub mod efficient;
pub mod kernel;
pub mod linear_kernel;
pub mod linformer;
pub mod opcount;
pub mod performer;
pub mod quantized;
pub mod softmax;
pub mod sparse;
pub mod taxonomy;
pub mod taylor;
pub mod unified;

pub use efficient::EfficientAttention;
pub use kernel::{AttentionKernel, UnifiedAttentionKernel};
pub use linear_kernel::LinearKernelAttention;
pub use linformer::LinformerAttention;
pub use opcount::OpCounts;
pub use performer::PerformerAttention;
pub use quantized::{
    Int8Calibration, QuantizedTaylorKernel, QuantizedUnifiedKernel, INT8_TAYLOR_TOLERANCE,
    INT8_UNIFIED_TOLERANCE,
};
pub use softmax::{fused_softmax_attention, SoftmaxAttention};
pub use sparse::{quantize_symmetric, quantize_symmetric_into, PackedMask, SangerSparseAttention};
pub use taxonomy::{AttentionFamily, PostProcessorKind, PreProcessorKind, TaxonomyEntry};
pub use taylor::{mean_center_keys, TaylorAttention, TaylorTrace};
pub use unified::UnifiedLowRankSparseAttention;

use vitality_tensor::Matrix;

/// A single-head attention mechanism mapping `(Q, K, V)` (each `n x d`) to an `n x d`
/// attention score matrix, together with an analytical operation-count model.
pub trait AttentionMechanism {
    /// Human-readable mechanism name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Computes the per-head attention score `Z` from queries, keys and values.
    ///
    /// # Panics
    ///
    /// Implementations panic when the operand shapes are inconsistent (different numbers
    /// of rows, or mismatched feature dimensions).
    fn compute(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix;

    /// Number of scalar multiplications / additions / divisions / exponentiations needed
    /// for one head with `n` tokens and `d` feature dimensions.
    fn op_counts(&self, n: usize, d: usize) -> OpCounts;

    /// Which taxonomy family the mechanism belongs to (Table VI of the paper).
    fn family(&self) -> AttentionFamily;
}

/// Validates that `(Q, K, V)` agree on the token count and feature dimension.
///
/// # Panics
///
/// Panics with a descriptive message when the shapes are inconsistent.
pub(crate) fn validate_qkv(q: &Matrix, k: &Matrix, v: &Matrix) {
    assert_eq!(
        q.cols(),
        k.cols(),
        "queries and keys must share the feature dimension"
    );
    assert_eq!(
        k.rows(),
        v.rows(),
        "keys and values must share the token count"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vitality_tensor::init;

    /// Every mechanism must produce an `n x d` score and a non-trivial op-count model.
    #[test]
    fn all_mechanisms_produce_correctly_shaped_scores() {
        let mut rng = StdRng::seed_from_u64(99);
        let (n, d) = (12, 8);
        let q = init::normal(&mut rng, n, d, 0.0, 0.3);
        let k = init::normal(&mut rng, n, d, 0.0, 0.3);
        let v = init::normal(&mut rng, n, d, 0.0, 1.0);

        let mechanisms: Vec<Box<dyn AttentionMechanism>> = vec![
            Box::new(SoftmaxAttention::new()),
            Box::new(TaylorAttention::new()),
            Box::new(SangerSparseAttention::new(0.02)),
            Box::new(UnifiedLowRankSparseAttention::new(0.5)),
            Box::new(LinformerAttention::new(&mut rng, n, 4)),
            Box::new(PerformerAttention::new(&mut rng, d, 8)),
            Box::new(LinearKernelAttention::new()),
            Box::new(EfficientAttention::new()),
        ];
        for m in &mechanisms {
            let z = m.compute(&q, &k, &v);
            assert_eq!(z.shape(), (n, d), "{} produced a wrong shape", m.name());
            assert!(
                z.iter().all(|v| v.is_finite()),
                "{} produced NaN/inf",
                m.name()
            );
            let ops = m.op_counts(n, d);
            assert!(ops.total() > 0, "{} reported zero operations", m.name());
            assert!(!m.name().is_empty());
        }
    }
}
